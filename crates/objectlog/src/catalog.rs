//! The predicate catalog.
//!
//! Every AMOSQL function becomes a predicate:
//!
//! * **stored** functions (`create function quantity(item) -> integer;`)
//!   become facts — a base relation in [`amos_storage::Storage`];
//! * **derived** functions (`create function threshold(item) -> integer
//!   as select …`) become Horn clauses;
//! * **foreign** functions become Rust closures (the paper's AMOS allows
//!   Lisp or C here).
//!
//! Stored-function metadata records the *key arity* — how many leading
//! columns form the argument part of the function — so `set f(args…) =
//! value` can emit the delete-then-insert physical event sequence of
//! §4.1.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use amos_storage::RelId;
use amos_types::{TypeId, Value};

use crate::clause::{Clause, Literal};
use crate::error::ObjectLogError;

/// Identifier of a predicate in the catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PredId(pub u32);

/// A foreign predicate: given partially-bound arguments (one
/// `Option<Value>` per column), returns all matching full argument rows.
/// Must be pure (no side effects) when used in monitored conditions.
pub type ForeignFn = Arc<dyn Fn(&[Option<Value>]) -> Vec<Vec<Value>> + Send + Sync>;

/// How a predicate is implemented.
#[derive(Clone)]
pub enum PredKind {
    /// Facts in a base relation.
    Stored {
        /// Backing relation.
        rel: RelId,
        /// Number of leading key (argument) columns for `set` updates.
        key_arity: usize,
    },
    /// A disjunction of Horn clauses.
    Derived(Vec<Clause>),
    /// A Rust closure.
    Foreign(ForeignFn),
}

impl fmt::Debug for PredKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PredKind::Stored { rel, key_arity } => f
                .debug_struct("Stored")
                .field("rel", rel)
                .field("key_arity", key_arity)
                .finish(),
            PredKind::Derived(cs) => f.debug_tuple("Derived").field(&cs.len()).finish(),
            PredKind::Foreign(_) => f.write_str("Foreign(..)"),
        }
    }
}

/// A predicate definition.
#[derive(Debug, Clone)]
pub struct PredDef {
    /// Unique id.
    pub id: PredId,
    /// Name, e.g. `quantity` or `cnd_monitor_items`.
    pub name: String,
    /// Number of columns (function arguments + result columns).
    pub arity: usize,
    /// Declared column types (informational; used by the AMOSQL layer).
    pub signature: Vec<TypeId>,
    /// Implementation.
    pub kind: PredKind,
}

impl PredDef {
    /// Whether this predicate is stored (a base relation).
    pub fn is_stored(&self) -> bool {
        matches!(self.kind, PredKind::Stored { .. })
    }

    /// The backing relation, if stored.
    pub fn stored_rel(&self) -> Option<RelId> {
        match self.kind {
            PredKind::Stored { rel, .. } => Some(rel),
            _ => None,
        }
    }

    /// The clauses, if derived.
    pub fn clauses(&self) -> Option<&[Clause]> {
        match &self.kind {
            PredKind::Derived(cs) => Some(cs),
            _ => None,
        }
    }
}

/// The catalog of predicates.
#[derive(Debug, Default, Clone)]
pub struct Catalog {
    preds: Vec<PredDef>,
    by_name: HashMap<String, PredId>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    fn register(
        &mut self,
        name: &str,
        arity: usize,
        signature: Vec<TypeId>,
        kind: PredKind,
    ) -> Result<PredId, ObjectLogError> {
        if self.by_name.contains_key(name) {
            return Err(ObjectLogError::DuplicatePredicate(name.to_string()));
        }
        let id = PredId(self.preds.len() as u32);
        self.preds.push(PredDef {
            id,
            name: name.to_string(),
            arity,
            signature,
            kind,
        });
        self.by_name.insert(name.to_string(), id);
        Ok(id)
    }

    /// Register a stored predicate backed by `rel`.
    pub fn define_stored(
        &mut self,
        name: &str,
        signature: Vec<TypeId>,
        rel: RelId,
        key_arity: usize,
    ) -> Result<PredId, ObjectLogError> {
        let arity = signature.len();
        self.register(name, arity, signature, PredKind::Stored { rel, key_arity })
    }

    /// Register a derived predicate with its clauses. Every clause must
    /// be safe (range-restricted) and have a head matching the arity.
    pub fn define_derived(
        &mut self,
        name: &str,
        signature: Vec<TypeId>,
        clauses: Vec<Clause>,
    ) -> Result<PredId, ObjectLogError> {
        let arity = signature.len();
        for c in &clauses {
            if c.head.len() != arity {
                return Err(ObjectLogError::HeadArityMismatch {
                    pred: name.to_string(),
                    expected: arity,
                    found: c.head.len(),
                });
            }
            if let Some(v) = c.unsafe_var() {
                return Err(ObjectLogError::UnsafeClause {
                    pred: name.to_string(),
                    var: v,
                });
            }
        }
        self.register(name, arity, signature, PredKind::Derived(clauses))
    }

    /// Register a foreign predicate.
    pub fn define_foreign(
        &mut self,
        name: &str,
        signature: Vec<TypeId>,
        f: ForeignFn,
    ) -> Result<PredId, ObjectLogError> {
        let arity = signature.len();
        self.register(name, arity, signature, PredKind::Foreign(f))
    }

    /// Replace the clauses of an existing derived predicate (used by the
    /// expansion machinery and to close the knot for **recursive**
    /// definitions: declare with empty clauses, then install bodies that
    /// reference the predicate's own id).
    ///
    /// Validates head arity, range restriction, and — for
    /// self-referencing clauses — *linearity*: at most one positive
    /// self-literal per clause (the §5 note's "linear recursion";
    /// negated self-reference is non-stratifiable and rejected).
    pub fn replace_clauses(
        &mut self,
        id: PredId,
        clauses: Vec<Clause>,
    ) -> Result<(), ObjectLogError> {
        let (name, arity) = {
            let def = self.def(id);
            (def.name.clone(), def.arity)
        };
        for c in &clauses {
            if c.head.len() != arity {
                return Err(ObjectLogError::HeadArityMismatch {
                    pred: name.clone(),
                    expected: arity,
                    found: c.head.len(),
                });
            }
            if let Some(v) = c.unsafe_var() {
                return Err(ObjectLogError::UnsafeClause {
                    pred: name.clone(),
                    var: v,
                });
            }
            let mut self_refs = 0;
            for lit in &c.body {
                if let Literal::Pred { pred, negated, .. } = lit {
                    if *pred == id {
                        if *negated {
                            return Err(ObjectLogError::RecursivePredicate(format!(
                                "{name} (negated self-reference)"
                            )));
                        }
                        self_refs += 1;
                    }
                }
            }
            if self_refs > 1 {
                return Err(ObjectLogError::RecursivePredicate(format!(
                    "{name} (non-linear: {self_refs} self-literals in one clause)"
                )));
            }
        }
        let def = &mut self.preds[id.0 as usize];
        match &mut def.kind {
            PredKind::Derived(cs) => {
                *cs = clauses;
                Ok(())
            }
            _ => Err(ObjectLogError::NotDerived(def.name.clone())),
        }
    }

    /// Whether a derived predicate references itself (linear recursion).
    pub fn is_self_recursive(&self, id: PredId) -> bool {
        self.direct_influents(id).contains(&id)
    }

    /// Look up a predicate by name.
    pub fn lookup(&self, name: &str) -> Result<PredId, ObjectLogError> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| ObjectLogError::UnknownPredicate(name.to_string()))
    }

    /// The definition of a predicate.
    pub fn def(&self, id: PredId) -> &PredDef {
        &self.preds[id.0 as usize]
    }

    /// The name of a predicate.
    pub fn name(&self, id: PredId) -> &str {
        &self.def(id).name
    }

    /// All predicates, in registration order.
    pub fn iter(&self) -> impl Iterator<Item = &PredDef> {
        self.preds.iter()
    }

    /// The direct *influents* of a predicate: the predicates referenced
    /// by its clause bodies (paper fig. 1 edges). Stored and foreign
    /// predicates have none.
    pub fn direct_influents(&self, id: PredId) -> Vec<PredId> {
        let mut out = Vec::new();
        if let PredKind::Derived(clauses) = &self.def(id).kind {
            for c in clauses {
                for lit in &c.body {
                    if let Some(p) = lit.pred() {
                        if !out.contains(&p) {
                            out.push(p);
                        }
                    }
                }
            }
        }
        out
    }

    /// The transitive set of *stored* predicates a predicate depends on —
    /// the base-relation influents that must be monitored when a rule on
    /// this predicate is activated.
    pub fn stored_influents(&self, id: PredId) -> Vec<PredId> {
        let mut seen = Vec::new();
        let mut stack = vec![id];
        let mut out = Vec::new();
        while let Some(p) = stack.pop() {
            if seen.contains(&p) {
                continue;
            }
            seen.push(p);
            match &self.def(p).kind {
                PredKind::Stored { .. } => {
                    if !out.contains(&p) {
                        out.push(p);
                    }
                }
                PredKind::Derived(_) => stack.extend(self.direct_influents(p)),
                PredKind::Foreign(_) => {}
            }
        }
        out.sort();
        out
    }

    /// The *stratum* of a predicate: 0 for stored/foreign, 1 + max of
    /// influent strata for derived. Drives the breadth-first bottom-up
    /// level order of the propagation algorithm (§5).
    ///
    /// Returns an error on recursive definitions — the paper's algorithm
    /// "assumes that there are no loops in the network".
    ///
    /// Iterative (explicit DFS frames + memo): derived chains can be
    /// tens of thousands deep and a recursive walk would overflow the
    /// 2 MiB default thread stack.
    pub fn stratum(&self, id: PredId) -> Result<usize, ObjectLogError> {
        use std::collections::HashSet;
        if !matches!(self.def(id).kind, PredKind::Derived(_)) {
            return Ok(0);
        }
        let mut memo: HashMap<PredId, usize> = HashMap::new();
        let mut on_path: HashSet<PredId> = HashSet::new();
        // Frame: (pred, direct influents, next influent, level so far).
        let mut frames: Vec<(PredId, Vec<PredId>, usize, usize)> = Vec::new();
        on_path.insert(id);
        frames.push((id, self.direct_influents(id), 0, 0));
        loop {
            let top = frames.len() - 1;
            let p = frames[top].0;
            if frames[top].2 < frames[top].1.len() {
                let dep = frames[top].1[frames[top].2];
                frames[top].2 += 1;
                // Direct self-recursion contributes no height (the
                // fixpoint stays within the node); longer cycles
                // (mutual recursion) remain unsupported.
                if dep == p {
                    continue;
                }
                if let Some(&l) = memo.get(&dep) {
                    frames[top].3 = frames[top].3.max(l + 1);
                    continue;
                }
                if !matches!(self.def(dep).kind, PredKind::Derived(_)) {
                    frames[top].3 = frames[top].3.max(1);
                    continue;
                }
                if on_path.contains(&dep) {
                    return Err(ObjectLogError::RecursivePredicate(
                        self.name(dep).to_string(),
                    ));
                }
                on_path.insert(dep);
                frames.push((dep, self.direct_influents(dep), 0, 0));
            } else {
                // All influents resolved: finish this node.
                let level = frames[top].3.max(1);
                frames.pop();
                on_path.remove(&p);
                memo.insert(p, level);
                match frames.last_mut() {
                    Some(parent) => parent.3 = parent.3.max(level + 1),
                    None => return Ok(level),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clause::{ClauseBuilder, Term};

    fn sig(n: usize) -> Vec<TypeId> {
        vec![TypeId(0); n]
    }

    #[test]
    fn define_and_lookup() {
        let mut cat = Catalog::new();
        let q = cat.define_stored("q", sig(2), RelId(0), 1).unwrap();
        assert_eq!(cat.lookup("q").unwrap(), q);
        assert!(cat.def(q).is_stored());
        assert!(matches!(
            cat.lookup("nope"),
            Err(ObjectLogError::UnknownPredicate(_))
        ));
        assert!(matches!(
            cat.define_stored("q", sig(2), RelId(1), 1),
            Err(ObjectLogError::DuplicatePredicate(_))
        ));
    }

    #[test]
    fn derived_safety_enforced() {
        let mut cat = Catalog::new();
        let q = cat.define_stored("q", sig(2), RelId(0), 1).unwrap();
        // p(X, Y) ← q(X, _) : Y unsafe
        let bad = ClauseBuilder::new(3)
            .head([Term::var(0), Term::var(1)])
            .pred(q, [Term::var(0), Term::var(2)])
            .build();
        assert!(matches!(
            cat.define_derived("p", sig(2), vec![bad]),
            Err(ObjectLogError::UnsafeClause { .. })
        ));
    }

    #[test]
    fn influents_and_strata() {
        let mut cat = Catalog::new();
        let q = cat.define_stored("q", sig(2), RelId(0), 1).unwrap();
        let r = cat.define_stored("r", sig(2), RelId(1), 1).unwrap();
        // mid(X,Z) ← q(X,Y) ∧ r(Y,Z)
        let mid = cat
            .define_derived(
                "mid",
                sig(2),
                vec![ClauseBuilder::new(3)
                    .head([Term::var(0), Term::var(2)])
                    .pred(q, [Term::var(0), Term::var(1)])
                    .pred(r, [Term::var(1), Term::var(2)])
                    .build()],
            )
            .unwrap();
        // top(X) ← mid(X,Z) ∧ q(Z, _)
        let top = cat
            .define_derived(
                "top",
                sig(1),
                vec![ClauseBuilder::new(3)
                    .head([Term::var(0)])
                    .pred(mid, [Term::var(0), Term::var(1)])
                    .pred(q, [Term::var(1), Term::var(2)])
                    .build()],
            )
            .unwrap();

        assert_eq!(cat.direct_influents(top), vec![mid, q]);
        assert_eq!(cat.stored_influents(top), vec![q, r]);
        assert_eq!(cat.stratum(q).unwrap(), 0);
        assert_eq!(cat.stratum(mid).unwrap(), 1);
        assert_eq!(cat.stratum(top).unwrap(), 2);
    }

    #[test]
    fn self_recursion_allowed_mutual_rejected() {
        let mut cat = Catalog::new();
        let q = cat.define_stored("q", sig(2), RelId(0), 1).unwrap();
        // Self (linear) recursion is supported: stratum ignores the
        // self-edge and the predicate reports as recursive.
        let p = cat
            .define_derived(
                "p",
                sig(2),
                vec![ClauseBuilder::new(2)
                    .head([Term::var(0), Term::var(1)])
                    .pred(q, [Term::var(0), Term::var(1)])
                    .build()],
            )
            .unwrap();
        let rec = ClauseBuilder::new(3)
            .head([Term::var(0), Term::var(2)])
            .pred(p, [Term::var(0), Term::var(1)])
            .pred(q, [Term::var(1), Term::var(2)])
            .build();
        cat.replace_clauses(
            p,
            vec![
                ClauseBuilder::new(2)
                    .head([Term::var(0), Term::var(1)])
                    .pred(q, [Term::var(0), Term::var(1)])
                    .build(),
                rec,
            ],
        )
        .unwrap();
        assert!(cat.is_self_recursive(p));
        assert_eq!(cat.stratum(p).unwrap(), 1);

        // Mutual recursion (a → b → a) remains rejected.
        let a = cat
            .define_derived(
                "a",
                sig(2),
                vec![ClauseBuilder::new(2)
                    .head([Term::var(0), Term::var(1)])
                    .pred(q, [Term::var(0), Term::var(1)])
                    .build()],
            )
            .unwrap();
        let b = cat
            .define_derived(
                "b",
                sig(2),
                vec![ClauseBuilder::new(2)
                    .head([Term::var(0), Term::var(1)])
                    .pred(a, [Term::var(0), Term::var(1)])
                    .build()],
            )
            .unwrap();
        cat.replace_clauses(
            a,
            vec![ClauseBuilder::new(2)
                .head([Term::var(0), Term::var(1)])
                .pred(b, [Term::var(0), Term::var(1)])
                .build()],
        )
        .unwrap();
        assert!(matches!(
            cat.stratum(a),
            Err(ObjectLogError::RecursivePredicate(_))
        ));
    }

    #[test]
    fn stratum_survives_deep_derived_chains() {
        // Regression: the recursive walk overflowed the 2 MiB test-thread
        // stack on chains this deep; the iterative version must not.
        let mut cat = Catalog::new();
        let mut prev = cat.define_stored("d0", sig(1), RelId(0), 1).unwrap();
        const DEPTH: usize = 10_000;
        for i in 1..=DEPTH {
            prev = cat
                .define_derived(
                    &format!("d{i}"),
                    sig(1),
                    vec![ClauseBuilder::new(1)
                        .head([Term::var(0)])
                        .pred(prev, [Term::var(0)])
                        .build()],
                )
                .unwrap();
        }
        assert_eq!(cat.stratum(prev).unwrap(), DEPTH);
    }

    #[test]
    fn replace_clauses_rejects_nonlinear_and_negated_self() {
        let mut cat = Catalog::new();
        let q = cat.define_stored("q", sig(2), RelId(0), 1).unwrap();
        let p = cat
            .define_derived(
                "p",
                sig(2),
                vec![ClauseBuilder::new(2)
                    .head([Term::var(0), Term::var(1)])
                    .pred(q, [Term::var(0), Term::var(1)])
                    .build()],
            )
            .unwrap();
        // Two self-literals: non-linear.
        let nonlinear = ClauseBuilder::new(3)
            .head([Term::var(0), Term::var(2)])
            .pred(p, [Term::var(0), Term::var(1)])
            .pred(p, [Term::var(1), Term::var(2)])
            .build();
        assert!(matches!(
            cat.replace_clauses(p, vec![nonlinear]),
            Err(ObjectLogError::RecursivePredicate(_))
        ));
        // Negated self-reference: non-stratifiable.
        let negated = ClauseBuilder::new(2)
            .head([Term::var(0), Term::var(1)])
            .pred(q, [Term::var(0), Term::var(1)])
            .not_pred(p, [Term::var(0), Term::var(1)])
            .build();
        assert!(matches!(
            cat.replace_clauses(p, vec![negated]),
            Err(ObjectLogError::RecursivePredicate(_))
        ));
    }
}
