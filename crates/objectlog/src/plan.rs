//! Plan compilation: greedy literal reordering with index-backed probes.
//!
//! Each partial differential "is a relatively simple database query which
//! is optimized using traditional query optimization techniques \[22\].
//! The optimizer assumes few changes to a single influent." We implement
//! that assumption directly in the cost model: Δ-literals cost nothing
//! (their cardinality is assumed tiny) and are scheduled first, seeding
//! the join; remaining literals are ordered greedily by boundness so
//! every stored access becomes an index probe whenever possible.
//!
//! A [`Plan`] is compiled for a clause plus a *binding pattern* (which
//! head columns the caller has bound) and is reusable across
//! transactions — the rule compiler compiles every differential once at
//! activation time.

use std::collections::HashSet;

use amos_storage::{Polarity, RelId, StateEpoch, Storage};
use amos_types::{ArithOp, CmpOp};

use crate::catalog::{Catalog, PredId, PredKind};
use crate::clause::{Clause, Literal, Term, Var};
use crate::error::ObjectLogError;

/// One executable step of a compiled plan.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanStep {
    /// Access a stored predicate: probe by `bound_cols` (empty = full
    /// scan, all columns = membership check), binding the remaining
    /// argument variables.
    Stored {
        /// Predicate (for diagnostics).
        pred: PredId,
        /// Backing relation.
        rel: RelId,
        /// Argument terms.
        args: Vec<Term>,
        /// Columns bound at this point in the plan.
        bound_cols: Vec<usize>,
        /// State epoch the literal must be evaluated in.
        epoch: StateEpoch,
    },
    /// Access one side of an influent's Δ-set: scan when `bound_cols` is
    /// empty, probe the Δ-set's lazy hash index when partially bound,
    /// membership-test when fully bound.
    Delta {
        /// The influent predicate.
        pred: PredId,
        /// Which side of the Δ-set.
        polarity: Polarity,
        /// Argument terms.
        args: Vec<Term>,
        /// Columns bound at this point in the plan.
        bound_cols: Vec<usize>,
    },
    /// Goal-directed call of a derived (or foreign) predicate with the
    /// currently bound argument positions as the pattern.
    Call {
        /// Callee.
        pred: PredId,
        /// Argument terms.
        args: Vec<Term>,
        /// Argument positions bound at call time.
        bound_cols: Vec<usize>,
        /// State epoch for the callee's evaluation.
        epoch: StateEpoch,
    },
    /// Negation-as-failure check; all argument variables are bound.
    NegCheck {
        /// Negated predicate.
        pred: PredId,
        /// Argument terms (fully bound).
        args: Vec<Term>,
        /// State epoch.
        epoch: StateEpoch,
    },
    /// Comparison test (operands bound).
    Cmp {
        /// Operator.
        op: CmpOp,
        /// Left operand.
        lhs: Term,
        /// Right operand.
        rhs: Term,
    },
    /// Arithmetic: bind or test `result = lhs op rhs`.
    Arith {
        /// Operator.
        op: ArithOp,
        /// Result term.
        result: Term,
        /// Left operand (bound).
        lhs: Term,
        /// Right operand (bound).
        rhs: Term,
    },
    /// Unification `lhs = rhs` (at least one side resolvable).
    Unify {
        /// Left term.
        lhs: Term,
        /// Right term.
        rhs: Term,
    },
    /// Sorted merge join fusing a Δ-literal with a stored literal: both
    /// sides are arranged (sorted) by the aligned join-key columns and
    /// zipped in one linear co-traversal — no per-tuple key allocation,
    /// no hash table. Chosen by the estimator when the Δ-set is bulky
    /// enough that arranging beats probing (run counts and sizes from
    /// [`PlanStats::run_profile`] feed the pricing). Only emitted for
    /// the two leading steps of an otherwise-unbound plan, in the `New`
    /// epoch; residual constraints (constants, repeated variables) are
    /// enforced by unification against the full tuples.
    MergeJoin {
        /// The influent predicate (Δ side).
        delta_pred: PredId,
        /// Which side of the Δ-set.
        polarity: Polarity,
        /// Δ-literal argument terms.
        delta_args: Vec<Term>,
        /// Stored predicate (base side).
        stored_pred: PredId,
        /// Backing relation of the base side.
        rel: RelId,
        /// Stored-literal argument terms.
        stored_args: Vec<Term>,
        /// Join-key columns on the Δ side; position `i` joins
        /// `rel_cols[i]`.
        delta_cols: Vec<usize>,
        /// Join-key columns on the base side, aligned with `delta_cols`.
        rel_cols: Vec<usize>,
    },
}

/// A compiled, reusable execution plan for one clause under one binding
/// pattern.
#[derive(Debug, Clone, PartialEq)]
pub struct Plan {
    /// Ordered steps.
    pub steps: Vec<PlanStep>,
    /// The clause head (projection producing result tuples).
    pub head: Vec<Term>,
    /// Total variable count of the clause.
    pub n_vars: u32,
    /// Estimated result rows under the statistics the plan was compiled
    /// with; `None` for plans compiled with the static cost table.
    pub est_rows: Option<f64>,
}

/// Cost model constants — relative magnitudes are what matters.
mod cost {
    /// Δ-literal: assumed tiny ("few changes to a single influent").
    pub const DELTA: f64 = 0.0;
    /// Executable built-in (comparison/arith/unify): pure CPU.
    pub const BUILTIN: f64 = 0.1;
    /// Fully-bound negation check: one lookup.
    pub const NEG_CHECK: f64 = 0.5;
    /// Fully-bound positive stored literal: one membership lookup.
    pub const LOOKUP: f64 = 1.0;
    /// Partially-bound stored literal: one index probe.
    pub const PROBE: f64 = 10.0;
    /// Fully-bound derived call: still a rule evaluation, not a lookup.
    pub const DERIVED_LOOKUP: f64 = 25.0;
    /// Partially-bound derived call.
    pub const DERIVED_PROBE: f64 = 50.0;
    /// Unbound stored scan.
    pub const SCAN: f64 = 10_000.0;
    /// Unbound derived materialization.
    pub const DERIVED_SCAN: f64 = 20_000.0;
    /// Not executable yet.
    pub const INF: f64 = f64::INFINITY;

    // Stats-backed variants: fixed per-operation overheads added to the
    // estimated row count, so that equal row estimates still prefer the
    // structurally cheaper access.
    /// Per-probe overhead (hash lookup).
    pub const PROBE_BASE: f64 = 2.0;
    /// Per-scan overhead (iterator setup; scans also pay per row).
    pub const SCAN_BASE: f64 = 8.0;
    /// Per-Δ-access overhead — slightly under a lookup so an empty or
    /// tiny Δ-set still seeds the join first.
    pub const DELTA_BASE: f64 = 0.5;
    /// Selectivity credited to each bound column of a Δ-literal probe
    /// (Δ-sets keep no per-column NDV, so a fixed factor stands in).
    pub const DELTA_BOUND_SELECTIVITY: f64 = 0.1;

    // Merge-join pricing: arranging a side is a pointer sort (no
    // hashing, no per-tuple key allocation), so it is priced far below
    // the per-probe constants above; tuples already resident in sorted
    // runs only pay a k-way merge.
    /// Fixed overhead of setting up the two arrangements and the zipper.
    pub const MERGE_JOIN_BASE: f64 = 4.0;
    /// Per-tuple, per-comparison cost of sorting a side into an
    /// arrangement.
    pub const ARRANGE_PER_TUPLE: f64 = 0.02;
    /// Per-tuple cost of the linear co-traversal itself.
    pub const ZIP_PER_TUPLE: f64 = 0.01;
    /// Δ-sets below this size never fuse — probing a handful of tuples
    /// beats any sort.
    pub const MERGE_JOIN_MIN_DELTA: f64 = 256.0;
}

/// Runtime statistics the cardinality-aware cost estimator draws on.
///
/// Every method may answer `None`, in which case the estimator falls
/// back to the paper's fixed cost table for that literal — a source
/// that always answers `None` (see [`NoStats`]) reproduces the static
/// planner exactly.
pub trait PlanStats {
    /// Current cardinality of the relation backing a stored predicate.
    fn cardinality(&self, rel: RelId) -> Option<f64>;
    /// Number of distinct values in one column of a stored relation.
    fn ndv(&self, rel: RelId, col: usize) -> Option<f64>;
    /// Live size of one side of an influent's Δ-set.
    fn delta_len(&self, pred: PredId, polarity: Polarity) -> Option<f64>;
    /// Sorted-run layout of the relation: `(run_count, run_tuples)` —
    /// how many immutable runs it holds and how many tuples live in
    /// them (the rest sit in the unsorted mutable head). Feeds the
    /// merge-join pricing: run-resident tuples arrange with a k-way
    /// merge instead of a full sort. Defaults to `None` (layout
    /// unknown; a full sort is assumed).
    fn run_profile(&self, _rel: RelId) -> Option<(usize, usize)> {
        None
    }
}

/// The "no statistics" source: compilation uses the static cost table.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoStats;

impl PlanStats for NoStats {
    fn cardinality(&self, _rel: RelId) -> Option<f64> {
        None
    }
    fn ndv(&self, _rel: RelId, _col: usize) -> Option<f64> {
        None
    }
    fn delta_len(&self, _pred: PredId, _polarity: Polarity) -> Option<f64> {
        None
    }
}

fn term_bound(t: &Term, bound: &HashSet<Var>) -> bool {
    match t {
        Term::Const(_) => true,
        Term::Var(v) => bound.contains(v),
    }
}

/// Cost and estimated output rows of scheduling one literal next.
struct LitEstimate {
    /// Greedy ranking key.
    cost: f64,
    /// Estimated rows the literal contributes to the running result
    /// (multiplied into the plan's `est_rows`); `None` when the static
    /// table was used and no row estimate is meaningful.
    rows: Option<f64>,
}

impl LitEstimate {
    fn fixed(cost: f64) -> Self {
        LitEstimate { cost, rows: None }
    }
}

fn literal_cost(
    catalog: &Catalog,
    lit: &Literal,
    bound: &HashSet<Var>,
    stats: &dyn PlanStats,
) -> LitEstimate {
    match lit {
        Literal::Delta {
            pred,
            polarity,
            args,
        } => match stats.delta_len(*pred, *polarity) {
            Some(d) => {
                // Bound columns shrink the Δ access (index probe or, when
                // fully bound, a membership test).
                let n_bound = args.iter().filter(|t| term_bound(t, bound)).count();
                let rows = d * cost::DELTA_BOUND_SELECTIVITY.powi(n_bound as i32);
                LitEstimate {
                    cost: cost::DELTA_BASE + rows,
                    rows: Some(rows),
                }
            }
            None => LitEstimate::fixed(cost::DELTA),
        },
        Literal::Cmp { lhs, rhs, .. } => {
            if term_bound(lhs, bound) && term_bound(rhs, bound) {
                LitEstimate::fixed(cost::BUILTIN)
            } else {
                LitEstimate::fixed(cost::INF)
            }
        }
        Literal::Arith {
            result, lhs, rhs, ..
        } => {
            if term_bound(lhs, bound) && term_bound(rhs, bound) {
                // result may bind or test; both are fine
                let _ = result;
                LitEstimate::fixed(cost::BUILTIN)
            } else {
                LitEstimate::fixed(cost::INF)
            }
        }
        Literal::Unify { lhs, rhs } => {
            if term_bound(lhs, bound) || term_bound(rhs, bound) {
                LitEstimate::fixed(cost::BUILTIN)
            } else {
                LitEstimate::fixed(cost::INF)
            }
        }
        Literal::Pred {
            pred,
            args,
            negated,
            ..
        } => {
            let n_bound = args.iter().filter(|t| term_bound(t, bound)).count();
            let all_bound = n_bound == args.len();
            if *negated {
                return if all_bound {
                    LitEstimate::fixed(cost::NEG_CHECK)
                } else {
                    LitEstimate::fixed(cost::INF)
                };
            }
            let def = catalog.def(*pred);
            let stored_rel = match def.kind {
                PredKind::Stored { rel, .. } => Some(rel),
                _ => None,
            };
            if let Some(rel) = stored_rel {
                if let Some(card) = stats.cardinality(rel) {
                    return stored_estimate(card, rel, args, bound, all_bound, stats);
                }
            }
            let derived = stored_rel.is_none();
            LitEstimate::fixed(match (all_bound, n_bound > 0, derived) {
                (true, _, false) => cost::LOOKUP,
                (true, _, true) => cost::DERIVED_LOOKUP,
                (false, true, false) => cost::PROBE,
                (false, true, true) => cost::DERIVED_PROBE,
                (false, false, false) => cost::SCAN,
                (false, false, true) => cost::DERIVED_SCAN,
            })
        }
    }
}

/// Statistics-backed estimate for a positive stored literal: `|R|` for
/// scans, `|R| / Π ndv(c)` over the bound columns for probes, one row
/// for full membership lookups.
fn stored_estimate(
    card: f64,
    rel: RelId,
    args: &[Term],
    bound: &HashSet<Var>,
    all_bound: bool,
    stats: &dyn PlanStats,
) -> LitEstimate {
    if all_bound {
        return LitEstimate {
            cost: cost::LOOKUP,
            rows: Some(1.0_f64.min(card)),
        };
    }
    let bound_cols: Vec<usize> = args
        .iter()
        .enumerate()
        .filter(|(_, t)| term_bound(t, bound))
        .map(|(i, _)| i)
        .collect();
    if bound_cols.is_empty() {
        return LitEstimate {
            cost: cost::SCAN_BASE + card,
            rows: Some(card),
        };
    }
    let mut selectivity = 1.0;
    for &c in &bound_cols {
        let ndv = stats.ndv(rel, c).filter(|&n| n >= 1.0).unwrap_or(1.0);
        selectivity /= ndv;
    }
    let rows = (card * selectivity).min(card);
    LitEstimate {
        cost: cost::PROBE_BASE + rows,
        rows: Some(rows),
    }
}

/// Cost of arranging `n` tuples from scratch (a pointer sort).
fn sort_cost(n: f64) -> f64 {
    n * n.max(2.0).log2() * cost::ARRANGE_PER_TUPLE
}

/// Estimated cost of evaluating a Δ ⋈ stored pair over arrangements.
/// Two execution shapes are priced and the cheaper wins: the symmetric
/// zipper (arrange both sides, one linear zip) and the asymmetric
/// lookup join (arrange only the stored side, binary-search each Δ
/// tuple into it — what execution picks when the Δ side dwarfs the
/// stored one). The stored side's [`PlanStats::run_profile`] discounts
/// tuples already sitting in sorted runs — they pay a `log(k)` k-way
/// merge, not a full sort.
pub fn merge_join_estimate(delta_len: f64, card: f64, profile: Option<(usize, usize)>) -> f64 {
    let stored_arrange = match profile {
        Some((runs, in_runs)) => {
            let head = (card - in_runs as f64).max(0.0);
            let merge_ways = (runs + 1).max(2) as f64; // runs plus the sealed head
            in_runs as f64 * merge_ways.log2() * cost::ARRANGE_PER_TUPLE + sort_cost(head)
        }
        None => sort_cost(card),
    };
    let zipper = sort_cost(delta_len) + (delta_len + card) * cost::ZIP_PER_TUPLE;
    let lookup = delta_len * card.max(2.0).log2() * cost::ZIP_PER_TUPLE;
    cost::MERGE_JOIN_BASE + stored_arrange + zipper.min(lookup)
}

/// Peephole pass over a freshly compiled plan: when the two leading
/// steps are an unbound Δ access and a `New`-epoch stored access joined
/// on at least one shared variable, and the estimator prices a sorted
/// merge join below the probe-based pair, fuse them into one
/// [`PlanStep::MergeJoin`].
///
/// The fusion is semantics-preserving for any argument shape: execution
/// unifies each matching tuple pair against the full argument lists, so
/// constants and repeated variables are still enforced — the join key
/// only has to be a *subset* of the real constraints for the zipper to
/// be a superset filter.
fn fuse_merge_join(steps: &mut Vec<PlanStep>, stats: &dyn PlanStats) {
    if steps.len() < 2 {
        return;
    }
    // Accept (Δ-scan, stored probe) or the bulk-flipped (stored scan,
    // Δ-probe) — whichever the greedy loop chose, the fused form is the
    // same symmetric zipper.
    let (d_idx, s_idx) = match (&steps[0], &steps[1]) {
        (
            PlanStep::Delta { bound_cols, .. },
            PlanStep::Stored {
                epoch: StateEpoch::New,
                ..
            },
        ) if bound_cols.is_empty() => (0, 1),
        (
            PlanStep::Stored {
                bound_cols,
                epoch: StateEpoch::New,
                ..
            },
            PlanStep::Delta { .. },
        ) if bound_cols.is_empty() => (1, 0),
        _ => return,
    };
    let (delta_pred, polarity, delta_args) = match &steps[d_idx] {
        PlanStep::Delta {
            pred,
            polarity,
            args,
            ..
        } => (*pred, *polarity, args.clone()),
        _ => unreachable!(),
    };
    let (stored_pred, rel, stored_args) = match &steps[s_idx] {
        PlanStep::Stored {
            pred, rel, args, ..
        } => (*pred, *rel, args.clone()),
        _ => unreachable!(),
    };
    // Aligned join key: first occurrence of each variable shared by both
    // literals.
    let mut keyed: HashSet<Var> = HashSet::new();
    let mut delta_cols = Vec::new();
    let mut rel_cols = Vec::new();
    for (ci, t) in delta_args.iter().enumerate() {
        let Term::Var(v) = t else { continue };
        if !keyed.insert(*v) {
            continue;
        }
        if let Some(cj) = stored_args
            .iter()
            .position(|u| matches!(u, Term::Var(w) if w == v))
        {
            delta_cols.push(ci);
            rel_cols.push(cj);
        }
    }
    if delta_cols.is_empty() {
        return; // cross product — nothing to zip on
    }
    let (Some(d), Some(card)) = (
        stats.delta_len(delta_pred, polarity),
        stats.cardinality(rel),
    ) else {
        return; // no statistics: keep the static plan shape
    };
    if d < cost::MERGE_JOIN_MIN_DELTA {
        return;
    }
    // Price the probe-based pair the greedy loop chose: driver side
    // scanned, other side probed once per driver row on the shared key.
    let hash_cost = if d_idx == 0 {
        // Δ-scan then stored probe per Δ tuple.
        cost::DELTA_BASE
            + d
            + d * (cost::PROBE_BASE + card / stats.ndv(rel, rel_cols[0]).unwrap_or(1.0).max(1.0))
    } else {
        // Stored scan then Δ-probe per stored row.
        cost::SCAN_BASE
            + card
            + card
                * (cost::DELTA_BASE
                    + d * cost::DELTA_BOUND_SELECTIVITY.powi(delta_cols.len() as i32))
    };
    let merge_cost = merge_join_estimate(d, card, stats.run_profile(rel));
    if merge_cost >= hash_cost {
        return;
    }
    let fused = PlanStep::MergeJoin {
        delta_pred,
        polarity,
        delta_args,
        stored_pred,
        rel,
        stored_args,
        delta_cols,
        rel_cols,
    };
    steps.splice(0..2, [fused]);
}

/// Compile a clause into a [`Plan`], given the set of head variables the
/// caller binds, using the static cost table. Greedy: repeatedly
/// schedule the cheapest executable literal; ties break toward textual
/// order.
pub fn compile_clause(
    catalog: &Catalog,
    clause: &Clause,
    bound_at_entry: &HashSet<Var>,
) -> Result<Plan, ObjectLogError> {
    compile_clause_with(catalog, clause, bound_at_entry, &NoStats)
}

/// Compile a clause with a [`PlanStats`] source feeding the estimator:
/// literals are ranked by estimated output rows instead of the fixed
/// cost table wherever the source has an answer. Join semantics are
/// order-independent, so any ordering this produces computes the same
/// result set as [`compile_clause`] — only the cost differs.
pub fn compile_clause_with(
    catalog: &Catalog,
    clause: &Clause,
    bound_at_entry: &HashSet<Var>,
    stats: &dyn PlanStats,
) -> Result<Plan, ObjectLogError> {
    let mut bound = bound_at_entry.clone();
    let mut remaining: Vec<&Literal> = clause.body.iter().collect();
    let mut steps = Vec::with_capacity(remaining.len());
    let mut est_rows = 1.0;
    let mut any_stats = false;

    while !remaining.is_empty() {
        let (best_idx, best) = remaining
            .iter()
            .enumerate()
            .map(|(i, lit)| (i, literal_cost(catalog, lit, &bound, stats)))
            .min_by(|a, b| {
                a.1.cost
                    .partial_cmp(&b.1.cost)
                    .expect("costs are never NaN")
            })
            .expect("remaining is non-empty");
        if best.cost.is_infinite() {
            return Err(ObjectLogError::NotSchedulable {
                literal: format!("{:?}", remaining[best_idx]),
            });
        }
        if let Some(rows) = best.rows {
            est_rows *= rows;
            any_stats = true;
        }
        let lit = remaining.remove(best_idx);
        let step = lower(catalog, lit, &bound)?;
        // Update boundness.
        match lit {
            Literal::Pred { negated: false, .. } | Literal::Delta { .. } => {
                for v in lit.vars() {
                    bound.insert(v);
                }
            }
            Literal::Arith { result, .. } => {
                if let Some(v) = result.as_var() {
                    bound.insert(v);
                }
            }
            Literal::Unify { lhs, rhs } => {
                if let Some(v) = lhs.as_var() {
                    bound.insert(v);
                }
                if let Some(v) = rhs.as_var() {
                    bound.insert(v);
                }
            }
            _ => {}
        }
        steps.push(step);
    }

    if bound_at_entry.is_empty() {
        fuse_merge_join(&mut steps, stats);
    }

    Ok(Plan {
        steps,
        head: clause.head.clone(),
        n_vars: clause.n_vars,
        est_rows: any_stats.then_some(est_rows),
    })
}

fn lower(
    catalog: &Catalog,
    lit: &Literal,
    bound: &HashSet<Var>,
) -> Result<PlanStep, ObjectLogError> {
    Ok(match lit {
        Literal::Delta {
            pred,
            polarity,
            args,
        } => PlanStep::Delta {
            pred: *pred,
            polarity: *polarity,
            bound_cols: args
                .iter()
                .enumerate()
                .filter(|(_, t)| term_bound(t, bound))
                .map(|(i, _)| i)
                .collect(),
            args: args.clone(),
        },
        Literal::Cmp { op, lhs, rhs } => PlanStep::Cmp {
            op: *op,
            lhs: lhs.clone(),
            rhs: rhs.clone(),
        },
        Literal::Arith {
            op,
            result,
            lhs,
            rhs,
        } => PlanStep::Arith {
            op: *op,
            result: result.clone(),
            lhs: lhs.clone(),
            rhs: rhs.clone(),
        },
        Literal::Unify { lhs, rhs } => PlanStep::Unify {
            lhs: lhs.clone(),
            rhs: rhs.clone(),
        },
        Literal::Pred {
            pred,
            args,
            negated,
            epoch,
        } => {
            let def = catalog.def(*pred);
            if args.len() != def.arity {
                return Err(ObjectLogError::LiteralArityMismatch {
                    pred: def.name.clone(),
                    expected: def.arity,
                    found: args.len(),
                });
            }
            let bound_cols: Vec<usize> = args
                .iter()
                .enumerate()
                .filter(|(_, t)| term_bound(t, bound))
                .map(|(i, _)| i)
                .collect();
            if *negated {
                PlanStep::NegCheck {
                    pred: *pred,
                    args: args.clone(),
                    epoch: *epoch,
                }
            } else if let PredKind::Stored { rel, .. } = def.kind {
                PlanStep::Stored {
                    pred: *pred,
                    rel,
                    args: args.clone(),
                    bound_cols,
                    epoch: *epoch,
                }
            } else {
                PlanStep::Call {
                    pred: *pred,
                    args: args.clone(),
                    bound_cols,
                    epoch: *epoch,
                }
            }
        }
    })
}

/// Create the hash indexes a plan's stored probes need. Called once per
/// plan at rule-activation (and adaptive re-plan) time.
///
/// Δ-probes are covered too: the Δ-set itself builds its hash index
/// lazily at execution time, but the influent's *base* relation gets an
/// index over the same columns so the §7.2 checks and old-state views
/// that probe it on the Δ-join key never hit the scan fallback.
pub fn ensure_plan_indexes(catalog: &Catalog, plan: &Plan, storage: &mut Storage) {
    for step in &plan.steps {
        match step {
            // Probe (not scan, not full membership check) → index needed.
            PlanStep::Stored {
                rel,
                bound_cols,
                args,
                ..
            } if !bound_cols.is_empty() && bound_cols.len() < args.len() => {
                storage.ensure_index(*rel, bound_cols);
            }
            PlanStep::Delta {
                pred,
                bound_cols,
                args,
                ..
            } if !bound_cols.is_empty() && bound_cols.len() < args.len() => {
                if let PredKind::Stored { rel, .. } = catalog.def(*pred).kind {
                    storage.ensure_index(rel, bound_cols);
                }
            }
            // A merge join needs no hash index (both sides arrange
            // lazily), but the influent's base relation keeps the
            // Δ-join-key index for the same reason as the Δ-probe arm
            // above: checks and old-state views probe it on that key.
            PlanStep::MergeJoin {
                delta_pred,
                delta_cols,
                delta_args,
                ..
            } if delta_cols.len() < delta_args.len() => {
                if let PredKind::Stored { rel, .. } = catalog.def(*delta_pred).kind {
                    storage.ensure_index(rel, delta_cols);
                }
            }
            _ => {}
        }
    }
}

/// Create the hash indexes for *every* probe pattern the greedy
/// optimizer could choose for this clause, not just the ones the current
/// plan uses. Called at rule-activation time so that adaptive wave-front
/// re-optimization — which runs against an immutable storage snapshot
/// and cannot create indexes — never degrades a reordered probe into the
/// O(n) scan fallback.
///
/// A stored literal can only ever be probed on argument positions whose
/// terms are constants or variables bindable by some *other* body
/// literal, so the enumeration is over subsets of those "joinable"
/// columns (capped to keep index count bounded on wide literals).
pub fn ensure_join_indexes(catalog: &Catalog, clause: &Clause, storage: &mut Storage) {
    /// Whether scheduling `lit` binds variable `v` (mirrors the
    /// boundness update in [`compile_clause_with`]).
    fn binds(lit: &Literal, v: Var) -> bool {
        match lit {
            Literal::Pred { negated: false, .. } | Literal::Delta { .. } => lit.vars().contains(&v),
            Literal::Arith { result, .. } => result.as_var() == Some(v),
            Literal::Unify { lhs, rhs } => lhs.as_var() == Some(v) || rhs.as_var() == Some(v),
            _ => false,
        }
    }

    const MAX_JOINABLE: usize = 4;
    for (li, lit) in clause.body.iter().enumerate() {
        let Literal::Pred {
            pred,
            args,
            negated: false,
            ..
        } = lit
        else {
            continue;
        };
        let PredKind::Stored { rel, .. } = catalog.def(*pred).kind else {
            continue;
        };
        let joinable: Vec<usize> = args
            .iter()
            .enumerate()
            .filter(|(_, t)| match t {
                Term::Const(_) => true,
                Term::Var(v) => clause
                    .body
                    .iter()
                    .enumerate()
                    .any(|(lj, other)| lj != li && binds(other, *v)),
            })
            .map(|(i, _)| i)
            .collect();
        if joinable.is_empty() || joinable.len() > MAX_JOINABLE {
            continue;
        }
        for mask in 1u32..(1 << joinable.len()) {
            let cols: Vec<usize> = joinable
                .iter()
                .enumerate()
                .filter(|(b, _)| mask & (1 << b) != 0)
                .map(|(_, &c)| c)
                .collect();
            // A fully-bound access is a membership check, not a probe.
            if cols.len() < args.len() {
                storage.ensure_index(rel, &cols);
            }
        }
    }
}

impl Plan {
    /// Human-readable plan rendering, for tests and `explain`.
    pub fn render(&self, catalog: &Catalog) -> String {
        let mut out = String::new();
        for (i, step) in self.steps.iter().enumerate() {
            let line = match step {
                PlanStep::Stored {
                    pred,
                    bound_cols,
                    args,
                    epoch,
                    ..
                } => {
                    let access = if bound_cols.len() == args.len() {
                        "lookup"
                    } else if bound_cols.is_empty() {
                        "scan"
                    } else {
                        "probe"
                    };
                    format!(
                        "{access} {}{}{:?}",
                        catalog.name(*pred),
                        if *epoch == StateEpoch::Old {
                            "_old"
                        } else {
                            ""
                        },
                        bound_cols
                    )
                }
                PlanStep::Delta {
                    pred,
                    polarity,
                    bound_cols,
                    args,
                } => {
                    let access = if bound_cols.is_empty() {
                        "delta-scan"
                    } else if bound_cols.len() == args.len() {
                        "delta-lookup"
                    } else {
                        "delta-probe"
                    };
                    if bound_cols.is_empty() {
                        format!("{access} {polarity}{}", catalog.name(*pred))
                    } else {
                        format!("{access} {polarity}{}{bound_cols:?}", catalog.name(*pred))
                    }
                }
                PlanStep::Call {
                    pred,
                    bound_cols,
                    epoch,
                    ..
                } => format!(
                    "call {}{}{:?}",
                    catalog.name(*pred),
                    if *epoch == StateEpoch::Old {
                        "_old"
                    } else {
                        ""
                    },
                    bound_cols
                ),
                PlanStep::NegCheck { pred, epoch, .. } => format!(
                    "neg-check {}{}",
                    catalog.name(*pred),
                    if *epoch == StateEpoch::Old {
                        "_old"
                    } else {
                        ""
                    }
                ),
                PlanStep::Cmp { op, lhs, rhs } => format!("test {lhs} {op} {rhs}"),
                PlanStep::Arith {
                    op,
                    result,
                    lhs,
                    rhs,
                } => format!("compute {result} = {lhs} {op} {rhs}"),
                PlanStep::Unify { lhs, rhs } => format!("unify {lhs} = {rhs}"),
                PlanStep::MergeJoin {
                    delta_pred,
                    polarity,
                    stored_pred,
                    delta_cols,
                    rel_cols,
                    ..
                } => format!(
                    "merge-join {polarity}{}{delta_cols:?} ⋈ {}{rel_cols:?}",
                    catalog.name(*delta_pred),
                    catalog.name(*stored_pred)
                ),
            };
            out.push_str(&format!("{i}: {line}\n"));
        }
        if let Some(est) = self.est_rows {
            out.push_str(&format!("est-rows: {est:.2}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clause::ClauseBuilder;
    use amos_types::TypeId;

    fn sig(n: usize) -> Vec<TypeId> {
        vec![TypeId(0); n]
    }

    /// Build the flat cnd_monitor_items clause of §4.3 and check the plan
    /// seeded by Δ₊quantity orders probes after the delta scan.
    #[test]
    fn differential_plan_is_delta_seeded() {
        let mut cat = Catalog::new();
        let quantity = cat.define_stored("quantity", sig(2), RelId(0), 1).unwrap();
        let consume = cat
            .define_stored("consume_freq", sig(2), RelId(1), 1)
            .unwrap();
        let delivery = cat
            .define_stored("delivery_time", sig(3), RelId(2), 2)
            .unwrap();
        let supplies = cat.define_stored("supplies", sig(2), RelId(3), 1).unwrap();
        let min_stock = cat.define_stored("min_stock", sig(2), RelId(4), 1).unwrap();

        // Δcnd/Δ₊quantity(I) ← Δ₊quantity(I,G1) ∧ consume_freq(I,G2) ∧
        //   delivery_time(I,G3,G4) ∧ supplies(I,G3) ∧ G5=G2*G4 ∧
        //   min_stock(I,G6) ∧ G7=G5+G6 ∧ G1<G7
        let clause = ClauseBuilder::new(8)
            .head([Term::var(0)])
            .delta(quantity, Polarity::Plus, [Term::var(0), Term::var(1)])
            .pred(consume, [Term::var(0), Term::var(2)])
            .pred(delivery, [Term::var(0), Term::var(3), Term::var(4)])
            .pred(supplies, [Term::var(0), Term::var(3)])
            .arith(Term::var(5), Term::var(2), ArithOp::Mul, Term::var(4))
            .pred(min_stock, [Term::var(0), Term::var(6)])
            .arith(Term::var(7), Term::var(5), ArithOp::Add, Term::var(6))
            .cmp(Term::var(1), CmpOp::Lt, Term::var(7))
            .build();

        let plan = compile_clause(&cat, &clause, &HashSet::new()).unwrap();
        assert!(matches!(plan.steps[0], PlanStep::Delta { .. }));
        // Everything after the seed is a probe/lookup or builtin — no scans.
        for step in &plan.steps[1..] {
            if let PlanStep::Stored {
                bound_cols, args, ..
            } = step
            {
                assert!(
                    !bound_cols.is_empty(),
                    "stored access must be at least a probe: {step:?}"
                );
                let _ = args;
            }
        }
        let rendered = plan.render(&cat);
        assert!(rendered.contains("delta-scan Δ+quantity"), "{rendered}");
    }

    #[test]
    fn builtins_deferred_until_bound() {
        let mut cat = Catalog::new();
        let q = cat.define_stored("q", sig(2), RelId(0), 1).unwrap();
        // head(X,Z) ← Z = X + 1 ∧ q(X, Y) — arith listed first but must
        // be scheduled after q binds X.
        let clause = ClauseBuilder::new(3)
            .head([Term::var(0), Term::var(2)])
            .arith(Term::var(2), Term::var(0), ArithOp::Add, Term::val(1))
            .pred(q, [Term::var(0), Term::var(1)])
            .build();
        let plan = compile_clause(&cat, &clause, &HashSet::new()).unwrap();
        assert!(matches!(plan.steps[0], PlanStep::Stored { .. }));
        assert!(matches!(plan.steps[1], PlanStep::Arith { .. }));
    }

    #[test]
    fn unschedulable_detected() {
        let cat = Catalog::new();
        // Z = X + 1 with X never bindable.
        let clause = ClauseBuilder::new(2)
            .head([Term::var(1)])
            .arith(Term::var(1), Term::var(0), ArithOp::Add, Term::val(1))
            .build();
        assert!(matches!(
            compile_clause(&cat, &clause, &HashSet::new()),
            Err(ObjectLogError::NotSchedulable { .. })
        ));
    }

    #[test]
    fn bound_head_turns_scan_into_probe() {
        let mut cat = Catalog::new();
        let q = cat.define_stored("q", sig(2), RelId(0), 1).unwrap();
        let clause = ClauseBuilder::new(2)
            .head([Term::var(0), Term::var(1)])
            .pred(q, [Term::var(0), Term::var(1)])
            .build();
        // Unbound: scan.
        let p1 = compile_clause(&cat, &clause, &HashSet::new()).unwrap();
        match &p1.steps[0] {
            PlanStep::Stored { bound_cols, .. } => assert!(bound_cols.is_empty()),
            other => panic!("{other:?}"),
        }
        // First head var bound: probe on column 0.
        let mut bound = HashSet::new();
        bound.insert(Var(0));
        let p2 = compile_clause(&cat, &clause, &bound).unwrap();
        match &p2.steps[0] {
            PlanStep::Stored { bound_cols, .. } => assert_eq!(bound_cols, &vec![0]),
            other => panic!("{other:?}"),
        }
    }

    /// Statistics source for estimator tests: fixed per-relation
    /// cardinalities/NDVs and per-predicate Δ sizes.
    struct MockStats {
        cards: Vec<(RelId, f64)>,
        ndvs: Vec<(RelId, usize, f64)>,
        deltas: Vec<(PredId, Polarity, f64)>,
    }

    impl PlanStats for MockStats {
        fn cardinality(&self, rel: RelId) -> Option<f64> {
            self.cards.iter().find(|(r, _)| *r == rel).map(|(_, c)| *c)
        }
        fn ndv(&self, rel: RelId, col: usize) -> Option<f64> {
            self.ndvs
                .iter()
                .find(|(r, c, _)| *r == rel && *c == col)
                .map(|(_, _, n)| *n)
        }
        fn delta_len(&self, pred: PredId, polarity: Polarity) -> Option<f64> {
            self.deltas
                .iter()
                .find(|(p, pol, _)| *p == pred && *pol == polarity)
                .map(|(_, _, d)| *d)
        }
    }

    /// Satellite fix: a fully-bound derived call is a rule evaluation,
    /// not a hash lookup — stored probes must be scheduled before it.
    #[test]
    fn fully_bound_derived_call_costs_as_derived_evaluation() {
        let mut cat = Catalog::new();
        let q = cat.define_stored("q", sig(2), RelId(0), 1).unwrap();
        let r = cat.define_stored("r", sig(2), RelId(1), 1).unwrap();
        let d = cat
            .define_derived(
                "d",
                sig(1),
                vec![ClauseBuilder::new(2)
                    .head([Term::var(0)])
                    .pred(r, [Term::var(0), Term::var(1)])
                    .build()],
            )
            .unwrap();
        // Δ₊q(X,Y) ∧ d(X) ∧ r(X,Z): after the seed binds X and Y, d(X) is
        // fully bound (old cost: LOOKUP) while r(X,_) is a probe. The
        // probe must win now that d costs as a derived evaluation.
        let clause = ClauseBuilder::new(3)
            .head([Term::var(0)])
            .delta(q, Polarity::Plus, [Term::var(0), Term::var(1)])
            .pred(d, [Term::var(0)])
            .pred(r, [Term::var(0), Term::var(2)])
            .build();
        let plan = compile_clause(&cat, &clause, &HashSet::new()).unwrap();
        assert!(matches!(plan.steps[0], PlanStep::Delta { .. }));
        assert!(
            matches!(plan.steps[1], PlanStep::Stored { .. }),
            "stored probe must precede the fully-bound derived call: {:?}",
            plan.steps
        );
        assert!(matches!(plan.steps[2], PlanStep::Call { .. }));
        assert!(
            plan.est_rows.is_none(),
            "static compile carries no estimate"
        );
    }

    /// With statistics, probe ordering follows `|R| / ndv(col)`: the
    /// selective (functional) probe runs before the high-fanout one even
    /// though the static table ties them and textual order favors the
    /// fanout literal.
    #[test]
    fn estimator_orders_probes_by_selectivity() {
        let mut cat = Catalog::new();
        let s = cat.define_stored("s", sig(2), RelId(0), 1).unwrap();
        let big = cat.define_stored("big", sig(2), RelId(1), 1).unwrap();
        let pick = cat.define_stored("pick", sig(2), RelId(2), 1).unwrap();
        // Δ₊s(X,G) ∧ big(G,Y) ∧ pick(X,Y)
        let clause = ClauseBuilder::new(3)
            .head([Term::var(0)])
            .delta(s, Polarity::Plus, [Term::var(0), Term::var(1)])
            .pred(big, [Term::var(1), Term::var(2)])
            .pred(pick, [Term::var(0), Term::var(2)])
            .build();

        // Static: tie at PROBE → textual order → big first.
        let static_plan = compile_clause(&cat, &clause, &HashSet::new()).unwrap();
        match &static_plan.steps[1] {
            PlanStep::Stored { rel, .. } => assert_eq!(*rel, RelId(1), "textual order picks big"),
            other => panic!("{other:?}"),
        }

        // Stats: big probes at 100k/10 = 10k rows, pick at 100k/100k = 1.
        let stats = MockStats {
            cards: vec![(RelId(1), 100_000.0), (RelId(2), 100_000.0)],
            ndvs: vec![(RelId(1), 0, 10.0), (RelId(2), 0, 100_000.0)],
            deltas: vec![(s, Polarity::Plus, 2.0)],
        };
        let adaptive = compile_clause_with(&cat, &clause, &HashSet::new(), &stats).unwrap();
        assert!(matches!(adaptive.steps[0], PlanStep::Delta { .. }));
        match &adaptive.steps[1] {
            PlanStep::Stored { rel, .. } => {
                assert_eq!(*rel, RelId(2), "selective pick probe goes first")
            }
            other => panic!("{other:?}"),
        }
        match &adaptive.steps[2] {
            PlanStep::Stored {
                rel, bound_cols, ..
            } => {
                assert_eq!(*rel, RelId(1));
                assert_eq!(bound_cols.len(), 2, "big is fully bound by then");
            }
            other => panic!("{other:?}"),
        }
        let est = adaptive.est_rows.expect("stats compile estimates rows");
        assert!(
            est > 0.0 && est < 100.0,
            "tiny Δ → tiny estimate, got {est}"
        );
    }

    /// Δ-seed costing: a bulk-load Δ against a tiny base relation no
    /// longer Δ-seeds — the estimator flips the order and then fuses
    /// the pair into a sorted merge join, with the key columns aligned
    /// on the shared variable.
    #[test]
    fn bulk_delta_fuses_into_merge_join() {
        let mut cat = Catalog::new();
        let s = cat.define_stored("s", sig(2), RelId(0), 1).unwrap();
        let small = cat.define_stored("small", sig(1), RelId(1), 1).unwrap();
        // Δ₊s(X,G) ∧ small(G)
        let clause = ClauseBuilder::new(2)
            .head([Term::var(0)])
            .delta(s, Polarity::Plus, [Term::var(0), Term::var(1)])
            .pred(small, [Term::var(1)])
            .build();
        let stats = MockStats {
            cards: vec![(RelId(1), 4.0)],
            ndvs: vec![(RelId(1), 0, 4.0)],
            deltas: vec![(s, Polarity::Plus, 100_000.0)],
        };
        let plan = compile_clause_with(&cat, &clause, &HashSet::new(), &stats).unwrap();
        assert_eq!(plan.steps.len(), 1, "both literals fused: {:?}", plan.steps);
        match &plan.steps[0] {
            PlanStep::MergeJoin {
                rel,
                delta_cols,
                rel_cols,
                polarity,
                ..
            } => {
                assert_eq!(*rel, RelId(1));
                assert_eq!(*polarity, Polarity::Plus);
                assert_eq!(delta_cols, &vec![1], "Δ side keyed on G");
                assert_eq!(rel_cols, &vec![0], "base side keyed on G");
            }
            other => panic!("bulk load must fuse: {other:?}"),
        }
        let rendered = plan.render(&cat);
        assert!(
            rendered.contains("merge-join Δ+s[1] ⋈ small[0]"),
            "{rendered}"
        );
        // The same clause with a tiny Δ keeps the Δ-seeded probe order:
        // sorting a two-tuple Δ never beats two hash probes.
        let tiny = MockStats {
            cards: vec![(RelId(1), 4.0)],
            ndvs: vec![(RelId(1), 0, 4.0)],
            deltas: vec![(s, Polarity::Plus, 2.0)],
        };
        let seeded = compile_clause_with(&cat, &clause, &HashSet::new(), &tiny).unwrap();
        assert!(matches!(seeded.steps[0], PlanStep::Delta { .. }));
        assert!(matches!(seeded.steps[1], PlanStep::Stored { .. }));
    }

    /// Fusion is a peephole over the two *leading* steps only, and a
    /// bound entry pattern disables it (the caller's bindings turn the
    /// pair into probes that a zipper cannot exploit).
    #[test]
    fn merge_join_fusion_respects_gates() {
        let mut cat = Catalog::new();
        let s = cat.define_stored("s", sig(2), RelId(0), 1).unwrap();
        let small = cat.define_stored("small", sig(1), RelId(1), 1).unwrap();
        let clause = ClauseBuilder::new(2)
            .head([Term::var(0)])
            .delta(s, Polarity::Plus, [Term::var(0), Term::var(1)])
            .pred(small, [Term::var(1)])
            .build();
        let stats = MockStats {
            cards: vec![(RelId(1), 4.0)],
            ndvs: vec![(RelId(1), 0, 4.0)],
            deltas: vec![(s, Polarity::Plus, 100_000.0)],
        };
        // Bound entry → no fusion.
        let mut bound = HashSet::new();
        bound.insert(Var(0));
        let plan = compile_clause_with(&cat, &clause, &bound, &stats).unwrap();
        assert!(
            !plan
                .steps
                .iter()
                .any(|s| matches!(s, PlanStep::MergeJoin { .. })),
            "{:?}",
            plan.steps
        );
        // No statistics → no fusion (static planner is reproduced).
        let static_plan = compile_clause(&cat, &clause, &HashSet::new()).unwrap();
        assert!(
            !static_plan
                .steps
                .iter()
                .any(|s| matches!(s, PlanStep::MergeJoin { .. })),
            "{:?}",
            static_plan.steps
        );
    }

    /// The run profile feeds the pricing: a base side already laid out
    /// in a few sorted runs arranges at a fraction of a full sort.
    #[test]
    fn run_profile_discounts_arranged_side() {
        let card = 1_000_000.0;
        let from_scratch = merge_join_estimate(10_000.0, card, None);
        let arranged = merge_join_estimate(10_000.0, card, Some((3, 1_000_000)));
        assert!(
            arranged < from_scratch / 2.0,
            "run-resident tuples must price below a full sort: {arranged} vs {from_scratch}"
        );
    }

    #[test]
    fn ensure_indexes_creates_probe_indexes() {
        let mut storage = Storage::new();
        let rel = storage.create_relation("q", 2).unwrap();
        let mut cat = Catalog::new();
        let q = cat.define_stored("q", sig(2), rel, 1).unwrap();
        let clause = ClauseBuilder::new(3)
            .head([Term::var(0)])
            .delta(q, Polarity::Plus, [Term::var(0), Term::var(1)])
            .pred(q, [Term::var(0), Term::var(2)])
            .build();
        let plan = compile_clause(&cat, &clause, &HashSet::new()).unwrap();
        ensure_plan_indexes(&cat, &plan, &mut storage);
        assert!(storage.relation(rel).has_index(&[0]));
    }
}
