//! Plan compilation: greedy literal reordering with index-backed probes.
//!
//! Each partial differential "is a relatively simple database query which
//! is optimized using traditional query optimization techniques \[22\].
//! The optimizer assumes few changes to a single influent." We implement
//! that assumption directly in the cost model: Δ-literals cost nothing
//! (their cardinality is assumed tiny) and are scheduled first, seeding
//! the join; remaining literals are ordered greedily by boundness so
//! every stored access becomes an index probe whenever possible.
//!
//! A [`Plan`] is compiled for a clause plus a *binding pattern* (which
//! head columns the caller has bound) and is reusable across
//! transactions — the rule compiler compiles every differential once at
//! activation time.

use std::collections::HashSet;

use amos_storage::{Polarity, RelId, StateEpoch, Storage};
use amos_types::{ArithOp, CmpOp};

use crate::catalog::{Catalog, PredId, PredKind};
use crate::clause::{Clause, Literal, Term, Var};
use crate::error::ObjectLogError;

/// One executable step of a compiled plan.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanStep {
    /// Access a stored predicate: probe by `bound_cols` (empty = full
    /// scan, all columns = membership check), binding the remaining
    /// argument variables.
    Stored {
        /// Predicate (for diagnostics).
        pred: PredId,
        /// Backing relation.
        rel: RelId,
        /// Argument terms.
        args: Vec<Term>,
        /// Columns bound at this point in the plan.
        bound_cols: Vec<usize>,
        /// State epoch the literal must be evaluated in.
        epoch: StateEpoch,
    },
    /// Scan one side of an influent's Δ-set.
    Delta {
        /// The influent predicate.
        pred: PredId,
        /// Which side of the Δ-set.
        polarity: Polarity,
        /// Argument terms.
        args: Vec<Term>,
    },
    /// Goal-directed call of a derived (or foreign) predicate with the
    /// currently bound argument positions as the pattern.
    Call {
        /// Callee.
        pred: PredId,
        /// Argument terms.
        args: Vec<Term>,
        /// Argument positions bound at call time.
        bound_cols: Vec<usize>,
        /// State epoch for the callee's evaluation.
        epoch: StateEpoch,
    },
    /// Negation-as-failure check; all argument variables are bound.
    NegCheck {
        /// Negated predicate.
        pred: PredId,
        /// Argument terms (fully bound).
        args: Vec<Term>,
        /// State epoch.
        epoch: StateEpoch,
    },
    /// Comparison test (operands bound).
    Cmp {
        /// Operator.
        op: CmpOp,
        /// Left operand.
        lhs: Term,
        /// Right operand.
        rhs: Term,
    },
    /// Arithmetic: bind or test `result = lhs op rhs`.
    Arith {
        /// Operator.
        op: ArithOp,
        /// Result term.
        result: Term,
        /// Left operand (bound).
        lhs: Term,
        /// Right operand (bound).
        rhs: Term,
    },
    /// Unification `lhs = rhs` (at least one side resolvable).
    Unify {
        /// Left term.
        lhs: Term,
        /// Right term.
        rhs: Term,
    },
}

/// A compiled, reusable execution plan for one clause under one binding
/// pattern.
#[derive(Debug, Clone, PartialEq)]
pub struct Plan {
    /// Ordered steps.
    pub steps: Vec<PlanStep>,
    /// The clause head (projection producing result tuples).
    pub head: Vec<Term>,
    /// Total variable count of the clause.
    pub n_vars: u32,
}

/// Cost model constants — relative magnitudes are what matters.
mod cost {
    /// Δ-literal: assumed tiny ("few changes to a single influent").
    pub const DELTA: f64 = 0.0;
    /// Executable built-in (comparison/arith/unify): pure CPU.
    pub const BUILTIN: f64 = 0.1;
    /// Fully-bound negation check: one lookup.
    pub const NEG_CHECK: f64 = 0.5;
    /// Fully-bound positive literal: one membership lookup.
    pub const LOOKUP: f64 = 1.0;
    /// Partially-bound stored literal: one index probe.
    pub const PROBE: f64 = 10.0;
    /// Partially-bound derived call.
    pub const DERIVED_PROBE: f64 = 50.0;
    /// Unbound stored scan.
    pub const SCAN: f64 = 10_000.0;
    /// Unbound derived materialization.
    pub const DERIVED_SCAN: f64 = 20_000.0;
    /// Not executable yet.
    pub const INF: f64 = f64::INFINITY;
}

fn term_bound(t: &Term, bound: &HashSet<Var>) -> bool {
    match t {
        Term::Const(_) => true,
        Term::Var(v) => bound.contains(v),
    }
}

fn literal_cost(catalog: &Catalog, lit: &Literal, bound: &HashSet<Var>) -> f64 {
    match lit {
        Literal::Delta { .. } => cost::DELTA,
        Literal::Cmp { lhs, rhs, .. } => {
            if term_bound(lhs, bound) && term_bound(rhs, bound) {
                cost::BUILTIN
            } else {
                cost::INF
            }
        }
        Literal::Arith {
            result, lhs, rhs, ..
        } => {
            if term_bound(lhs, bound) && term_bound(rhs, bound) {
                // result may bind or test; both are fine
                let _ = result;
                cost::BUILTIN
            } else {
                cost::INF
            }
        }
        Literal::Unify { lhs, rhs } => {
            if term_bound(lhs, bound) || term_bound(rhs, bound) {
                cost::BUILTIN
            } else {
                cost::INF
            }
        }
        Literal::Pred {
            pred,
            args,
            negated,
            ..
        } => {
            let n_bound = args.iter().filter(|t| term_bound(t, bound)).count();
            let all_bound = n_bound == args.len();
            if *negated {
                return if all_bound {
                    cost::NEG_CHECK
                } else {
                    cost::INF
                };
            }
            let derived = !matches!(catalog.def(*pred).kind, PredKind::Stored { .. });
            match (all_bound, n_bound > 0, derived) {
                (true, _, _) => cost::LOOKUP,
                (false, true, false) => cost::PROBE,
                (false, true, true) => cost::DERIVED_PROBE,
                (false, false, false) => cost::SCAN,
                (false, false, true) => cost::DERIVED_SCAN,
            }
        }
    }
}

/// Compile a clause into a [`Plan`], given the set of head variables the
/// caller binds. Greedy: repeatedly schedule the cheapest executable
/// literal; ties break toward textual order.
pub fn compile_clause(
    catalog: &Catalog,
    clause: &Clause,
    bound_at_entry: &HashSet<Var>,
) -> Result<Plan, ObjectLogError> {
    let mut bound = bound_at_entry.clone();
    let mut remaining: Vec<&Literal> = clause.body.iter().collect();
    let mut steps = Vec::with_capacity(remaining.len());

    while !remaining.is_empty() {
        let (best_idx, best_cost) = remaining
            .iter()
            .enumerate()
            .map(|(i, lit)| (i, literal_cost(catalog, lit, &bound)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("costs are never NaN"))
            .expect("remaining is non-empty");
        if best_cost.is_infinite() {
            return Err(ObjectLogError::NotSchedulable {
                literal: format!("{:?}", remaining[best_idx]),
            });
        }
        let lit = remaining.remove(best_idx);
        let step = lower(catalog, lit, &bound)?;
        // Update boundness.
        match lit {
            Literal::Pred { negated: false, .. } | Literal::Delta { .. } => {
                for v in lit.vars() {
                    bound.insert(v);
                }
            }
            Literal::Arith { result, .. } => {
                if let Some(v) = result.as_var() {
                    bound.insert(v);
                }
            }
            Literal::Unify { lhs, rhs } => {
                if let Some(v) = lhs.as_var() {
                    bound.insert(v);
                }
                if let Some(v) = rhs.as_var() {
                    bound.insert(v);
                }
            }
            _ => {}
        }
        steps.push(step);
    }

    Ok(Plan {
        steps,
        head: clause.head.clone(),
        n_vars: clause.n_vars,
    })
}

fn lower(
    catalog: &Catalog,
    lit: &Literal,
    bound: &HashSet<Var>,
) -> Result<PlanStep, ObjectLogError> {
    Ok(match lit {
        Literal::Delta {
            pred,
            polarity,
            args,
        } => PlanStep::Delta {
            pred: *pred,
            polarity: *polarity,
            args: args.clone(),
        },
        Literal::Cmp { op, lhs, rhs } => PlanStep::Cmp {
            op: *op,
            lhs: lhs.clone(),
            rhs: rhs.clone(),
        },
        Literal::Arith {
            op,
            result,
            lhs,
            rhs,
        } => PlanStep::Arith {
            op: *op,
            result: result.clone(),
            lhs: lhs.clone(),
            rhs: rhs.clone(),
        },
        Literal::Unify { lhs, rhs } => PlanStep::Unify {
            lhs: lhs.clone(),
            rhs: rhs.clone(),
        },
        Literal::Pred {
            pred,
            args,
            negated,
            epoch,
        } => {
            let def = catalog.def(*pred);
            if args.len() != def.arity {
                return Err(ObjectLogError::LiteralArityMismatch {
                    pred: def.name.clone(),
                    expected: def.arity,
                    found: args.len(),
                });
            }
            let bound_cols: Vec<usize> = args
                .iter()
                .enumerate()
                .filter(|(_, t)| term_bound(t, bound))
                .map(|(i, _)| i)
                .collect();
            if *negated {
                PlanStep::NegCheck {
                    pred: *pred,
                    args: args.clone(),
                    epoch: *epoch,
                }
            } else if let PredKind::Stored { rel, .. } = def.kind {
                PlanStep::Stored {
                    pred: *pred,
                    rel,
                    args: args.clone(),
                    bound_cols,
                    epoch: *epoch,
                }
            } else {
                PlanStep::Call {
                    pred: *pred,
                    args: args.clone(),
                    bound_cols,
                    epoch: *epoch,
                }
            }
        }
    })
}

/// Create the hash indexes a plan's stored probes need. Called once per
/// plan at rule-activation time.
pub fn ensure_plan_indexes(plan: &Plan, storage: &mut Storage) {
    for step in &plan.steps {
        if let PlanStep::Stored {
            rel,
            bound_cols,
            args,
            ..
        } = step
        {
            // Probe (not scan, not full membership check) → index needed.
            if !bound_cols.is_empty() && bound_cols.len() < args.len() {
                storage.ensure_index(*rel, bound_cols);
            }
        }
    }
}

impl Plan {
    /// Human-readable plan rendering, for tests and `explain`.
    pub fn render(&self, catalog: &Catalog) -> String {
        let mut out = String::new();
        for (i, step) in self.steps.iter().enumerate() {
            let line = match step {
                PlanStep::Stored {
                    pred,
                    bound_cols,
                    args,
                    epoch,
                    ..
                } => {
                    let access = if bound_cols.len() == args.len() {
                        "lookup"
                    } else if bound_cols.is_empty() {
                        "scan"
                    } else {
                        "probe"
                    };
                    format!(
                        "{access} {}{}{:?}",
                        catalog.name(*pred),
                        if *epoch == StateEpoch::Old {
                            "_old"
                        } else {
                            ""
                        },
                        bound_cols
                    )
                }
                PlanStep::Delta { pred, polarity, .. } => {
                    format!("delta-scan {polarity}{}", catalog.name(*pred))
                }
                PlanStep::Call {
                    pred,
                    bound_cols,
                    epoch,
                    ..
                } => format!(
                    "call {}{}{:?}",
                    catalog.name(*pred),
                    if *epoch == StateEpoch::Old {
                        "_old"
                    } else {
                        ""
                    },
                    bound_cols
                ),
                PlanStep::NegCheck { pred, epoch, .. } => format!(
                    "neg-check {}{}",
                    catalog.name(*pred),
                    if *epoch == StateEpoch::Old {
                        "_old"
                    } else {
                        ""
                    }
                ),
                PlanStep::Cmp { op, lhs, rhs } => format!("test {lhs} {op} {rhs}"),
                PlanStep::Arith {
                    op,
                    result,
                    lhs,
                    rhs,
                } => format!("compute {result} = {lhs} {op} {rhs}"),
                PlanStep::Unify { lhs, rhs } => format!("unify {lhs} = {rhs}"),
            };
            out.push_str(&format!("{i}: {line}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clause::ClauseBuilder;
    use amos_types::TypeId;

    fn sig(n: usize) -> Vec<TypeId> {
        vec![TypeId(0); n]
    }

    /// Build the flat cnd_monitor_items clause of §4.3 and check the plan
    /// seeded by Δ₊quantity orders probes after the delta scan.
    #[test]
    fn differential_plan_is_delta_seeded() {
        let mut cat = Catalog::new();
        let quantity = cat.define_stored("quantity", sig(2), RelId(0), 1).unwrap();
        let consume = cat
            .define_stored("consume_freq", sig(2), RelId(1), 1)
            .unwrap();
        let delivery = cat
            .define_stored("delivery_time", sig(3), RelId(2), 2)
            .unwrap();
        let supplies = cat.define_stored("supplies", sig(2), RelId(3), 1).unwrap();
        let min_stock = cat.define_stored("min_stock", sig(2), RelId(4), 1).unwrap();

        // Δcnd/Δ₊quantity(I) ← Δ₊quantity(I,G1) ∧ consume_freq(I,G2) ∧
        //   delivery_time(I,G3,G4) ∧ supplies(I,G3) ∧ G5=G2*G4 ∧
        //   min_stock(I,G6) ∧ G7=G5+G6 ∧ G1<G7
        let clause = ClauseBuilder::new(8)
            .head([Term::var(0)])
            .delta(quantity, Polarity::Plus, [Term::var(0), Term::var(1)])
            .pred(consume, [Term::var(0), Term::var(2)])
            .pred(delivery, [Term::var(0), Term::var(3), Term::var(4)])
            .pred(supplies, [Term::var(0), Term::var(3)])
            .arith(Term::var(5), Term::var(2), ArithOp::Mul, Term::var(4))
            .pred(min_stock, [Term::var(0), Term::var(6)])
            .arith(Term::var(7), Term::var(5), ArithOp::Add, Term::var(6))
            .cmp(Term::var(1), CmpOp::Lt, Term::var(7))
            .build();

        let plan = compile_clause(&cat, &clause, &HashSet::new()).unwrap();
        assert!(matches!(plan.steps[0], PlanStep::Delta { .. }));
        // Everything after the seed is a probe/lookup or builtin — no scans.
        for step in &plan.steps[1..] {
            if let PlanStep::Stored {
                bound_cols, args, ..
            } = step
            {
                assert!(
                    !bound_cols.is_empty(),
                    "stored access must be at least a probe: {step:?}"
                );
                let _ = args;
            }
        }
        let rendered = plan.render(&cat);
        assert!(rendered.contains("delta-scan Δ+quantity"), "{rendered}");
    }

    #[test]
    fn builtins_deferred_until_bound() {
        let mut cat = Catalog::new();
        let q = cat.define_stored("q", sig(2), RelId(0), 1).unwrap();
        // head(X,Z) ← Z = X + 1 ∧ q(X, Y) — arith listed first but must
        // be scheduled after q binds X.
        let clause = ClauseBuilder::new(3)
            .head([Term::var(0), Term::var(2)])
            .arith(Term::var(2), Term::var(0), ArithOp::Add, Term::val(1))
            .pred(q, [Term::var(0), Term::var(1)])
            .build();
        let plan = compile_clause(&cat, &clause, &HashSet::new()).unwrap();
        assert!(matches!(plan.steps[0], PlanStep::Stored { .. }));
        assert!(matches!(plan.steps[1], PlanStep::Arith { .. }));
    }

    #[test]
    fn unschedulable_detected() {
        let cat = Catalog::new();
        // Z = X + 1 with X never bindable.
        let clause = ClauseBuilder::new(2)
            .head([Term::var(1)])
            .arith(Term::var(1), Term::var(0), ArithOp::Add, Term::val(1))
            .build();
        assert!(matches!(
            compile_clause(&cat, &clause, &HashSet::new()),
            Err(ObjectLogError::NotSchedulable { .. })
        ));
    }

    #[test]
    fn bound_head_turns_scan_into_probe() {
        let mut cat = Catalog::new();
        let q = cat.define_stored("q", sig(2), RelId(0), 1).unwrap();
        let clause = ClauseBuilder::new(2)
            .head([Term::var(0), Term::var(1)])
            .pred(q, [Term::var(0), Term::var(1)])
            .build();
        // Unbound: scan.
        let p1 = compile_clause(&cat, &clause, &HashSet::new()).unwrap();
        match &p1.steps[0] {
            PlanStep::Stored { bound_cols, .. } => assert!(bound_cols.is_empty()),
            other => panic!("{other:?}"),
        }
        // First head var bound: probe on column 0.
        let mut bound = HashSet::new();
        bound.insert(Var(0));
        let p2 = compile_clause(&cat, &clause, &bound).unwrap();
        match &p2.steps[0] {
            PlanStep::Stored { bound_cols, .. } => assert_eq!(bound_cols, &vec![0]),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn ensure_indexes_creates_probe_indexes() {
        let mut storage = Storage::new();
        let rel = storage.create_relation("q", 2).unwrap();
        let mut cat = Catalog::new();
        let q = cat.define_stored("q", sig(2), rel, 1).unwrap();
        let clause = ClauseBuilder::new(3)
            .head([Term::var(0)])
            .delta(q, Polarity::Plus, [Term::var(0), Term::var(1)])
            .pred(q, [Term::var(0), Term::var(2)])
            .build();
        let plan = compile_clause(&cat, &clause, &HashSet::new()).unwrap();
        ensure_plan_indexes(&plan, &mut storage);
        assert!(storage.relation(rel).has_index(&[0]));
    }
}
