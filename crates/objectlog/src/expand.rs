//! Inline expansion (flattening) of derived predicates.
//!
//! "The AMOSQL compiler expands as many derived relations as possible to
//! have more degrees of freedom for optimizations" (§4.3) — fully
//! expanded conditions yield the *flat* propagation network of fig. 2.
//! §7.1 discusses the alternative: stopping expansion at shared
//! sub-functions (e.g. `threshold`) produces a *bushy* network with
//! intermediate nodes that can be shared between rules.
//!
//! [`ExpandOptions`] controls which predicates are kept as boundaries;
//! [`expand_predicate`] returns the flattened clause set (expansion of a
//! disjunctive sub-predicate multiplies clauses).
//!
//! Negated derived literals are *not* expanded (that would require full
//! DNF through ¬(A ∧ B)); they stay as calls, which the evaluator handles
//! recursively — matching the paper's late-binding caveat that not
//! everything can be flattened.

use std::collections::HashSet;

use crate::catalog::{Catalog, PredId, PredKind};
use crate::clause::{Clause, Literal, Term, Var};
use crate::error::ObjectLogError;

/// Options for expansion.
#[derive(Debug, Clone, Default)]
pub struct ExpandOptions {
    /// Predicates to keep as boundaries (not expanded) — the §7.1
    /// node-sharing experiment keeps `threshold` here.
    pub keep: HashSet<PredId>,
    /// Safety bound on total clauses produced per predicate.
    pub max_clauses: Option<usize>,
}

impl ExpandOptions {
    /// Expand everything (the default AMOS behaviour → flat network).
    pub fn full() -> Self {
        ExpandOptions::default()
    }

    /// Keep the given predicates unexpanded (→ bushy network).
    pub fn keeping(preds: impl IntoIterator<Item = PredId>) -> Self {
        ExpandOptions {
            keep: preds.into_iter().collect(),
            max_clauses: None,
        }
    }
}

/// Shift every variable in a term by `offset`.
fn shift_term(t: &Term, offset: u32) -> Term {
    match t {
        Term::Var(Var(i)) => Term::Var(Var(i + offset)),
        Term::Const(_) => t.clone(),
    }
}

fn shift_literal(lit: &Literal, offset: u32) -> Literal {
    match lit {
        Literal::Pred {
            pred,
            args,
            negated,
            epoch,
        } => Literal::Pred {
            pred: *pred,
            args: args.iter().map(|t| shift_term(t, offset)).collect(),
            negated: *negated,
            epoch: *epoch,
        },
        Literal::Delta {
            pred,
            polarity,
            args,
        } => Literal::Delta {
            pred: *pred,
            polarity: *polarity,
            args: args.iter().map(|t| shift_term(t, offset)).collect(),
        },
        Literal::Cmp { op, lhs, rhs } => Literal::Cmp {
            op: *op,
            lhs: shift_term(lhs, offset),
            rhs: shift_term(rhs, offset),
        },
        Literal::Arith {
            op,
            result,
            lhs,
            rhs,
        } => Literal::Arith {
            op: *op,
            result: shift_term(result, offset),
            lhs: shift_term(lhs, offset),
            rhs: shift_term(rhs, offset),
        },
        Literal::Unify { lhs, rhs } => Literal::Unify {
            lhs: shift_term(lhs, offset),
            rhs: shift_term(rhs, offset),
        },
    }
}

/// Expand one clause: replace every expandable positive derived literal
/// by the bodies of its clauses (renamed apart), connecting head terms to
/// call arguments with unifications. Returns one clause per combination
/// of sub-clause choices (disjunction lifting).
pub fn expand_clause(
    catalog: &Catalog,
    clause: &Clause,
    opts: &ExpandOptions,
) -> Result<Vec<Clause>, ObjectLogError> {
    let mut results = vec![clause.clone()];
    // Iterate to fixpoint: repeatedly find an expandable literal.
    let mut progress = true;
    while progress {
        progress = false;
        let mut next: Vec<Clause> = Vec::new();
        for c in &results {
            match find_expandable(catalog, c, opts) {
                None => next.push(c.clone()),
                Some(idx) => {
                    progress = true;
                    next.extend(expand_at(catalog, c, idx)?);
                }
            }
        }
        if let Some(max) = opts.max_clauses {
            if next.len() > max {
                return Err(ObjectLogError::NotSchedulable {
                    literal: format!("expansion exceeded {max} clauses"),
                });
            }
        }
        results = next;
    }
    Ok(results)
}

fn find_expandable(catalog: &Catalog, clause: &Clause, opts: &ExpandOptions) -> Option<usize> {
    clause.body.iter().position(|lit| match lit {
        Literal::Pred {
            pred,
            negated: false,
            ..
        } => {
            !opts.keep.contains(pred)
                && matches!(catalog.def(*pred).kind, PredKind::Derived(_))
                // Recursive predicates cannot be flattened away — they
                // stay as fixpoint nodes in the propagation network.
                && !catalog.is_self_recursive(*pred)
        }
        _ => false,
    })
}

fn expand_at(
    catalog: &Catalog,
    clause: &Clause,
    idx: usize,
) -> Result<Vec<Clause>, ObjectLogError> {
    let (pred, args, epoch) = match &clause.body[idx] {
        Literal::Pred {
            pred, args, epoch, ..
        } => (*pred, args.clone(), *epoch),
        _ => unreachable!("expand_at on non-pred literal"),
    };
    let sub_clauses = match &catalog.def(pred).kind {
        PredKind::Derived(cs) => cs.clone(),
        _ => unreachable!("expand_at on non-derived predicate"),
    };
    let mut out = Vec::with_capacity(sub_clauses.len());
    for sub in &sub_clauses {
        let offset = clause.n_vars;
        let mut new_clause = Clause {
            n_vars: clause.n_vars + sub.n_vars,
            head: clause.head.clone(),
            body: Vec::with_capacity(clause.body.len() + sub.body.len() + args.len()),
        };
        // Body before the expanded literal.
        new_clause.body.extend(clause.body[..idx].iter().cloned());
        // Connect call args to (shifted) sub head terms.
        for (arg, head_term) in args.iter().zip(&sub.head) {
            let shifted = shift_term(head_term, offset);
            // `arg = shifted` — trivial unifications (same term) skipped.
            if arg != &shifted {
                new_clause.body.push(Literal::Unify {
                    lhs: arg.clone(),
                    rhs: shifted,
                });
            }
        }
        // The sub body (shifted). If the call site was old-state, force
        // the inlined literals old too.
        for lit in &sub.body {
            let mut shifted = shift_literal(lit, offset);
            if epoch == amos_storage::StateEpoch::Old {
                if let Literal::Pred { epoch: e, .. } = &mut shifted {
                    *e = amos_storage::StateEpoch::Old;
                }
            }
            new_clause.body.push(shifted);
        }
        // Body after the expanded literal.
        new_clause
            .body
            .extend(clause.body[idx + 1..].iter().cloned());
        out.push(new_clause);
    }
    Ok(out)
}

/// Expand a derived predicate's clause set per the options.
pub fn expand_predicate(
    catalog: &Catalog,
    pred: PredId,
    opts: &ExpandOptions,
) -> Result<Vec<Clause>, ObjectLogError> {
    let def = catalog.def(pred);
    let clauses = match &def.kind {
        PredKind::Derived(cs) => cs.clone(),
        _ => return Err(ObjectLogError::NotDerived(def.name.clone())),
    };
    let mut out = Vec::new();
    for c in &clauses {
        out.extend(expand_clause(catalog, c, opts)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clause::ClauseBuilder;
    use crate::eval::{DeltaMap, EvalContext};
    use amos_storage::{StateEpoch, Storage};
    use amos_types::{tuple, CmpOp, TypeId};

    fn sig(n: usize) -> Vec<TypeId> {
        vec![TypeId(0); n]
    }

    /// threshold-style nesting: top(I) ← q(I,A) ∧ mid(I,B) ∧ A < B;
    /// mid(I,B) ← r(I,B).
    #[test]
    fn expansion_flattens_and_preserves_semantics() {
        let mut storage = Storage::new();
        let rq = storage.create_relation("q", 2).unwrap();
        let rr = storage.create_relation("r", 2).unwrap();
        storage.insert(rq, tuple![1, 5]).unwrap();
        storage.insert(rq, tuple![2, 50]).unwrap();
        storage.insert(rr, tuple![1, 10]).unwrap();
        storage.insert(rr, tuple![2, 10]).unwrap();

        let mut cat = Catalog::new();
        let q = cat.define_stored("q", sig(2), rq, 1).unwrap();
        let r = cat.define_stored("r", sig(2), rr, 1).unwrap();
        let mid = cat
            .define_derived(
                "mid",
                sig(2),
                vec![ClauseBuilder::new(2)
                    .head([Term::var(0), Term::var(1)])
                    .pred(r, [Term::var(0), Term::var(1)])
                    .build()],
            )
            .unwrap();
        let top_clause = ClauseBuilder::new(3)
            .head([Term::var(0)])
            .pred(q, [Term::var(0), Term::var(1)])
            .pred(mid, [Term::var(0), Term::var(2)])
            .cmp(Term::var(1), CmpOp::Lt, Term::var(2))
            .build();
        let top = cat.define_derived("top", sig(1), vec![top_clause]).unwrap();

        // Unexpanded evaluation.
        let deltas = DeltaMap::new();
        let ctx = EvalContext::new(&storage, &cat, &deltas);
        let before = ctx.eval_pred(top, &[None], StateEpoch::New).unwrap();
        assert_eq!(before, [tuple![1]].into_iter().collect());

        // Expand fully: the mid literal disappears.
        let expanded = expand_predicate(&cat, top, &ExpandOptions::full()).unwrap();
        assert_eq!(expanded.len(), 1);
        assert!(expanded[0].body.iter().all(|l| l.pred() != Some(mid)));
        let mut cat2 = cat.clone();
        cat2.replace_clauses(top, expanded).unwrap();
        let ctx2 = EvalContext::new(&storage, &cat2, &deltas);
        let after = ctx2.eval_pred(top, &[None], StateEpoch::New).unwrap();
        assert_eq!(after, before);

        // Keeping `mid` leaves it in place (bushy network boundary).
        let kept = expand_predicate(&cat, top, &ExpandOptions::keeping([mid])).unwrap();
        assert!(kept[0].body.iter().any(|l| l.pred() == Some(mid)));
    }

    /// Disjunctive sub-predicate: expansion multiplies clauses.
    #[test]
    fn disjunction_lifting() {
        let mut storage = Storage::new();
        let rq = storage.create_relation("q", 1).unwrap();
        let rr = storage.create_relation("r", 1).unwrap();
        storage.insert(rq, tuple![1]).unwrap();
        storage.insert(rr, tuple![2]).unwrap();

        let mut cat = Catalog::new();
        let q = cat.define_stored("q", sig(1), rq, 1).unwrap();
        let r = cat.define_stored("r", sig(1), rr, 1).unwrap();
        let either = cat
            .define_derived(
                "either",
                sig(1),
                vec![
                    ClauseBuilder::new(1)
                        .head([Term::var(0)])
                        .pred(q, [Term::var(0)])
                        .build(),
                    ClauseBuilder::new(1)
                        .head([Term::var(0)])
                        .pred(r, [Term::var(0)])
                        .build(),
                ],
            )
            .unwrap();
        let wrap = cat
            .define_derived(
                "wrap",
                sig(1),
                vec![ClauseBuilder::new(1)
                    .head([Term::var(0)])
                    .pred(either, [Term::var(0)])
                    .build()],
            )
            .unwrap();

        let expanded = expand_predicate(&cat, wrap, &ExpandOptions::full()).unwrap();
        assert_eq!(expanded.len(), 2, "two clauses from the disjunction");

        let mut cat2 = cat.clone();
        cat2.replace_clauses(wrap, expanded).unwrap();
        let deltas = DeltaMap::new();
        let ctx = EvalContext::new(&storage, &cat2, &deltas);
        let out = ctx.eval_pred(wrap, &[None], StateEpoch::New).unwrap();
        assert_eq!(out, [tuple![1], tuple![2]].into_iter().collect());
    }

    /// Negated derived literals are kept as calls.
    #[test]
    fn negated_derived_not_expanded() {
        let mut cat = Catalog::new();
        let mut storage = Storage::new();
        let rq = storage.create_relation("q", 1).unwrap();
        let q = cat.define_stored("q", sig(1), rq, 1).unwrap();
        let d = cat
            .define_derived(
                "d",
                sig(1),
                vec![ClauseBuilder::new(1)
                    .head([Term::var(0)])
                    .pred(q, [Term::var(0)])
                    .build()],
            )
            .unwrap();
        let c = ClauseBuilder::new(1)
            .head([Term::var(0)])
            .pred(q, [Term::var(0)])
            .not_pred(d, [Term::var(0)])
            .build();
        let w = cat.define_derived("w", sig(1), vec![c]).unwrap();
        let expanded = expand_predicate(&cat, w, &ExpandOptions::full()).unwrap();
        assert_eq!(expanded.len(), 1);
        assert!(expanded[0].body.iter().any(|l| matches!(
            l,
            Literal::Pred { pred, negated: true, .. } if *pred == d
        )));
    }

    /// Nested expansion terminates and variables stay disjoint.
    #[test]
    fn nested_expansion_renames_apart() {
        let mut cat = Catalog::new();
        let mut storage = Storage::new();
        let rq = storage.create_relation("q", 2).unwrap();
        let q = cat.define_stored("q", sig(2), rq, 1).unwrap();
        let a = cat
            .define_derived(
                "a",
                sig(2),
                vec![ClauseBuilder::new(3)
                    .head([Term::var(0), Term::var(2)])
                    .pred(q, [Term::var(0), Term::var(1)])
                    .pred(q, [Term::var(1), Term::var(2)])
                    .build()],
            )
            .unwrap();
        let b = cat
            .define_derived(
                "b",
                sig(2),
                vec![ClauseBuilder::new(3)
                    .head([Term::var(0), Term::var(2)])
                    .pred(a, [Term::var(0), Term::var(1)])
                    .pred(a, [Term::var(1), Term::var(2)])
                    .build()],
            )
            .unwrap();
        let expanded = expand_predicate(&cat, b, &ExpandOptions::full()).unwrap();
        assert_eq!(expanded.len(), 1);
        let c = &expanded[0];
        // all four q literals present
        let q_lits = c.body.iter().filter(|l| l.pred() == Some(q)).count();
        assert_eq!(q_lits, 4);
        assert!(c.unsafe_var().is_none());
    }
}
