//! # amos-objectlog
//!
//! ObjectLog: the typed Datalog dialect AMOSQL compiles into (paper §3.2,
//! and Litwin & Risch, IEEE TKDE 4(6) 1992).
//!
//! In AMOS, *stored functions* compile to facts (base relations) and
//! *derived functions* compile to Horn clauses (derived relations).
//! Rule conditions become derived predicates (`cnd_monitor_items`), and
//! the rule compiler differentiates those predicates into partial
//! differentials — which are themselves ObjectLog clauses whose bodies
//! contain **Δ-literals** (reading a Δ-set instead of a relation) and
//! literals annotated to evaluate in the **old** database state (logical
//! rollback).
//!
//! This crate provides:
//!
//! * [`Catalog`] — predicate definitions: stored (backed by an
//!   `amos_storage` relation), derived (a disjunction of [`Clause`]s),
//!   or foreign (a Rust closure, the paper's Lisp/C foreign functions).
//! * [`Clause`] / [`Literal`] / [`Term`] — Horn clauses with conjunctive
//!   bodies over predicate literals (positive or negated, new-state or
//!   old-state), Δ-literals, comparisons, arithmetic, and unification.
//! * [`plan`] — compiled execution plans: a clause body ordered by a
//!   greedy boundness/cost heuristic with index-backed probes (the
//!   miniature Selinger-style optimizer the paper alludes to via \[22\]);
//!   Δ-literals are forced to the front, implementing "the optimizer
//!   assumes few changes to a single influent".
//! * [`eval`] — the evaluation engine: goal-directed evaluation of any
//!   predicate under a binding pattern, against new or old state, with
//!   recursive handling of derived predicates and safe negation.
//! * [`expand`] — inline expansion (flattening) of derived predicates,
//!   the "AMOSQL compiler expands as many derived relations as possible"
//!   behaviour, configurable to stop at named sub-functions for the §7.1
//!   node-sharing (bushy network) experiments.

pub mod catalog;
pub mod clause;
pub mod error;
pub mod eval;
pub mod expand;
pub mod plan;

pub use catalog::{Catalog, ForeignFn, PredDef, PredId, PredKind};
pub use clause::{Clause, ClauseBuilder, Literal, Term, Var};
pub use error::ObjectLogError;
pub use eval::{DeltaMap, EvalContext};
pub use expand::{expand_clause, expand_predicate, ExpandOptions};
pub use plan::{compile_clause, ensure_plan_indexes, Plan, PlanStep};
