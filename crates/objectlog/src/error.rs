//! ObjectLog errors.

use std::fmt;

use amos_types::ValueError;

use crate::clause::Var;

/// Errors from catalog management, plan compilation, and evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ObjectLogError {
    /// No predicate with this name.
    UnknownPredicate(String),
    /// A predicate with this name already exists.
    DuplicatePredicate(String),
    /// Clause head arity does not match the predicate signature.
    HeadArityMismatch {
        /// Predicate name.
        pred: String,
        /// Signature arity.
        expected: usize,
        /// Clause head length.
        found: usize,
    },
    /// A clause is not range-restricted.
    UnsafeClause {
        /// Predicate name.
        pred: String,
        /// The unbindable variable.
        var: Var,
    },
    /// `replace_clauses` on a non-derived predicate.
    NotDerived(String),
    /// A literal argument count does not match the predicate arity.
    LiteralArityMismatch {
        /// Predicate name.
        pred: String,
        /// Predicate arity.
        expected: usize,
        /// Literal argument count.
        found: usize,
    },
    /// Recursive predicate definitions are outside the paper's algorithm
    /// ("the algorithm can be extended to handle linear recursion…").
    RecursivePredicate(String),
    /// The optimizer could not schedule a literal (unbound operands with
    /// no way to bind them).
    NotSchedulable {
        /// Description of the stuck literal.
        literal: String,
    },
    /// A value-level error surfaced during evaluation.
    Value(ValueError),
    /// A Δ-literal was evaluated without a Δ-set bound for its predicate.
    MissingDelta(String),
    /// Recursion depth limit exceeded during evaluation (defence against
    /// accidental deep nesting; true recursion is caught at stratum
    /// computation).
    DepthExceeded,
}

impl fmt::Display for ObjectLogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObjectLogError::UnknownPredicate(n) => write!(f, "unknown predicate `{n}`"),
            ObjectLogError::DuplicatePredicate(n) => {
                write!(f, "predicate `{n}` already exists")
            }
            ObjectLogError::HeadArityMismatch {
                pred,
                expected,
                found,
            } => write!(
                f,
                "clause head of `{pred}` has {found} terms, signature requires {expected}"
            ),
            ObjectLogError::UnsafeClause { pred, var } => {
                write!(
                    f,
                    "clause of `{pred}` is unsafe: variable {var} cannot be bound"
                )
            }
            ObjectLogError::NotDerived(n) => write!(f, "predicate `{n}` is not derived"),
            ObjectLogError::LiteralArityMismatch {
                pred,
                expected,
                found,
            } => write!(
                f,
                "literal on `{pred}` has {found} args, predicate arity is {expected}"
            ),
            ObjectLogError::RecursivePredicate(n) => {
                write!(f, "predicate `{n}` is recursive (unsupported)")
            }
            ObjectLogError::NotSchedulable { literal } => {
                write!(f, "cannot schedule literal: {literal}")
            }
            ObjectLogError::Value(e) => write!(f, "value error: {e}"),
            ObjectLogError::MissingDelta(n) => {
                write!(f, "no Δ-set bound for predicate `{n}`")
            }
            ObjectLogError::DepthExceeded => write!(f, "evaluation depth limit exceeded"),
        }
    }
}

impl std::error::Error for ObjectLogError {}

impl From<ValueError> for ObjectLogError {
    fn from(e: ValueError) -> Self {
        ObjectLogError::Value(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert_eq!(
            ObjectLogError::UnknownPredicate("p".into()).to_string(),
            "unknown predicate `p`"
        );
        assert_eq!(
            ObjectLogError::UnsafeClause {
                pred: "p".into(),
                var: Var(3)
            }
            .to_string(),
            "clause of `p` is unsafe: variable _G3 cannot be bound"
        );
    }
}
