//! Horn clauses, literals, and terms.
//!
//! A derived predicate is defined by one or more clauses (several clauses
//! form a disjunction). Clause bodies are conjunctions of literals:
//!
//! * predicate literals, positive or negated, each annotated with the
//!   [`StateEpoch`] it must be evaluated in (`Old` literals implement the
//!   `q_old`/`r_old` of negative partial differentials, §4.4);
//! * Δ-literals reading one side of an influent's Δ-set — these appear
//!   only in compiler-generated partial differentials;
//! * comparison, arithmetic, and unification built-ins (the `_G1 < _G2`,
//!   `_G4 = _G1 * _G3` goals of the paper's ObjectLog listings).
//!
//! Variables are clause-local indices; [`ClauseBuilder`] offers a
//! readable way to construct clauses in tests and in the AMOSQL
//! compiler.

use std::fmt;

use amos_storage::{Polarity, StateEpoch};
use amos_types::{ArithOp, CmpOp, Value};

use crate::catalog::PredId;

/// A clause-local variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub u32);

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "_G{}", self.0)
    }
}

/// A term: a variable or a constant.
#[derive(Debug, Clone, PartialEq)]
pub enum Term {
    /// A clause-local variable.
    Var(Var),
    /// A constant value.
    Const(Value),
}

impl Term {
    /// Shorthand for a variable term.
    pub fn var(i: u32) -> Term {
        Term::Var(Var(i))
    }

    /// Shorthand for a constant term.
    pub fn val(v: impl Into<Value>) -> Term {
        Term::Const(v.into())
    }

    /// The variable inside, if any.
    pub fn as_var(&self) -> Option<Var> {
        match self {
            Term::Var(v) => Some(*v),
            Term::Const(_) => None,
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{v}"),
            Term::Const(c) => write!(f, "{c}"),
        }
    }
}

impl From<Var> for Term {
    fn from(v: Var) -> Term {
        Term::Var(v)
    }
}

/// A body literal.
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    /// A predicate literal `p(args…)` or `¬p(args…)`, evaluated in the
    /// given state epoch (old-state literals appear in negative partial
    /// differentials).
    Pred {
        /// The referenced predicate.
        pred: PredId,
        /// Argument terms, one per predicate column.
        args: Vec<Term>,
        /// Negation-as-failure; all variables must be bound by the time
        /// a negated literal is scheduled (safety).
        negated: bool,
        /// Which database state to evaluate against.
        epoch: StateEpoch,
    },
    /// A Δ-literal `Δ₊p(args…)` / `Δ₋p(args…)` reading one side of a
    /// Δ-set during propagation. Generated only by the rule compiler.
    Delta {
        /// The influent predicate whose Δ-set is read.
        pred: PredId,
        /// Which side of the Δ-set.
        polarity: Polarity,
        /// Argument terms.
        args: Vec<Term>,
    },
    /// `lhs op rhs` — both sides must be bound when scheduled.
    Cmp {
        /// Comparison operator.
        op: CmpOp,
        /// Left operand.
        lhs: Term,
        /// Right operand.
        rhs: Term,
    },
    /// `result = lhs op rhs` — operands must be bound; `result` binds or
    /// tests.
    Arith {
        /// Arithmetic operator.
        op: ArithOp,
        /// Result term (bound: equality test; unbound var: binds).
        result: Term,
        /// Left operand.
        lhs: Term,
        /// Right operand.
        rhs: Term,
    },
    /// `lhs = rhs` unification: if one side is an unbound variable it is
    /// bound to the other side's value; if both bound, equality test.
    Unify {
        /// Left term.
        lhs: Term,
        /// Right term.
        rhs: Term,
    },
}

impl Literal {
    /// All terms mentioned by this literal.
    pub fn terms(&self) -> Vec<&Term> {
        match self {
            Literal::Pred { args, .. } | Literal::Delta { args, .. } => args.iter().collect(),
            Literal::Cmp { lhs, rhs, .. } | Literal::Unify { lhs, rhs } => vec![lhs, rhs],
            Literal::Arith {
                result, lhs, rhs, ..
            } => vec![result, lhs, rhs],
        }
    }

    /// All variables mentioned by this literal.
    pub fn vars(&self) -> Vec<Var> {
        self.terms().into_iter().filter_map(Term::as_var).collect()
    }

    /// Whether this is a Δ-literal.
    pub fn is_delta(&self) -> bool {
        matches!(self, Literal::Delta { .. })
    }

    /// The predicate this literal references, if any.
    pub fn pred(&self) -> Option<PredId> {
        match self {
            Literal::Pred { pred, .. } | Literal::Delta { pred, .. } => Some(*pred),
            _ => None,
        }
    }
}

/// A Horn clause: `head(head_terms…) ← body₁ ∧ … ∧ bodyₙ`.
#[derive(Debug, Clone, PartialEq)]
pub struct Clause {
    /// Number of distinct variables used (variables are `0..n_vars`).
    pub n_vars: u32,
    /// Head argument terms, one per predicate column.
    pub head: Vec<Term>,
    /// Conjunctive body.
    pub body: Vec<Literal>,
}

impl Clause {
    /// Allocate a fresh variable (increasing `n_vars`).
    pub fn fresh_var(&mut self) -> Var {
        let v = Var(self.n_vars);
        self.n_vars += 1;
        v
    }

    /// All head variables (ignoring constant head terms).
    pub fn head_vars(&self) -> Vec<Var> {
        self.head.iter().filter_map(Term::as_var).collect()
    }

    /// Check *range restriction* (safety): every head variable, and every
    /// variable of a negated or built-in literal, must be bindable from
    /// some positive predicate/Δ literal. Returns the offending variable
    /// if unsafe.
    pub fn unsafe_var(&self) -> Option<Var> {
        use std::collections::HashSet;
        let mut bindable: HashSet<Var> = HashSet::new();
        for lit in &self.body {
            match lit {
                Literal::Pred { negated: false, .. } | Literal::Delta { .. } => {
                    bindable.extend(lit.vars());
                }
                // Arith/Unify can bind their result/one side.
                Literal::Arith { result, .. } => {
                    bindable.extend(result.as_var());
                }
                Literal::Unify { lhs, rhs } => {
                    bindable.extend(lhs.as_var());
                    bindable.extend(rhs.as_var());
                }
                _ => {}
            }
        }
        for v in self.head_vars() {
            if !bindable.contains(&v) {
                return Some(v);
            }
        }
        for lit in &self.body {
            match lit {
                Literal::Pred { negated: true, .. } => {
                    for v in lit.vars() {
                        if !bindable.contains(&v) {
                            return Some(v);
                        }
                    }
                }
                // Comparison operands and arithmetic inputs must be
                // bindable too, or the plan can never schedule them.
                Literal::Cmp { lhs, rhs, .. } => {
                    for v in [lhs, rhs].into_iter().filter_map(Term::as_var) {
                        if !bindable.contains(&v) {
                            return Some(v);
                        }
                    }
                }
                Literal::Arith { lhs, rhs, .. } => {
                    for v in [lhs, rhs].into_iter().filter_map(Term::as_var) {
                        if !bindable.contains(&v) {
                            return Some(v);
                        }
                    }
                }
                _ => {}
            }
        }
        None
    }
}

/// Fluent builder for clauses.
///
/// ```
/// use amos_objectlog::{ClauseBuilder, Term};
/// use amos_types::CmpOp;
/// # use amos_objectlog::catalog::PredId;
/// # let quantity = PredId(0); let threshold = PredId(1);
/// // cnd(I) ← quantity(I, G1) ∧ threshold(I, G2) ∧ G1 < G2
/// let clause = ClauseBuilder::new(3)
///     .head([Term::var(0)])
///     .pred(quantity, [Term::var(0), Term::var(1)])
///     .pred(threshold, [Term::var(0), Term::var(2)])
///     .cmp(Term::var(1), CmpOp::Lt, Term::var(2))
///     .build();
/// assert_eq!(clause.body.len(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct ClauseBuilder {
    clause: Clause,
}

impl ClauseBuilder {
    /// Start a clause with `n_vars` variables.
    pub fn new(n_vars: u32) -> Self {
        ClauseBuilder {
            clause: Clause {
                n_vars,
                head: Vec::new(),
                body: Vec::new(),
            },
        }
    }

    /// Set the head terms.
    pub fn head(mut self, terms: impl IntoIterator<Item = Term>) -> Self {
        self.clause.head = terms.into_iter().collect();
        self
    }

    /// Add a positive new-state predicate literal.
    pub fn pred(mut self, pred: PredId, args: impl IntoIterator<Item = Term>) -> Self {
        self.clause.body.push(Literal::Pred {
            pred,
            args: args.into_iter().collect(),
            negated: false,
            epoch: StateEpoch::New,
        });
        self
    }

    /// Add a negated new-state predicate literal.
    pub fn not_pred(mut self, pred: PredId, args: impl IntoIterator<Item = Term>) -> Self {
        self.clause.body.push(Literal::Pred {
            pred,
            args: args.into_iter().collect(),
            negated: true,
            epoch: StateEpoch::New,
        });
        self
    }

    /// Add a positive old-state predicate literal.
    pub fn pred_old(mut self, pred: PredId, args: impl IntoIterator<Item = Term>) -> Self {
        self.clause.body.push(Literal::Pred {
            pred,
            args: args.into_iter().collect(),
            negated: false,
            epoch: StateEpoch::Old,
        });
        self
    }

    /// Add a Δ-literal.
    pub fn delta(
        mut self,
        pred: PredId,
        polarity: Polarity,
        args: impl IntoIterator<Item = Term>,
    ) -> Self {
        self.clause.body.push(Literal::Delta {
            pred,
            polarity,
            args: args.into_iter().collect(),
        });
        self
    }

    /// Add a comparison.
    pub fn cmp(mut self, lhs: Term, op: CmpOp, rhs: Term) -> Self {
        self.clause.body.push(Literal::Cmp { op, lhs, rhs });
        self
    }

    /// Add `result = lhs op rhs`.
    pub fn arith(mut self, result: Term, lhs: Term, op: ArithOp, rhs: Term) -> Self {
        self.clause.body.push(Literal::Arith {
            op,
            result,
            lhs,
            rhs,
        });
        self
    }

    /// Add a unification `lhs = rhs`.
    pub fn unify(mut self, lhs: Term, rhs: Term) -> Self {
        self.clause.body.push(Literal::Unify { lhs, rhs });
        self
    }

    /// Finish the clause.
    pub fn build(self) -> Clause {
        self.clause
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_vars() {
        let c = ClauseBuilder::new(3)
            .head([Term::var(0)])
            .pred(PredId(0), [Term::var(0), Term::var(1)])
            .cmp(Term::var(1), CmpOp::Lt, Term::var(2))
            .arith(Term::var(2), Term::var(1), ArithOp::Add, Term::val(1))
            .build();
        assert_eq!(c.head_vars(), vec![Var(0)]);
        assert_eq!(c.body[0].vars(), vec![Var(0), Var(1)]);
        assert_eq!(c.body[2].vars(), vec![Var(2), Var(1)]);
    }

    #[test]
    fn safety_check() {
        // head var not bound by any positive literal → unsafe
        let c = ClauseBuilder::new(2)
            .head([Term::var(0), Term::var(1)])
            .pred(PredId(0), [Term::var(0)])
            .build();
        assert_eq!(c.unsafe_var(), Some(Var(1)));

        // negated literal with free var → unsafe
        let c2 = ClauseBuilder::new(2)
            .head([Term::var(0)])
            .pred(PredId(0), [Term::var(0)])
            .not_pred(PredId(1), [Term::var(1)])
            .build();
        assert_eq!(c2.unsafe_var(), Some(Var(1)));

        // arith result counts as bindable
        let c3 = ClauseBuilder::new(2)
            .head([Term::var(1)])
            .pred(PredId(0), [Term::var(0)])
            .arith(Term::var(1), Term::var(0), ArithOp::Mul, Term::val(2))
            .build();
        assert_eq!(c3.unsafe_var(), None);
    }

    #[test]
    fn display_terms() {
        assert_eq!(Term::var(3).to_string(), "_G3");
        assert_eq!(Term::val(7).to_string(), "7");
    }

    #[test]
    fn fresh_var() {
        let mut c = ClauseBuilder::new(1).head([Term::var(0)]).build();
        let v = c.fresh_var();
        assert_eq!(v, Var(1));
        assert_eq!(c.n_vars, 2);
    }
}
