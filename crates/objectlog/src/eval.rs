//! The goal-directed evaluation engine.
//!
//! Evaluates any predicate under a *binding pattern* (some argument
//! positions bound to values) against the database — in the **new** state
//! or, via logical rollback of every stored leaf, in the **old** state.
//! Derived predicates evaluate their clauses through compiled plans
//! (compiled on the fly here; the rule layer pre-compiles and caches the
//! plans of partial differentials).
//!
//! Epoch propagation: once evaluation enters an old-state literal,
//! everything beneath it is old-state too — `Q_old` of a derived `Q` is
//! the derivation over old base relations, which is exactly what the
//! paper's logical rollback gives (all influent Δ-sets are complete when
//! a negative differential runs, thanks to breadth-first bottom-up
//! propagation).

use std::collections::{HashMap, HashSet};

use amos_storage::{DeltaSet, StateEpoch, Storage};
use amos_types::{Tuple, Value};

use crate::catalog::{Catalog, PredId, PredKind};
use crate::clause::{Term, Var};
use crate::error::ObjectLogError;
use crate::plan::{compile_clause, Plan, PlanStep};

/// Δ-sets keyed by influent predicate, available to Δ-literals.
pub type DeltaMap = HashMap<PredId, DeltaSet>;

/// Evaluation context: storage, catalog, and the Δ-environment.
pub struct EvalContext<'a> {
    /// The database of base relations.
    pub storage: &'a Storage,
    /// Predicate definitions.
    pub catalog: &'a Catalog,
    /// Δ-sets readable by Δ-literals (empty map outside propagation).
    pub deltas: &'a DeltaMap,
    /// Recursion guard for derived-predicate calls.
    pub depth_limit: usize,
    /// Compiled-plan cache for derived-predicate calls, keyed by
    /// predicate and bound-argument bitmask. A differential whose Δ-set
    /// seeds `n` tuples calls its derived sub-goals `n` times with the
    /// same binding pattern — without the cache each call would re-run
    /// the greedy optimizer. A `Mutex` (not `RefCell`) so a read-only
    /// context is `Sync` and the propagation wave-front can evaluate
    /// differentials from several threads; contexts are never shared
    /// across threads in practice (each propagation task builds its
    /// own), so the uncontended lock is cheap.
    plan_cache: std::sync::Mutex<PlanCache>,
    /// Lazily-built old-state hash indexes, used for old-epoch probes
    /// when the relation's Δ-set is too large for the per-probe linear
    /// overlay of [`amos_storage::OldStateView::probe`]. The build cost
    /// (one old-state scan) amortizes over the many probes a massive
    /// transaction performs — this is what keeps the fig. 7 workload
    /// linear instead of quadratic.
    old_index: std::sync::Mutex<OldIndexCache>,
}

/// Variable bindings during plan execution.
type Bindings = Vec<Option<Value>>;

/// Solution callback invoked by [`EvalContext::run_plan`].
pub type EmitFn<'e> = dyn FnMut(&Bindings, &[Term]) -> Result<(), ObjectLogError> + 'e;

/// Per-context cache of compiled clause plans, keyed by predicate and
/// bound-argument bitmask.
type PlanCache = HashMap<(PredId, u64), std::sync::Arc<Vec<(usize, Plan)>>>;

/// Per-context cache of old-state hash indexes keyed by relation and
/// probed column set.
type OldIndexCache = HashMap<(amos_storage::RelId, Vec<usize>), HashMap<Tuple, Vec<Tuple>>>;

fn resolve(t: &Term, b: &Bindings) -> Option<Value> {
    match t {
        Term::Const(v) => Some(v.clone()),
        Term::Var(Var(i)) => b[*i as usize].clone(),
    }
}

/// Unify a term with a value: bind if unbound variable, test otherwise.
/// Returns the variable index bound (for trail-based undo), or `None` if
/// no new binding was made; `Err(())`-like `false` in `ok` means failure.
fn unify_term(t: &Term, v: &Value, b: &mut Bindings) -> (bool, Option<usize>) {
    match t {
        Term::Const(c) => (c == v, None),
        Term::Var(Var(i)) => {
            let idx = *i as usize;
            match &b[idx] {
                Some(existing) => (existing == v, None),
                None => {
                    b[idx] = Some(v.clone());
                    (true, Some(idx))
                }
            }
        }
    }
}

/// Unify a whole tuple with literal args; on failure undoes its own
/// bindings. Returns the trail of newly-bound variable indexes.
fn unify_tuple(args: &[Term], tuple: &Tuple, b: &mut Bindings) -> Option<Vec<usize>> {
    let mut trail = Vec::new();
    for (t, v) in args.iter().zip(tuple.values()) {
        let (ok, bound) = unify_term(t, v, b);
        if let Some(idx) = bound {
            trail.push(idx);
        }
        if !ok {
            for idx in trail {
                b[idx] = None;
            }
            return None;
        }
    }
    Some(trail)
}

fn undo(trail: &[usize], b: &mut Bindings) {
    for &idx in trail {
        b[idx] = None;
    }
}

impl<'a> EvalContext<'a> {
    /// Build a context with the default depth limit.
    pub fn new(storage: &'a Storage, catalog: &'a Catalog, deltas: &'a DeltaMap) -> Self {
        EvalContext {
            storage,
            catalog,
            deltas,
            depth_limit: 64,
            plan_cache: std::sync::Mutex::new(HashMap::new()),
            old_index: std::sync::Mutex::new(HashMap::new()),
        }
    }

    /// Evaluate a predicate under a binding pattern: return all full
    /// argument tuples consistent with the bound positions.
    pub fn eval_pred(
        &self,
        pred: PredId,
        pattern: &[Option<Value>],
        epoch: StateEpoch,
    ) -> Result<HashSet<Tuple>, ObjectLogError> {
        self.eval_pred_depth(pred, pattern, epoch, 0)
    }

    /// Existence check: is there at least one tuple matching the pattern?
    pub fn holds(
        &self,
        pred: PredId,
        pattern: &[Option<Value>],
        epoch: StateEpoch,
    ) -> Result<bool, ObjectLogError> {
        // For stored predicates with full patterns this is a hash lookup;
        // otherwise fall back to (short-circuiting would need a lazy
        // evaluator; result sets are small at the call sites) evaluation.
        let def = self.catalog.def(pred);
        if let PredKind::Stored { rel, .. } = def.kind {
            if pattern.iter().all(Option::is_some) {
                let t: Tuple = pattern.iter().map(|v| v.clone().unwrap()).collect();
                return Ok(match epoch {
                    StateEpoch::New => self.storage.relation(rel).contains(&t),
                    StateEpoch::Old => self.storage.old_view(rel).contains(&t),
                });
            }
        }
        Ok(!self.eval_pred(pred, pattern, epoch)?.is_empty())
    }

    fn eval_pred_depth(
        &self,
        pred: PredId,
        pattern: &[Option<Value>],
        epoch: StateEpoch,
        depth: usize,
    ) -> Result<HashSet<Tuple>, ObjectLogError> {
        if depth > self.depth_limit {
            return Err(ObjectLogError::DepthExceeded);
        }
        let def = self.catalog.def(pred);
        debug_assert_eq!(pattern.len(), def.arity, "pattern arity for {}", def.name);
        match &def.kind {
            PredKind::Stored { rel, .. } => Ok(self.eval_stored(*rel, pattern, epoch)),
            PredKind::Foreign(f) => Ok(f(pattern).into_iter().map(Tuple::new).collect()),
            PredKind::Derived(clauses) if self.catalog.is_self_recursive(pred) => {
                self.eval_recursive(pred, clauses, pattern, epoch, depth)
            }
            PredKind::Derived(clauses) => {
                let plans = self.plans_for(pred, clauses, pattern)?;
                let mut out = HashSet::new();
                for (clause_idx, plan) in plans.iter() {
                    let clause = &clauses[*clause_idx];
                    // Bind head terms from the pattern.
                    let mut bindings: Bindings = vec![None; clause.n_vars as usize];
                    let mut feasible = true;
                    for (term, slot) in clause.head.iter().zip(pattern) {
                        match (term, slot) {
                            (Term::Const(c), Some(v)) if c != v => {
                                feasible = false;
                                break;
                            }
                            (Term::Var(var), Some(v)) => {
                                let idx = var.0 as usize;
                                match &bindings[idx] {
                                    Some(existing) if existing != v => {
                                        feasible = false;
                                        break;
                                    }
                                    _ => bindings[idx] = Some(v.clone()),
                                }
                            }
                            _ => {}
                        }
                    }
                    if !feasible {
                        continue;
                    }
                    self.run_plan(plan, bindings, epoch, depth, &mut |b, plan_head| {
                        let tuple: Option<Tuple> = plan_head
                            .iter()
                            .map(|t| resolve(t, b))
                            .collect::<Option<Vec<Value>>>()
                            .map(Tuple::new);
                        if let Some(t) = tuple {
                            out.insert(t);
                        }
                        Ok(())
                    })?;
                }
                Ok(out)
            }
        }
    }

    /// Semi-naive least-fixpoint evaluation of a (linearly) self-recursive
    /// predicate — the §5 footnote's "fixed point techniques".
    ///
    /// Base clauses (no self-literal) seed the fixpoint; recursive
    /// clauses are rewritten so their self-literal reads a synthetic
    /// Δ-set holding the current *frontier* (tuples derived in the
    /// previous round), exactly the semi-naive restriction. Iteration
    /// stops when a round derives nothing new.
    ///
    /// Bound patterns are answered by computing the full fixpoint and
    /// filtering (goal-directed magic-sets rewriting is out of scope).
    fn eval_recursive(
        &self,
        pred: PredId,
        clauses: &[crate::clause::Clause],
        pattern: &[Option<Value>],
        epoch: StateEpoch,
        depth: usize,
    ) -> Result<HashSet<Tuple>, ObjectLogError> {
        use crate::clause::{Clause, Literal};
        let references_self = |c: &Clause| c.body.iter().any(|l| l.pred() == Some(pred));
        let unbound: Vec<Option<Value>> = vec![None; pattern.len()];

        // Seed: base clauses, evaluated through the ordinary machinery
        // on a catalog view where only the base clauses exist — achieved
        // by running each base clause's plan directly.
        let mut total: HashSet<Tuple> = HashSet::new();
        for clause in clauses.iter().filter(|c| !references_self(c)) {
            let plan = compile_clause(self.catalog, clause, &HashSet::new())?;
            let bindings = vec![None; clause.n_vars as usize];
            let mut collected: Vec<Tuple> = Vec::new();
            self.run_plan(&plan, bindings, epoch, depth + 1, &mut |b, head| {
                if let Some(vals) = head
                    .iter()
                    .map(|t| resolve(t, b))
                    .collect::<Option<Vec<Value>>>()
                {
                    collected.push(Tuple::new(vals));
                }
                Ok(())
            })?;
            total.extend(collected);
        }

        // Rewrite recursive clauses: self-literal → Δ₊-literal on self.
        let mut rec_plans: Vec<(Clause, Plan)> = Vec::new();
        for clause in clauses.iter().filter(|c| references_self(c)) {
            let body = clause
                .body
                .iter()
                .map(|lit| match lit {
                    Literal::Pred {
                        pred: p,
                        args,
                        negated: false,
                        ..
                    } if *p == pred => Literal::Delta {
                        pred,
                        polarity: amos_storage::Polarity::Plus,
                        args: args.clone(),
                    },
                    other => other.clone(),
                })
                .collect();
            let rewritten = Clause {
                n_vars: clause.n_vars,
                head: clause.head.clone(),
                body,
            };
            let plan = compile_clause(self.catalog, &rewritten, &HashSet::new())?;
            rec_plans.push((rewritten, plan));
        }

        let mut frontier: HashSet<Tuple> = total.clone();
        let mut rounds = 0usize;
        while !frontier.is_empty() {
            rounds += 1;
            if rounds > 100_000 {
                return Err(ObjectLogError::DepthExceeded);
            }
            let mut delta = DeltaSet::new();
            for t in frontier.drain() {
                delta.apply_insert(t);
            }
            let mut fmap = DeltaMap::new();
            fmap.insert(pred, delta);
            let sub = EvalContext::new(self.storage, self.catalog, &fmap);
            let mut next: Vec<Tuple> = Vec::new();
            for (clause, plan) in &rec_plans {
                let bindings = vec![None; clause.n_vars as usize];
                sub.run_plan(plan, bindings, epoch, depth + 1, &mut |b, head| {
                    if let Some(vals) = head
                        .iter()
                        .map(|t| resolve(t, b))
                        .collect::<Option<Vec<Value>>>()
                    {
                        next.push(Tuple::new(vals));
                    }
                    Ok(())
                })?;
            }
            for t in next {
                if total.insert(t.clone()) {
                    frontier.insert(t);
                }
            }
        }
        let _ = unbound;
        // Filter by the caller's bound positions.
        Ok(total
            .into_iter()
            .filter(|t| {
                pattern
                    .iter()
                    .enumerate()
                    .all(|(i, slot)| slot.as_ref().map(|v| &t[i] == v).unwrap_or(true))
            })
            .collect())
    }

    /// Plans for a derived predicate's clauses under a binding mask,
    /// compiled once per context and shared across calls.
    fn plans_for(
        &self,
        pred: PredId,
        clauses: &[crate::clause::Clause],
        pattern: &[Option<Value>],
    ) -> Result<std::sync::Arc<Vec<(usize, Plan)>>, ObjectLogError> {
        debug_assert!(pattern.len() <= 64, "pattern mask is a u64");
        let mask: u64 = pattern
            .iter()
            .enumerate()
            .filter(|(_, v)| v.is_some())
            .fold(0, |m, (i, _)| m | (1 << i));
        if let Some(hit) = self.plan_cache.lock().unwrap().get(&(pred, mask)) {
            return Ok(std::sync::Arc::clone(hit));
        }
        let mut plans = Vec::with_capacity(clauses.len());
        for (i, clause) in clauses.iter().enumerate() {
            let bound_vars: HashSet<Var> = clause
                .head
                .iter()
                .zip(pattern)
                .filter_map(|(term, slot)| match (term, slot) {
                    (Term::Var(v), Some(_)) => Some(*v),
                    _ => None,
                })
                .collect();
            plans.push((i, compile_clause(self.catalog, clause, &bound_vars)?));
        }
        let rc = std::sync::Arc::new(plans);
        self.plan_cache
            .lock()
            .unwrap()
            .insert((pred, mask), std::sync::Arc::clone(&rc));
        Ok(rc)
    }

    fn eval_stored(
        &self,
        rel: amos_storage::RelId,
        pattern: &[Option<Value>],
        epoch: StateEpoch,
    ) -> HashSet<Tuple> {
        let bound_cols: Vec<usize> = pattern
            .iter()
            .enumerate()
            .filter(|(_, v)| v.is_some())
            .map(|(i, _)| i)
            .collect();
        let key: Vec<Value> = pattern.iter().flatten().cloned().collect();
        // Fully bound: a hash membership check, never an index probe
        // (index probes degrade to scans on unindexed column sets).
        if bound_cols.len() == pattern.len() {
            let t = Tuple::new(key);
            let present = match epoch {
                StateEpoch::New => self.storage.relation(rel).contains(&t),
                StateEpoch::Old => self.storage.old_view(rel).contains(&t),
            };
            return if present {
                [t].into_iter().collect()
            } else {
                HashSet::new()
            };
        }
        match epoch {
            StateEpoch::New => {
                let r = self.storage.relation(rel);
                if bound_cols.is_empty() {
                    r.scan().cloned().collect()
                } else {
                    r.probe(&bound_cols, &key).into_iter().cloned().collect()
                }
            }
            StateEpoch::Old => {
                let v = self.storage.old_view(rel);
                if bound_cols.is_empty() {
                    v.scan().cloned().collect()
                } else if v.delta_len() <= 32 {
                    // Small transaction (the paper's common case): the
                    // per-probe linear Δ overlay is O(|Δ|) ≈ O(1).
                    v.probe(&bound_cols, &key).into_iter().cloned().collect()
                } else {
                    // Massive transaction: amortize one old-state scan
                    // into a hash index shared across this context.
                    let mut cache = self.old_index.lock().unwrap();
                    let idx = cache.entry((rel, bound_cols.clone())).or_insert_with(|| {
                        let mut map: HashMap<Tuple, Vec<Tuple>> = HashMap::new();
                        for t in v.scan() {
                            map.entry(t.project(&bound_cols))
                                .or_default()
                                .push(t.clone());
                        }
                        map
                    });
                    match idx.get(&Tuple::new(key)) {
                        Some(ts) => ts.iter().cloned().collect(),
                        None => HashSet::new(),
                    }
                }
            }
        }
    }

    /// Execute a pre-compiled plan with initial bindings, invoking `emit`
    /// for every solution. `outer_epoch` is the ambient state epoch: `Old`
    /// forces every literal old regardless of its annotation.
    pub fn run_plan(
        &self,
        plan: &Plan,
        mut bindings: Bindings,
        outer_epoch: StateEpoch,
        depth: usize,
        emit: &mut EmitFn<'_>,
    ) -> Result<(), ObjectLogError> {
        self.exec_step(plan, 0, &mut bindings, outer_epoch, depth, emit)
    }

    fn effective_epoch(outer: StateEpoch, lit: StateEpoch) -> StateEpoch {
        match outer {
            StateEpoch::Old => StateEpoch::Old,
            StateEpoch::New => lit,
        }
    }

    fn exec_step(
        &self,
        plan: &Plan,
        idx: usize,
        b: &mut Bindings,
        outer_epoch: StateEpoch,
        depth: usize,
        emit: &mut EmitFn<'_>,
    ) -> Result<(), ObjectLogError> {
        if idx == plan.steps.len() {
            return emit(b, &plan.head);
        }
        match &plan.steps[idx] {
            PlanStep::Stored {
                rel, args, epoch, ..
            } => {
                let epoch = Self::effective_epoch(outer_epoch, *epoch);
                let pattern: Vec<Option<Value>> = args.iter().map(|t| resolve(t, b)).collect();
                let candidates = self.eval_stored(*rel, &pattern, epoch);
                for tuple in candidates {
                    if let Some(trail) = unify_tuple(args, &tuple, b) {
                        self.exec_step(plan, idx + 1, b, outer_epoch, depth, emit)?;
                        undo(&trail, b);
                    }
                }
                Ok(())
            }
            PlanStep::Delta {
                pred,
                polarity,
                args,
            } => {
                static EMPTY: std::sync::OnceLock<DeltaSet> = std::sync::OnceLock::new();
                let delta = self
                    .deltas
                    .get(pred)
                    .unwrap_or_else(|| EMPTY.get_or_init(DeltaSet::new));
                // Deterministic order is unnecessary here (results are
                // accumulated into sets), so iterate the hash set directly.
                for tuple in delta.side(*polarity) {
                    if let Some(trail) = unify_tuple(args, tuple, b) {
                        self.exec_step(plan, idx + 1, b, outer_epoch, depth, emit)?;
                        undo(&trail, b);
                    }
                }
                Ok(())
            }
            PlanStep::Call {
                pred, args, epoch, ..
            } => {
                let epoch = Self::effective_epoch(outer_epoch, *epoch);
                let pattern: Vec<Option<Value>> = args.iter().map(|t| resolve(t, b)).collect();
                let results = self.eval_pred_depth(*pred, &pattern, epoch, depth + 1)?;
                for tuple in results {
                    if let Some(trail) = unify_tuple(args, &tuple, b) {
                        self.exec_step(plan, idx + 1, b, outer_epoch, depth, emit)?;
                        undo(&trail, b);
                    }
                }
                Ok(())
            }
            PlanStep::NegCheck { pred, args, epoch } => {
                let epoch = Self::effective_epoch(outer_epoch, *epoch);
                let pattern: Vec<Option<Value>> = args.iter().map(|t| resolve(t, b)).collect();
                debug_assert!(
                    pattern.iter().all(Option::is_some),
                    "negation scheduled with unbound args"
                );
                if !self.holds(*pred, &pattern, epoch)? {
                    self.exec_step(plan, idx + 1, b, outer_epoch, depth, emit)?;
                }
                Ok(())
            }
            PlanStep::Cmp { op, lhs, rhs } => {
                let (Some(l), Some(r)) = (resolve(lhs, b), resolve(rhs, b)) else {
                    return Err(ObjectLogError::NotSchedulable {
                        literal: format!("{lhs} {op} {rhs}"),
                    });
                };
                // Incomparable runtime types simply fail the test.
                if l.compare(&r).map(|ord| op.matches(ord)).unwrap_or(false) {
                    self.exec_step(plan, idx + 1, b, outer_epoch, depth, emit)?;
                }
                Ok(())
            }
            PlanStep::Arith {
                op,
                result,
                lhs,
                rhs,
            } => {
                let (Some(l), Some(r)) = (resolve(lhs, b), resolve(rhs, b)) else {
                    return Err(ObjectLogError::NotSchedulable {
                        literal: format!("{result} = {lhs} {op} {rhs}"),
                    });
                };
                let value = op.apply(&l, &r)?;
                let (ok, bound) = unify_term(result, &value, b);
                if ok {
                    self.exec_step(plan, idx + 1, b, outer_epoch, depth, emit)?;
                }
                if let Some(i) = bound {
                    b[i] = None;
                }
                Ok(())
            }
            PlanStep::Unify { lhs, rhs } => match (resolve(lhs, b), resolve(rhs, b)) {
                (Some(l), Some(r)) => {
                    if l == r {
                        self.exec_step(plan, idx + 1, b, outer_epoch, depth, emit)?;
                    }
                    Ok(())
                }
                (Some(l), None) => {
                    let (ok, bound) = unify_term(rhs, &l, b);
                    debug_assert!(ok);
                    self.exec_step(plan, idx + 1, b, outer_epoch, depth, emit)?;
                    if let Some(i) = bound {
                        b[i] = None;
                    }
                    Ok(())
                }
                (None, Some(r)) => {
                    let (ok, bound) = unify_term(lhs, &r, b);
                    debug_assert!(ok);
                    self.exec_step(plan, idx + 1, b, outer_epoch, depth, emit)?;
                    if let Some(i) = bound {
                        b[i] = None;
                    }
                    Ok(())
                }
                (None, None) => Err(ObjectLogError::NotSchedulable {
                    literal: format!("{lhs} = {rhs}"),
                }),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clause::{ClauseBuilder, Term};
    use amos_storage::Polarity;
    use amos_types::{tuple, ArithOp, CmpOp, TypeId};
    use std::sync::Arc;

    fn sig(n: usize) -> Vec<TypeId> {
        vec![TypeId(0); n]
    }

    struct Fixture {
        storage: Storage,
        catalog: Catalog,
        q: PredId,
        r: PredId,
        p: PredId,
    }

    /// p(X,Z) ← q(X,Y) ∧ r(Y,Z): the running example of §4.3.
    fn fixture() -> Fixture {
        let mut storage = Storage::new();
        let rq = storage.create_relation("q", 2).unwrap();
        let rr = storage.create_relation("r", 2).unwrap();
        storage.insert(rq, tuple![1, 1]).unwrap();
        storage.insert(rr, tuple![1, 2]).unwrap();
        storage.insert(rr, tuple![2, 3]).unwrap();

        let mut catalog = Catalog::new();
        let q = catalog.define_stored("q", sig(2), rq, 1).unwrap();
        let r = catalog.define_stored("r", sig(2), rr, 1).unwrap();
        let p = catalog
            .define_derived(
                "p",
                sig(2),
                vec![ClauseBuilder::new(3)
                    .head([Term::var(0), Term::var(2)])
                    .pred(q, [Term::var(0), Term::var(1)])
                    .pred(r, [Term::var(1), Term::var(2)])
                    .build()],
            )
            .unwrap();
        Fixture {
            storage,
            catalog,
            q,
            r,
            p,
        }
    }

    #[test]
    fn derived_evaluation() {
        let f = fixture();
        let deltas = DeltaMap::new();
        let ctx = EvalContext::new(&f.storage, &f.catalog, &deltas);
        let out = ctx.eval_pred(f.p, &[None, None], StateEpoch::New).unwrap();
        assert_eq!(out, [tuple![1, 2]].into_iter().collect());
    }

    #[test]
    fn bound_pattern_filters() {
        let f = fixture();
        let deltas = DeltaMap::new();
        let ctx = EvalContext::new(&f.storage, &f.catalog, &deltas);
        let out = ctx
            .eval_pred(f.p, &[Some(Value::Int(1)), None], StateEpoch::New)
            .unwrap();
        assert_eq!(out.len(), 1);
        let none = ctx
            .eval_pred(f.p, &[Some(Value::Int(9)), None], StateEpoch::New)
            .unwrap();
        assert!(none.is_empty());
    }

    #[test]
    fn old_state_evaluation_of_derived() {
        let mut f = fixture();
        let rq = f.catalog.def(f.q).stored_rel().unwrap();
        f.storage.monitor(rq);
        f.storage.begin().unwrap();
        // Delete q(1,1): p becomes empty in the new state but p_old still
        // derives (1,2).
        f.storage.delete(rq, &tuple![1, 1]).unwrap();
        let deltas = DeltaMap::new();
        let ctx = EvalContext::new(&f.storage, &f.catalog, &deltas);
        assert!(ctx
            .eval_pred(f.p, &[None, None], StateEpoch::New)
            .unwrap()
            .is_empty());
        let old = ctx.eval_pred(f.p, &[None, None], StateEpoch::Old).unwrap();
        assert_eq!(old, [tuple![1, 2]].into_iter().collect());
    }

    #[test]
    fn delta_literal_seeds_differential() {
        let mut f = fixture();
        // Δp/Δ₊q ← Δ₊q(X,Y) ∧ r(Y,Z), emitting (X,Z).
        let diff = ClauseBuilder::new(3)
            .head([Term::var(0), Term::var(2)])
            .delta(f.q, Polarity::Plus, [Term::var(0), Term::var(1)])
            .pred(f.r, [Term::var(1), Term::var(2)])
            .build();
        let dp = f
            .catalog
            .define_derived("dp_dq", sig(2), vec![diff])
            .unwrap();

        let mut deltas = DeltaMap::new();
        let mut d = DeltaSet::new();
        d.apply_insert(tuple![1, 2]); // assert q(1,2)
        deltas.insert(f.q, d);

        let ctx = EvalContext::new(&f.storage, &f.catalog, &deltas);
        let out = ctx.eval_pred(dp, &[None, None], StateEpoch::New).unwrap();
        assert_eq!(out, [tuple![1, 3]].into_iter().collect());
    }

    #[test]
    fn missing_delta_is_empty() {
        let mut f = fixture();
        let diff = ClauseBuilder::new(3)
            .head([Term::var(0), Term::var(2)])
            .delta(f.q, Polarity::Plus, [Term::var(0), Term::var(1)])
            .pred(f.r, [Term::var(1), Term::var(2)])
            .build();
        let dp = f.catalog.define_derived("dp", sig(2), vec![diff]).unwrap();
        let deltas = DeltaMap::new();
        let ctx = EvalContext::new(&f.storage, &f.catalog, &deltas);
        assert!(ctx
            .eval_pred(dp, &[None, None], StateEpoch::New)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn negation_and_builtins() {
        let mut f = fixture();
        // s(X) ← q(X,Y) ∧ ¬r(Y, Z2) … negation needs all bound; use
        // s(X) ← q(X,Y) ∧ Y2 = Y + 1 ∧ ¬r(Y, Y2) ∧ Y < 10
        let s = ClauseBuilder::new(3)
            .head([Term::var(0)])
            .pred(f.q, [Term::var(0), Term::var(1)])
            .arith(Term::var(2), Term::var(1), ArithOp::Add, Term::val(1))
            .not_pred(f.r, [Term::var(1), Term::var(2)])
            .cmp(Term::var(1), CmpOp::Lt, Term::val(10))
            .build();
        let s = f.catalog.define_derived("s", sig(1), vec![s]).unwrap();
        let deltas = DeltaMap::new();
        let ctx = EvalContext::new(&f.storage, &f.catalog, &deltas);
        // q(1,1), r(1,2) exists → ¬r(1,2) fails → empty.
        assert!(ctx
            .eval_pred(s, &[None], StateEpoch::New)
            .unwrap()
            .is_empty());

        // Remove r(1,2) → s(1) holds.
        let rr = f.catalog.def(f.r).stored_rel().unwrap();
        let mut storage = f.storage;
        storage.delete(rr, &tuple![1, 2]).unwrap();
        let ctx = EvalContext::new(&storage, &f.catalog, &deltas);
        assert_eq!(
            ctx.eval_pred(s, &[None], StateEpoch::New).unwrap(),
            [tuple![1]].into_iter().collect()
        );
    }

    #[test]
    fn multi_clause_is_union() {
        let mut f = fixture();
        // u(X) ← q(X,_) ;  u(X) ← r(_,X)
        let c1 = ClauseBuilder::new(2)
            .head([Term::var(0)])
            .pred(f.q, [Term::var(0), Term::var(1)])
            .build();
        let c2 = ClauseBuilder::new(2)
            .head([Term::var(0)])
            .pred(f.r, [Term::var(1), Term::var(0)])
            .build();
        let u = f.catalog.define_derived("u", sig(1), vec![c1, c2]).unwrap();
        let deltas = DeltaMap::new();
        let ctx = EvalContext::new(&f.storage, &f.catalog, &deltas);
        let out = ctx.eval_pred(u, &[None], StateEpoch::New).unwrap();
        assert_eq!(out, [tuple![1], tuple![2], tuple![3]].into_iter().collect());
    }

    #[test]
    fn foreign_predicate() {
        let mut f = fixture();
        // double(X, Y): Y = 2*X for bound X.
        let double = f
            .catalog
            .define_foreign(
                "double",
                sig(2),
                Arc::new(|pattern: &[Option<Value>]| match &pattern[0] {
                    Some(Value::Int(x)) => vec![vec![Value::Int(*x), Value::Int(2 * x)]],
                    _ => vec![],
                }),
            )
            .unwrap();
        // t(X, D) ← q(X, Y) ∧ double(Y, D)
        let t = ClauseBuilder::new(3)
            .head([Term::var(0), Term::var(2)])
            .pred(f.q, [Term::var(0), Term::var(1)])
            .pred(double, [Term::var(1), Term::var(2)])
            .build();
        let t = f.catalog.define_derived("t", sig(2), vec![t]).unwrap();
        let deltas = DeltaMap::new();
        let ctx = EvalContext::new(&f.storage, &f.catalog, &deltas);
        let out = ctx.eval_pred(t, &[None, None], StateEpoch::New).unwrap();
        assert_eq!(out, [tuple![1, 2]].into_iter().collect());
    }

    #[test]
    fn constants_in_head_and_args() {
        let mut f = fixture();
        // only1(Y) ← q(1, Y)
        let c = ClauseBuilder::new(1)
            .head([Term::var(0)])
            .pred(f.q, [Term::val(1), Term::var(0)])
            .build();
        let only1 = f.catalog.define_derived("only1", sig(1), vec![c]).unwrap();
        let deltas = DeltaMap::new();
        let ctx = EvalContext::new(&f.storage, &f.catalog, &deltas);
        let out = ctx.eval_pred(only1, &[None], StateEpoch::New).unwrap();
        assert_eq!(out, [tuple![1]].into_iter().collect());
    }

    #[test]
    fn repeated_head_vars_enforce_equality() {
        let mut f = fixture();
        // eq(X) ← q(X, X)
        let c = ClauseBuilder::new(1)
            .head([Term::var(0)])
            .pred(f.q, [Term::var(0), Term::var(0)])
            .build();
        let eq = f.catalog.define_derived("eq", sig(1), vec![c]).unwrap();
        let deltas = DeltaMap::new();
        let ctx = EvalContext::new(&f.storage, &f.catalog, &deltas);
        // q(1,1) matches; nothing else.
        let out = ctx.eval_pred(eq, &[None], StateEpoch::New).unwrap();
        assert_eq!(out, [tuple![1]].into_iter().collect());
    }

    /// The parallel wave-front shares read-only contexts across threads;
    /// regressing this bound breaks `amos-core`'s parallel propagation.
    #[test]
    fn context_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<EvalContext<'static>>();
    }

    #[test]
    fn holds_shortcuts_stored_lookup() {
        let f = fixture();
        let deltas = DeltaMap::new();
        let ctx = EvalContext::new(&f.storage, &f.catalog, &deltas);
        assert!(ctx
            .holds(
                f.q,
                &[Some(Value::Int(1)), Some(Value::Int(1))],
                StateEpoch::New
            )
            .unwrap());
        assert!(!ctx
            .holds(
                f.q,
                &[Some(Value::Int(1)), Some(Value::Int(7))],
                StateEpoch::New
            )
            .unwrap());
    }
}

#[cfg(test)]
mod recursion_tests {
    use super::*;
    use crate::catalog::Catalog;
    use crate::clause::{ClauseBuilder, Term};
    use amos_types::{tuple, TypeId};

    fn sig(n: usize) -> Vec<TypeId> {
        vec![TypeId(0); n]
    }

    /// reach(X,Y) ← edge(X,Y) ; reach(X,Y) ← reach(X,Z) ∧ edge(Z,Y)
    fn reach_world(edges: &[(i64, i64)]) -> (Storage, Catalog, PredId) {
        let mut storage = Storage::new();
        let re = storage.create_relation("edge", 2).unwrap();
        let mut catalog = Catalog::new();
        let edge = catalog.define_stored("edge", sig(2), re, 1).unwrap();
        let reach = catalog.define_derived("reach", sig(2), vec![]).unwrap();
        catalog
            .replace_clauses(
                reach,
                vec![
                    ClauseBuilder::new(2)
                        .head([Term::var(0), Term::var(1)])
                        .pred(edge, [Term::var(0), Term::var(1)])
                        .build(),
                    ClauseBuilder::new(3)
                        .head([Term::var(0), Term::var(2)])
                        .pred(reach, [Term::var(0), Term::var(1)])
                        .pred(edge, [Term::var(1), Term::var(2)])
                        .build(),
                ],
            )
            .unwrap();
        for &(a, b) in edges {
            storage.insert(re, tuple![a, b]).unwrap();
        }
        (storage, catalog, reach)
    }

    #[test]
    fn transitive_closure_fixpoint() {
        let (storage, catalog, reach) = reach_world(&[(1, 2), (2, 3), (3, 4), (10, 11)]);
        let deltas = DeltaMap::new();
        let ctx = EvalContext::new(&storage, &catalog, &deltas);
        let out = ctx
            .eval_pred(reach, &[None, None], StateEpoch::New)
            .unwrap();
        let expected: HashSet<Tuple> = [
            tuple![1, 2],
            tuple![1, 3],
            tuple![1, 4],
            tuple![2, 3],
            tuple![2, 4],
            tuple![3, 4],
            tuple![10, 11],
        ]
        .into_iter()
        .collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn cyclic_graph_terminates() {
        let (storage, catalog, reach) = reach_world(&[(1, 2), (2, 3), (3, 1)]);
        let deltas = DeltaMap::new();
        let ctx = EvalContext::new(&storage, &catalog, &deltas);
        let out = ctx
            .eval_pred(reach, &[None, None], StateEpoch::New)
            .unwrap();
        // Every pair in the 3-cycle reaches every node (incl. itself).
        assert_eq!(out.len(), 9);
        assert!(out.contains(&tuple![1, 1]));
    }

    #[test]
    fn bound_pattern_filters_fixpoint() {
        let (storage, catalog, reach) = reach_world(&[(1, 2), (2, 3), (5, 6)]);
        let deltas = DeltaMap::new();
        let ctx = EvalContext::new(&storage, &catalog, &deltas);
        let from1 = ctx
            .eval_pred(reach, &[Some(Value::Int(1)), None], StateEpoch::New)
            .unwrap();
        assert_eq!(from1, [tuple![1, 2], tuple![1, 3]].into_iter().collect());
        assert!(ctx
            .holds(
                reach,
                &[Some(Value::Int(1)), Some(Value::Int(3))],
                StateEpoch::New
            )
            .unwrap());
    }

    #[test]
    fn old_state_fixpoint_via_rollback() {
        let (mut storage, catalog, reach) = reach_world(&[(1, 2)]);
        let re = catalog
            .def(catalog.lookup("edge").unwrap())
            .stored_rel()
            .unwrap();
        storage.monitor(re);
        storage.begin().unwrap();
        storage.insert(re, tuple![2, 3]).unwrap();
        let deltas = DeltaMap::new();
        let ctx = EvalContext::new(&storage, &catalog, &deltas);
        let new = ctx
            .eval_pred(reach, &[None, None], StateEpoch::New)
            .unwrap();
        assert!(new.contains(&tuple![1, 3]));
        let old = ctx
            .eval_pred(reach, &[None, None], StateEpoch::Old)
            .unwrap();
        assert_eq!(old, [tuple![1, 2]].into_iter().collect());
    }

    #[test]
    fn empty_graph_empty_fixpoint() {
        let (storage, catalog, reach) = reach_world(&[]);
        let deltas = DeltaMap::new();
        let ctx = EvalContext::new(&storage, &catalog, &deltas);
        assert!(ctx
            .eval_pred(reach, &[None, None], StateEpoch::New)
            .unwrap()
            .is_empty());
    }
}
