//! The goal-directed evaluation engine.
//!
//! Evaluates any predicate under a *binding pattern* (some argument
//! positions bound to values) against the database — in the **new** state
//! or, via logical rollback of every stored leaf, in the **old** state.
//! Derived predicates evaluate their clauses through compiled plans
//! (compiled on the fly here; the rule layer pre-compiles and caches the
//! plans of partial differentials).
//!
//! Epoch propagation: once evaluation enters an old-state literal,
//! everything beneath it is old-state too — `Q_old` of a derived `Q` is
//! the derivation over old base relations, which is exactly what the
//! paper's logical rollback gives (all influent Δ-sets are complete when
//! a negative differential runs, thanks to breadth-first bottom-up
//! propagation).

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use amos_storage::{DeltaSet, ReadOverlay, StateEpoch, Storage};
use amos_types::{FxHashMap, Tuple, Value};

use crate::catalog::{Catalog, PredId, PredKind};
use crate::clause::{Term, Var};
use crate::error::ObjectLogError;
use crate::plan::{compile_clause, Plan, PlanStep};

/// Δ-sets keyed by influent predicate, available to Δ-literals.
pub type DeltaMap = HashMap<PredId, DeltaSet>;

/// Tunable evaluation knobs, kept separate from the per-query context so
/// ablation runs (`--no-tabling`) can toggle them in one place.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvalConfig {
    /// Memoize derived-predicate call results for the lifetime of the
    /// shared cache state (one check-phase pass) — the paper's
    /// cross-differential sharing, realized at the evaluator level.
    pub tabling: bool,
    /// Recursion guard for derived-predicate calls.
    pub depth_limit: usize,
}

impl Default for EvalConfig {
    fn default() -> Self {
        EvalConfig {
            tabling: true,
            depth_limit: 64,
        }
    }
}

/// Cache state shared by every [`EvalContext`] of one propagation pass.
///
/// The wave-front executes many differentials (often concurrently) whose
/// contexts differ only in their Δ-environment; everything cacheable
/// between them lives here, behind `RwLock`s so parallel tasks read
/// without convoying:
///
/// * **plan cache** — compiled clause plans per (predicate, binding
///   mask). Valid as long as the catalog's clauses are; the rule layer
///   replaces the whole `EvalShared` when the network is rebuilt.
/// * **old-state indexes** — lazily-built hash indexes over logical-
///   rollback views, shared by every negative differential of the pass
///   (previously rebuilt per differential). Valid for one pass: the next
///   transaction has different Δ-sets.
/// * **memo table** — derived-call results per (predicate, binding
///   pattern, epoch); see [`EvalContext::eval_call`]. Valid for one
///   pass: storage is frozen while a pass runs.
///
/// [`EvalShared::reset_pass`] clears the per-pass state (old indexes +
/// memo) and must be called at every pass boundary when the value is
/// reused across passes.
#[derive(Debug)]
pub struct EvalShared {
    config: EvalConfig,
    plan_cache: RwLock<PlanCache>,
    old_index: RwLock<OldIndexCache>,
    memo: RwLock<MemoTable>,
    hits: AtomicU64,
    misses: AtomicU64,
    probes: AtomicU64,
    scans: AtomicU64,
    delta_probes: AtomicU64,
    delta_scans: AtomicU64,
    merge_joins: AtomicU64,
}

impl Default for EvalShared {
    fn default() -> Self {
        EvalShared::new(EvalConfig::default())
    }
}

impl EvalShared {
    /// Fresh, empty cache state under the given configuration.
    pub fn new(config: EvalConfig) -> Self {
        EvalShared {
            config,
            plan_cache: RwLock::new(PlanCache::default()),
            old_index: RwLock::new(OldIndexCache::default()),
            memo: RwLock::new(MemoTable::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            probes: AtomicU64::new(0),
            scans: AtomicU64::new(0),
            delta_probes: AtomicU64::new(0),
            delta_scans: AtomicU64::new(0),
            merge_joins: AtomicU64::new(0),
        }
    }

    /// The configuration this state was created with.
    pub fn config(&self) -> EvalConfig {
        self.config
    }

    /// Invalidate everything that is only valid within one propagation
    /// pass: old-state indexes (the next transaction rolls back to a
    /// different state) and the derived-call memo table (storage mutates
    /// between passes). The plan cache survives — plans depend only on
    /// the catalog, and the rule layer swaps the whole `EvalShared` when
    /// rules or the network change.
    pub fn reset_pass(&self) {
        self.old_index.write().unwrap().clear();
        self.memo.write().unwrap().clear();
    }

    /// Drop every cache including compiled plans (schema changes).
    pub fn clear_all(&self) {
        self.plan_cache.write().unwrap().clear();
        self.reset_pass();
    }

    /// Cumulative derived-call memo hits since construction.
    pub fn tabling_hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cumulative derived-call memo misses since construction.
    pub fn tabling_misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Cumulative stored accesses served by an index probe or a full
    /// membership lookup.
    pub fn probe_count(&self) -> u64 {
        self.probes.load(Ordering::Relaxed)
    }

    /// Cumulative stored accesses that scanned the whole relation.
    pub fn scan_count(&self) -> u64 {
        self.scans.load(Ordering::Relaxed)
    }

    /// Cumulative Δ-set accesses served by the lazy Δ-index (or a
    /// membership test).
    pub fn delta_probe_count(&self) -> u64 {
        self.delta_probes.load(Ordering::Relaxed)
    }

    /// Cumulative Δ-set accesses that iterated a whole Δ-side.
    pub fn delta_scan_count(&self) -> u64 {
        self.delta_scans.load(Ordering::Relaxed)
    }

    /// Cumulative sorted merge-join zipper executions.
    pub fn merge_join_count(&self) -> u64 {
        self.merge_joins.load(Ordering::Relaxed)
    }
}

/// When the Δ side of a merge join outnumbers the stored arrangement by
/// this factor, skip sorting it and binary-search each Δ tuple into the
/// stored blocks instead: `O(|Δ|·log s)` beats the `O(|Δ|·log |Δ|)`
/// arrange once `s ≪ |Δ|` (the bulk-load-against-tiny-companion shape).
const LOOKUP_JOIN_FACTOR: usize = 8;

/// Evaluation context: storage, catalog, and the Δ-environment.
pub struct EvalContext<'a> {
    /// The database of base relations.
    pub storage: &'a Storage,
    /// Predicate definitions.
    pub catalog: &'a Catalog,
    /// Δ-sets readable by Δ-literals (empty map outside propagation).
    pub deltas: &'a DeltaMap,
    /// Recursion guard for derived-predicate calls.
    pub depth_limit: usize,
    /// Snapshot-correction view for multi-session transactions: when
    /// set, every `New`-epoch stored read is routed through the overlay
    /// (`(S_now − hide) ∪ add`). Contexts carrying a view must use a
    /// *fresh* [`EvalShared`] — the memo table is keyed by `(pred,
    /// pattern, epoch)` only and would leak results across snapshots.
    pub view: Option<&'a ReadOverlay>,
    /// Caches shared across the contexts of one propagation pass.
    shared: Arc<EvalShared>,
}

/// Variable bindings during plan execution.
type Bindings = Vec<Option<Value>>;

/// Solution callback invoked by [`EvalContext::run_plan`].
pub type EmitFn<'e> = dyn FnMut(&Bindings, &[Term]) -> Result<(), ObjectLogError> + 'e;

/// Cache of compiled clause plans, keyed by predicate and bound-argument
/// bitmask. A differential whose Δ-set seeds `n` tuples calls its
/// derived sub-goals `n` times with the same binding pattern — without
/// the cache each call would re-run the greedy optimizer.
type PlanCache = FxHashMap<(PredId, u64), Arc<Vec<(usize, Plan)>>>;

/// One lazily-built old-state hash index: probe-key projection → the
/// matching old-state tuples.
type OldIndex = FxHashMap<Tuple, Vec<Tuple>>;

/// Cache of old-state hash indexes keyed by relation and probed column
/// set, used for old-epoch probes when the relation's Δ-set is too large
/// for the per-probe linear overlay of
/// [`amos_storage::OldStateView::probe`]. The build cost (one old-state
/// scan) amortizes over the many probes a massive transaction performs —
/// this is what keeps the fig. 7 workload linear instead of quadratic.
type OldIndexCache = FxHashMap<(amos_storage::RelId, Vec<usize>), Arc<OldIndex>>;

/// Memo table for derived-predicate calls: full binding pattern + state
/// epoch → the call's result set. Within one pass the database is
/// frozen, so a derived predicate is a pure function of its pattern and
/// epoch (source clauses never contain Δ-literals).
type MemoTable = FxHashMap<(PredId, Vec<Option<Value>>, StateEpoch), Arc<Vec<Tuple>>>;

fn resolve(t: &Term, b: &Bindings) -> Option<Value> {
    match t {
        Term::Const(v) => Some(v.clone()),
        Term::Var(Var(i)) => b[*i as usize].clone(),
    }
}

/// Unify a term with a value: bind if unbound variable, test otherwise.
/// Returns the variable index bound (for trail-based undo), or `None` if
/// no new binding was made; `Err(())`-like `false` in `ok` means failure.
fn unify_term(t: &Term, v: &Value, b: &mut Bindings) -> (bool, Option<usize>) {
    match t {
        Term::Const(c) => (c == v, None),
        Term::Var(Var(i)) => {
            let idx = *i as usize;
            match &b[idx] {
                Some(existing) => (existing == v, None),
                None => {
                    b[idx] = Some(v.clone());
                    (true, Some(idx))
                }
            }
        }
    }
}

/// Unify a whole tuple with literal args; on failure undoes its own
/// bindings. Returns the trail of newly-bound variable indexes.
fn unify_tuple(args: &[Term], tuple: &Tuple, b: &mut Bindings) -> Option<Vec<usize>> {
    let mut trail = Vec::new();
    for (t, v) in args.iter().zip(tuple.values()) {
        let (ok, bound) = unify_term(t, v, b);
        if let Some(idx) = bound {
            trail.push(idx);
        }
        if !ok {
            for idx in trail {
                b[idx] = None;
            }
            return None;
        }
    }
    Some(trail)
}

fn undo(trail: &[usize], b: &mut Bindings) {
    for &idx in trail {
        b[idx] = None;
    }
}

impl<'a> EvalContext<'a> {
    /// Build a context with fresh private caches and default config.
    pub fn new(storage: &'a Storage, catalog: &'a Catalog, deltas: &'a DeltaMap) -> Self {
        EvalContext::with_shared(storage, catalog, deltas, Arc::new(EvalShared::default()))
    }

    /// Build a context over existing shared cache state — the wave-front
    /// executor creates one `EvalShared` per pass and threads it through
    /// every differential's context so plan compilations, old-state
    /// indexes, and derived-call results are computed once per pass
    /// instead of once per differential.
    pub fn with_shared(
        storage: &'a Storage,
        catalog: &'a Catalog,
        deltas: &'a DeltaMap,
        shared: Arc<EvalShared>,
    ) -> Self {
        EvalContext {
            storage,
            catalog,
            deltas,
            depth_limit: shared.config().depth_limit,
            view: None,
            shared,
        }
    }

    /// Build a context whose `New`-epoch stored reads are corrected by a
    /// snapshot [`ReadOverlay`] (session transactions). Uses fresh
    /// private caches: memoized derived-call results are only valid
    /// under the overlay they were computed with.
    pub fn with_view(
        storage: &'a Storage,
        catalog: &'a Catalog,
        deltas: &'a DeltaMap,
        view: &'a ReadOverlay,
    ) -> Self {
        EvalContext {
            view: Some(view),
            ..EvalContext::new(storage, catalog, deltas)
        }
    }

    /// The shared cache state this context evaluates through.
    pub fn shared(&self) -> &Arc<EvalShared> {
        &self.shared
    }

    /// Evaluate a predicate under a binding pattern: return all full
    /// argument tuples consistent with the bound positions.
    pub fn eval_pred(
        &self,
        pred: PredId,
        pattern: &[Option<Value>],
        epoch: StateEpoch,
    ) -> Result<HashSet<Tuple>, ObjectLogError> {
        self.eval_pred_depth(pred, pattern, epoch, 0)
    }

    /// Existence check: is there at least one tuple matching the pattern?
    pub fn holds(
        &self,
        pred: PredId,
        pattern: &[Option<Value>],
        epoch: StateEpoch,
    ) -> Result<bool, ObjectLogError> {
        // For stored predicates with full patterns this is a hash lookup;
        // otherwise fall back to (short-circuiting would need a lazy
        // evaluator; result sets are small at the call sites) evaluation
        // through the memoized call path — the §7.2 checks issue the
        // same derived-predicate calls over and over.
        let def = self.catalog.def(pred);
        if let PredKind::Stored { rel, .. } = def.kind {
            if pattern.iter().all(Option::is_some) {
                let t: Tuple = pattern.iter().map(|v| v.clone().unwrap()).collect();
                return Ok(match epoch {
                    StateEpoch::New => self.new_contains(rel, &t),
                    StateEpoch::Old => self.storage.old_view(rel).contains(&t),
                });
            }
        }
        Ok(!self.eval_call(pred, pattern, epoch, 0)?.is_empty())
    }

    /// Evaluate a predicate call, memoizing derived-predicate results in
    /// the shared per-pass table ("tabling"). `N` differentials sharing
    /// a derived subcondition — the common case in bushy networks where
    /// a node like `threshold` is kept unexpanded — evaluate it once per
    /// (binding pattern, epoch) and pay an `Arc` clone thereafter.
    ///
    /// Only `Derived` predicates are memoized: stored lookups are
    /// already cheap, and foreign predicates may be impure. Correctness
    /// rests on two invariants: storage is frozen while a pass runs, and
    /// source clauses never contain Δ-literals, so a derived call is a
    /// pure function of `(pred, pattern, epoch)` for the pass duration.
    fn eval_call(
        &self,
        pred: PredId,
        pattern: &[Option<Value>],
        epoch: StateEpoch,
        depth: usize,
    ) -> Result<Arc<Vec<Tuple>>, ObjectLogError> {
        // Fully-bound patterns are membership probes issued per candidate
        // tuple (the §7.2 accept checks); memoizing them costs a key
        // allocation per tuple with near-zero reuse, so only calls with
        // at least one free column go through the memo table.
        let memoize = self.shared.config.tabling
            && pattern.iter().any(Option::is_none)
            && matches!(self.catalog.def(pred).kind, PredKind::Derived(_));
        if !memoize {
            return Ok(Arc::new(
                self.eval_pred_depth(pred, pattern, epoch, depth)?
                    .into_iter()
                    .collect(),
            ));
        }
        let key = (pred, pattern.to_vec(), epoch);
        if let Some(hit) = self.shared.memo.read().unwrap().get(&key) {
            self.shared.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(hit));
        }
        // Compute outside the lock; a racing thread may insert first, in
        // which case its (identical) result wins.
        let computed: Arc<Vec<Tuple>> = Arc::new(
            self.eval_pred_depth(pred, pattern, epoch, depth)?
                .into_iter()
                .collect(),
        );
        self.shared.misses.fetch_add(1, Ordering::Relaxed);
        let mut memo = self.shared.memo.write().unwrap();
        Ok(Arc::clone(memo.entry(key).or_insert(computed)))
    }

    fn eval_pred_depth(
        &self,
        pred: PredId,
        pattern: &[Option<Value>],
        epoch: StateEpoch,
        depth: usize,
    ) -> Result<HashSet<Tuple>, ObjectLogError> {
        if depth > self.depth_limit {
            return Err(ObjectLogError::DepthExceeded);
        }
        let def = self.catalog.def(pred);
        debug_assert_eq!(pattern.len(), def.arity, "pattern arity for {}", def.name);
        match &def.kind {
            PredKind::Stored { rel, .. } => {
                Ok(self.eval_stored(*rel, pattern, epoch).into_iter().collect())
            }
            PredKind::Foreign(f) => Ok(f(pattern).into_iter().map(Tuple::new).collect()),
            PredKind::Derived(clauses) if self.catalog.is_self_recursive(pred) => {
                self.eval_recursive(pred, clauses, pattern, epoch, depth)
            }
            PredKind::Derived(clauses) => {
                let plans = self.plans_for(pred, clauses, pattern)?;
                let mut out = HashSet::new();
                for (clause_idx, plan) in plans.iter() {
                    let clause = &clauses[*clause_idx];
                    // Bind head terms from the pattern.
                    let mut bindings: Bindings = vec![None; clause.n_vars as usize];
                    let mut feasible = true;
                    for (term, slot) in clause.head.iter().zip(pattern) {
                        match (term, slot) {
                            (Term::Const(c), Some(v)) if c != v => {
                                feasible = false;
                                break;
                            }
                            (Term::Var(var), Some(v)) => {
                                let idx = var.0 as usize;
                                match &bindings[idx] {
                                    Some(existing) if existing != v => {
                                        feasible = false;
                                        break;
                                    }
                                    _ => bindings[idx] = Some(v.clone()),
                                }
                            }
                            _ => {}
                        }
                    }
                    if !feasible {
                        continue;
                    }
                    self.run_plan(plan, bindings, epoch, depth, &mut |b, plan_head| {
                        let tuple: Option<Tuple> = plan_head
                            .iter()
                            .map(|t| resolve(t, b))
                            .collect::<Option<Vec<Value>>>()
                            .map(Tuple::new);
                        if let Some(t) = tuple {
                            out.insert(t);
                        }
                        Ok(())
                    })?;
                }
                Ok(out)
            }
        }
    }

    /// Semi-naive least-fixpoint evaluation of a (linearly) self-recursive
    /// predicate — the §5 footnote's "fixed point techniques".
    ///
    /// Base clauses (no self-literal) seed the fixpoint; recursive
    /// clauses are rewritten so their self-literal reads a synthetic
    /// Δ-set holding the current *frontier* (tuples derived in the
    /// previous round), exactly the semi-naive restriction. Iteration
    /// stops when a round derives nothing new.
    ///
    /// Bound patterns are answered by computing the full fixpoint and
    /// filtering (goal-directed magic-sets rewriting is out of scope).
    fn eval_recursive(
        &self,
        pred: PredId,
        clauses: &[crate::clause::Clause],
        pattern: &[Option<Value>],
        epoch: StateEpoch,
        depth: usize,
    ) -> Result<HashSet<Tuple>, ObjectLogError> {
        use crate::clause::{Clause, Literal};
        let references_self = |c: &Clause| c.body.iter().any(|l| l.pred() == Some(pred));
        let unbound: Vec<Option<Value>> = vec![None; pattern.len()];

        // Seed: base clauses, evaluated through the ordinary machinery
        // on a catalog view where only the base clauses exist — achieved
        // by running each base clause's plan directly.
        let mut total: HashSet<Tuple> = HashSet::new();
        for clause in clauses.iter().filter(|c| !references_self(c)) {
            let plan = compile_clause(self.catalog, clause, &HashSet::new())?;
            let bindings = vec![None; clause.n_vars as usize];
            let mut collected: Vec<Tuple> = Vec::new();
            self.run_plan(&plan, bindings, epoch, depth + 1, &mut |b, head| {
                if let Some(vals) = head
                    .iter()
                    .map(|t| resolve(t, b))
                    .collect::<Option<Vec<Value>>>()
                {
                    collected.push(Tuple::new(vals));
                }
                Ok(())
            })?;
            total.extend(collected);
        }

        // Rewrite recursive clauses: self-literal → Δ₊-literal on self.
        let mut rec_plans: Vec<(Clause, Plan)> = Vec::new();
        for clause in clauses.iter().filter(|c| references_self(c)) {
            let body = clause
                .body
                .iter()
                .map(|lit| match lit {
                    Literal::Pred {
                        pred: p,
                        args,
                        negated: false,
                        ..
                    } if *p == pred => Literal::Delta {
                        pred,
                        polarity: amos_storage::Polarity::Plus,
                        args: args.clone(),
                    },
                    other => other.clone(),
                })
                .collect();
            let rewritten = Clause {
                n_vars: clause.n_vars,
                head: clause.head.clone(),
                body,
            };
            let plan = compile_clause(self.catalog, &rewritten, &HashSet::new())?;
            rec_plans.push((rewritten, plan));
        }

        let mut frontier: HashSet<Tuple> = total.clone();
        let mut rounds = 0usize;
        while !frontier.is_empty() {
            rounds += 1;
            if rounds > 100_000 {
                return Err(ObjectLogError::DepthExceeded);
            }
            let mut delta = DeltaSet::new();
            for t in frontier.drain() {
                delta.apply_insert(t);
            }
            let mut fmap = DeltaMap::new();
            fmap.insert(pred, delta);
            let sub = EvalContext::new(self.storage, self.catalog, &fmap);
            let mut next: Vec<Tuple> = Vec::new();
            for (clause, plan) in &rec_plans {
                let bindings = vec![None; clause.n_vars as usize];
                sub.run_plan(plan, bindings, epoch, depth + 1, &mut |b, head| {
                    if let Some(vals) = head
                        .iter()
                        .map(|t| resolve(t, b))
                        .collect::<Option<Vec<Value>>>()
                    {
                        next.push(Tuple::new(vals));
                    }
                    Ok(())
                })?;
            }
            for t in next {
                if total.insert(t.clone()) {
                    frontier.insert(t);
                }
            }
        }
        let _ = unbound;
        // Filter by the caller's bound positions.
        Ok(total
            .into_iter()
            .filter(|t| {
                pattern
                    .iter()
                    .enumerate()
                    .all(|(i, slot)| slot.as_ref().map(|v| &t[i] == v).unwrap_or(true))
            })
            .collect())
    }

    /// Plans for a derived predicate's clauses under a binding mask,
    /// compiled once per shared cache state (read-mostly `RwLock`, so
    /// concurrent wave-front tasks don't convoy on the common hit path).
    fn plans_for(
        &self,
        pred: PredId,
        clauses: &[crate::clause::Clause],
        pattern: &[Option<Value>],
    ) -> Result<Arc<Vec<(usize, Plan)>>, ObjectLogError> {
        debug_assert!(pattern.len() <= 64, "pattern mask is a u64");
        let mask: u64 = pattern
            .iter()
            .enumerate()
            .filter(|(_, v)| v.is_some())
            .fold(0, |m, (i, _)| m | (1 << i));
        if let Some(hit) = self.shared.plan_cache.read().unwrap().get(&(pred, mask)) {
            return Ok(Arc::clone(hit));
        }
        let mut plans = Vec::with_capacity(clauses.len());
        for (i, clause) in clauses.iter().enumerate() {
            let bound_vars: HashSet<Var> = clause
                .head
                .iter()
                .zip(pattern)
                .filter_map(|(term, slot)| match (term, slot) {
                    (Term::Var(v), Some(_)) => Some(*v),
                    _ => None,
                })
                .collect();
            plans.push((i, compile_clause(self.catalog, clause, &bound_vars)?));
        }
        let rc = Arc::new(plans);
        let mut cache = self.shared.plan_cache.write().unwrap();
        Ok(Arc::clone(cache.entry((pred, mask)).or_insert(rc)))
    }

    /// Evaluate a stored relation under a binding pattern.
    ///
    /// Returns a `Vec`, not a set: base relations already have set
    /// semantics, an index probe returns each tuple once, and the
    /// old-state overlay `(S_new − Δ₊) ∪ Δ₋` is duplicate-free because
    /// `Δ₋ ∩ S_new = ∅` — so the per-probe dedup the previous `HashSet`
    /// return performed was pure overhead on the hottest path.
    fn eval_stored(
        &self,
        rel: amos_storage::RelId,
        pattern: &[Option<Value>],
        epoch: StateEpoch,
    ) -> Vec<Tuple> {
        let bound_cols: Vec<usize> = pattern
            .iter()
            .enumerate()
            .filter(|(_, v)| v.is_some())
            .map(|(i, _)| i)
            .collect();
        let key: Vec<Value> = pattern.iter().flatten().cloned().collect();
        if bound_cols.is_empty() {
            self.shared.scans.fetch_add(1, Ordering::Relaxed);
        } else {
            self.shared.probes.fetch_add(1, Ordering::Relaxed);
        }
        // Fully bound: a hash membership check, never an index probe
        // (index probes degrade to scans on unindexed column sets).
        if bound_cols.len() == pattern.len() {
            let t = Tuple::new(key);
            let present = match epoch {
                StateEpoch::New => self.new_contains(rel, &t),
                StateEpoch::Old => self.storage.old_view(rel).contains(&t),
            };
            return if present { vec![t] } else { Vec::new() };
        }
        match epoch {
            StateEpoch::New => {
                let r = self.storage.relation(rel);
                if let Some(view) = self.view.filter(|v| v.overlays(rel)) {
                    return if bound_cols.is_empty() {
                        view.scan(rel, r)
                    } else {
                        view.probe(rel, r, &bound_cols, &key)
                    };
                }
                if bound_cols.is_empty() {
                    r.scan().cloned().collect()
                } else {
                    r.probe(&bound_cols, &key)
                }
            }
            StateEpoch::Old => {
                let v = self.storage.old_view(rel);
                if bound_cols.is_empty() {
                    v.scan().cloned().collect()
                } else if v.delta_len() <= 32 {
                    // Small transaction (the paper's common case): the
                    // per-probe linear Δ overlay is O(|Δ|) ≈ O(1).
                    v.probe(&bound_cols, &key)
                } else {
                    // Massive transaction: amortize one old-state scan
                    // into a hash index shared across the whole pass.
                    let idx = self.old_state_index(rel, &bound_cols);
                    match idx.get(&Tuple::new(key)) {
                        Some(ts) => ts.clone(),
                        None => Vec::new(),
                    }
                }
            }
        }
    }

    /// `New`-epoch membership, corrected by the snapshot view when one
    /// is attached and covers the relation.
    fn new_contains(&self, rel: amos_storage::RelId, t: &Tuple) -> bool {
        let base = self.storage.relation(rel);
        match self.view {
            Some(view) if view.overlays(rel) => view.contains(rel, base, t),
            _ => base.contains(t),
        }
    }

    /// The shared old-state index for `(rel, cols)`, building it on
    /// first use. Probes happen on the returned `Arc` outside the lock.
    fn old_state_index(&self, rel: amos_storage::RelId, cols: &[usize]) -> Arc<OldIndex> {
        if let Some(hit) = self
            .shared
            .old_index
            .read()
            .unwrap()
            .get(&(rel, cols.to_vec()))
        {
            return Arc::clone(hit);
        }
        let v = self.storage.old_view(rel);
        let mut map = OldIndex::default();
        for t in v.scan() {
            map.entry(t.project(cols)).or_default().push(t.clone());
        }
        let rc = Arc::new(map);
        let mut cache = self.shared.old_index.write().unwrap();
        Arc::clone(cache.entry((rel, cols.to_vec())).or_insert(rc))
    }

    /// Execute a pre-compiled plan with initial bindings, invoking `emit`
    /// for every solution. `outer_epoch` is the ambient state epoch: `Old`
    /// forces every literal old regardless of its annotation.
    pub fn run_plan(
        &self,
        plan: &Plan,
        mut bindings: Bindings,
        outer_epoch: StateEpoch,
        depth: usize,
        emit: &mut EmitFn<'_>,
    ) -> Result<(), ObjectLogError> {
        self.exec_step(plan, 0, &mut bindings, outer_epoch, depth, emit)
    }

    fn effective_epoch(outer: StateEpoch, lit: StateEpoch) -> StateEpoch {
        match outer {
            StateEpoch::Old => StateEpoch::Old,
            StateEpoch::New => lit,
        }
    }

    fn exec_step(
        &self,
        plan: &Plan,
        idx: usize,
        b: &mut Bindings,
        outer_epoch: StateEpoch,
        depth: usize,
        emit: &mut EmitFn<'_>,
    ) -> Result<(), ObjectLogError> {
        if idx == plan.steps.len() {
            return emit(b, &plan.head);
        }
        match &plan.steps[idx] {
            PlanStep::Stored {
                rel, args, epoch, ..
            } => {
                let epoch = Self::effective_epoch(outer_epoch, *epoch);
                let pattern: Vec<Option<Value>> = args.iter().map(|t| resolve(t, b)).collect();
                let candidates = self.eval_stored(*rel, &pattern, epoch);
                for tuple in candidates {
                    if let Some(trail) = unify_tuple(args, &tuple, b) {
                        self.exec_step(plan, idx + 1, b, outer_epoch, depth, emit)?;
                        undo(&trail, b);
                    }
                }
                Ok(())
            }
            PlanStep::Delta {
                pred,
                polarity,
                args,
                ..
            } => {
                static EMPTY: std::sync::OnceLock<DeltaSet> = std::sync::OnceLock::new();
                let delta = self
                    .deltas
                    .get(pred)
                    .unwrap_or_else(|| EMPTY.get_or_init(DeltaSet::new));
                // Runtime boundness can exceed the planner's static
                // `bound_cols` (constants, repeated variables), so derive
                // the probe pattern from the live bindings.
                let pattern: Vec<Option<Value>> = args.iter().map(|t| resolve(t, b)).collect();
                let bound_cols: Vec<usize> = pattern
                    .iter()
                    .enumerate()
                    .filter(|(_, v)| v.is_some())
                    .map(|(i, _)| i)
                    .collect();
                if bound_cols.len() == pattern.len() {
                    // Fully bound: one membership test against the side.
                    self.shared.delta_probes.fetch_add(1, Ordering::Relaxed);
                    let key: Vec<Value> = pattern.into_iter().flatten().collect();
                    let t = Tuple::new(key);
                    if delta.side(*polarity).contains(&t) {
                        self.exec_step(plan, idx + 1, b, outer_epoch, depth, emit)?;
                    }
                } else if !bound_cols.is_empty() {
                    // Partially bound: probe the Δ-set's lazy hash index
                    // instead of scanning the side per binding.
                    self.shared.delta_probes.fetch_add(1, Ordering::Relaxed);
                    let key: Vec<Value> = pattern.into_iter().flatten().collect();
                    for tuple in delta.probe(*polarity, &bound_cols, &key) {
                        if let Some(trail) = unify_tuple(args, &tuple, b) {
                            self.exec_step(plan, idx + 1, b, outer_epoch, depth, emit)?;
                            undo(&trail, b);
                        }
                    }
                } else {
                    self.shared.delta_scans.fetch_add(1, Ordering::Relaxed);
                    // Deterministic order is unnecessary here (results are
                    // accumulated into sets), so iterate the hash set
                    // directly.
                    for tuple in delta.side(*polarity) {
                        if let Some(trail) = unify_tuple(args, tuple, b) {
                            self.exec_step(plan, idx + 1, b, outer_epoch, depth, emit)?;
                            undo(&trail, b);
                        }
                    }
                }
                Ok(())
            }
            PlanStep::Call {
                pred, args, epoch, ..
            } => {
                let epoch = Self::effective_epoch(outer_epoch, *epoch);
                let pattern: Vec<Option<Value>> = args.iter().map(|t| resolve(t, b)).collect();
                let results = self.eval_call(*pred, &pattern, epoch, depth + 1)?;
                for tuple in results.iter() {
                    if let Some(trail) = unify_tuple(args, tuple, b) {
                        self.exec_step(plan, idx + 1, b, outer_epoch, depth, emit)?;
                        undo(&trail, b);
                    }
                }
                Ok(())
            }
            PlanStep::NegCheck { pred, args, epoch } => {
                let epoch = Self::effective_epoch(outer_epoch, *epoch);
                let pattern: Vec<Option<Value>> = args.iter().map(|t| resolve(t, b)).collect();
                debug_assert!(
                    pattern.iter().all(Option::is_some),
                    "negation scheduled with unbound args"
                );
                if !self.holds(*pred, &pattern, epoch)? {
                    self.exec_step(plan, idx + 1, b, outer_epoch, depth, emit)?;
                }
                Ok(())
            }
            PlanStep::Cmp { op, lhs, rhs } => {
                let (Some(l), Some(r)) = (resolve(lhs, b), resolve(rhs, b)) else {
                    return Err(ObjectLogError::NotSchedulable {
                        literal: format!("{lhs} {op} {rhs}"),
                    });
                };
                // Incomparable runtime types simply fail the test.
                if l.compare(&r).map(|ord| op.matches(ord)).unwrap_or(false) {
                    self.exec_step(plan, idx + 1, b, outer_epoch, depth, emit)?;
                }
                Ok(())
            }
            PlanStep::Arith {
                op,
                result,
                lhs,
                rhs,
            } => {
                let (Some(l), Some(r)) = (resolve(lhs, b), resolve(rhs, b)) else {
                    return Err(ObjectLogError::NotSchedulable {
                        literal: format!("{result} = {lhs} {op} {rhs}"),
                    });
                };
                let value = op.apply(&l, &r)?;
                let (ok, bound) = unify_term(result, &value, b);
                if ok {
                    self.exec_step(plan, idx + 1, b, outer_epoch, depth, emit)?;
                }
                if let Some(i) = bound {
                    b[i] = None;
                }
                Ok(())
            }
            PlanStep::MergeJoin {
                delta_pred,
                polarity,
                delta_args,
                rel,
                stored_args,
                delta_cols,
                rel_cols,
                ..
            } => {
                // Only differential plans carry Δ-literals, and those run
                // in the new epoch; the fusion gate additionally required
                // the stored side to be epoch-`New`.
                debug_assert_eq!(outer_epoch, StateEpoch::New);
                let Some(delta) = self.deltas.get(delta_pred) else {
                    return Ok(()); // no Δ-set: the join is empty
                };
                self.shared.merge_joins.fetch_add(1, Ordering::Relaxed);
                let dside = delta.side(*polarity);
                if dside.is_empty() {
                    return Ok(());
                }
                if self.view.is_some_and(|v| v.overlays(*rel)) {
                    // A snapshot view corrects this relation and the
                    // stored-side arrangement bypasses it; fall back to
                    // overlay-aware probes per Δ tuple. (Unreachable
                    // from session selects — merge joins require a
                    // Δ-literal, which only differencing plans carry —
                    // but kept correct for defence in depth.)
                    for dtu in dside {
                        if let Some(dtrail) = unify_tuple(delta_args, dtu, b) {
                            let pattern: Vec<Option<Value>> =
                                stored_args.iter().map(|t| resolve(t, b)).collect();
                            for stu in self.eval_stored(*rel, &pattern, StateEpoch::New) {
                                if let Some(strail) = unify_tuple(stored_args, &stu, b) {
                                    self.exec_step(plan, idx + 1, b, outer_epoch, depth, emit)?;
                                    undo(&strail, b);
                                }
                            }
                            undo(&dtrail, b);
                        }
                    }
                    return Ok(());
                }
                let sarr = self.storage.relation(*rel).arrangement(rel_cols);
                if sarr.is_empty() {
                    return Ok(());
                }
                if dside.len() > LOOKUP_JOIN_FACTOR * sarr.len() {
                    // Asymmetric: the Δ side dwarfs the stored
                    // arrangement, so sorting it would dominate the
                    // join. Binary-search each Δ tuple into the stored
                    // blocks instead — O(|Δ|·log s) beats O(|Δ|·log |Δ|).
                    for dtu in dside {
                        let block = sarr.equal_range_on(dtu, delta_cols);
                        if block.is_empty() {
                            continue;
                        }
                        if let Some(dtrail) = unify_tuple(delta_args, dtu, b) {
                            for stu in block {
                                if let Some(strail) = unify_tuple(stored_args, stu, b) {
                                    self.exec_step(plan, idx + 1, b, outer_epoch, depth, emit)?;
                                    undo(&strail, b);
                                }
                            }
                            undo(&dtrail, b);
                        }
                    }
                    return Ok(());
                }
                let darr = delta.arrangement(*polarity, delta_cols);
                let (dt, st) = (darr.tuples(), sarr.tuples());
                let (mut i, mut j) = (0, 0);
                while i < dt.len() && j < st.len() {
                    use std::cmp::Ordering as Ord_;
                    match amos_storage::arrangement::cmp_on_cols(
                        &dt[i], delta_cols, &st[j], rel_cols,
                    ) {
                        Ord_::Less => i += 1,
                        Ord_::Greater => j += 1,
                        Ord_::Equal => {
                            let di_end = darr.block_end(i);
                            let sj_end = sarr.block_end(j);
                            // Unify against the full argument lists so
                            // constants and repeated variables outside the
                            // join key still filter.
                            for dtu in &dt[i..di_end] {
                                if let Some(dtrail) = unify_tuple(delta_args, dtu, b) {
                                    for stu in &st[j..sj_end] {
                                        if let Some(strail) = unify_tuple(stored_args, stu, b) {
                                            self.exec_step(
                                                plan,
                                                idx + 1,
                                                b,
                                                outer_epoch,
                                                depth,
                                                emit,
                                            )?;
                                            undo(&strail, b);
                                        }
                                    }
                                    undo(&dtrail, b);
                                }
                            }
                            i = di_end;
                            j = sj_end;
                        }
                    }
                }
                Ok(())
            }
            PlanStep::Unify { lhs, rhs } => match (resolve(lhs, b), resolve(rhs, b)) {
                (Some(l), Some(r)) => {
                    if l == r {
                        self.exec_step(plan, idx + 1, b, outer_epoch, depth, emit)?;
                    }
                    Ok(())
                }
                (Some(l), None) => {
                    let (ok, bound) = unify_term(rhs, &l, b);
                    debug_assert!(ok);
                    self.exec_step(plan, idx + 1, b, outer_epoch, depth, emit)?;
                    if let Some(i) = bound {
                        b[i] = None;
                    }
                    Ok(())
                }
                (None, Some(r)) => {
                    let (ok, bound) = unify_term(lhs, &r, b);
                    debug_assert!(ok);
                    self.exec_step(plan, idx + 1, b, outer_epoch, depth, emit)?;
                    if let Some(i) = bound {
                        b[i] = None;
                    }
                    Ok(())
                }
                (None, None) => Err(ObjectLogError::NotSchedulable {
                    literal: format!("{lhs} = {rhs}"),
                }),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clause::{ClauseBuilder, Term};
    use amos_storage::Polarity;
    use amos_types::{tuple, ArithOp, CmpOp, TypeId};
    use std::sync::Arc;

    fn sig(n: usize) -> Vec<TypeId> {
        vec![TypeId(0); n]
    }

    struct Fixture {
        storage: Storage,
        catalog: Catalog,
        q: PredId,
        r: PredId,
        p: PredId,
    }

    /// p(X,Z) ← q(X,Y) ∧ r(Y,Z): the running example of §4.3.
    fn fixture() -> Fixture {
        let mut storage = Storage::new();
        let rq = storage.create_relation("q", 2).unwrap();
        let rr = storage.create_relation("r", 2).unwrap();
        storage.insert(rq, tuple![1, 1]).unwrap();
        storage.insert(rr, tuple![1, 2]).unwrap();
        storage.insert(rr, tuple![2, 3]).unwrap();

        let mut catalog = Catalog::new();
        let q = catalog.define_stored("q", sig(2), rq, 1).unwrap();
        let r = catalog.define_stored("r", sig(2), rr, 1).unwrap();
        let p = catalog
            .define_derived(
                "p",
                sig(2),
                vec![ClauseBuilder::new(3)
                    .head([Term::var(0), Term::var(2)])
                    .pred(q, [Term::var(0), Term::var(1)])
                    .pred(r, [Term::var(1), Term::var(2)])
                    .build()],
            )
            .unwrap();
        Fixture {
            storage,
            catalog,
            q,
            r,
            p,
        }
    }

    #[test]
    fn derived_evaluation() {
        let f = fixture();
        let deltas = DeltaMap::new();
        let ctx = EvalContext::new(&f.storage, &f.catalog, &deltas);
        let out = ctx.eval_pred(f.p, &[None, None], StateEpoch::New).unwrap();
        assert_eq!(out, [tuple![1, 2]].into_iter().collect());
    }

    #[test]
    fn bound_pattern_filters() {
        let f = fixture();
        let deltas = DeltaMap::new();
        let ctx = EvalContext::new(&f.storage, &f.catalog, &deltas);
        let out = ctx
            .eval_pred(f.p, &[Some(Value::Int(1)), None], StateEpoch::New)
            .unwrap();
        assert_eq!(out.len(), 1);
        let none = ctx
            .eval_pred(f.p, &[Some(Value::Int(9)), None], StateEpoch::New)
            .unwrap();
        assert!(none.is_empty());
    }

    #[test]
    fn old_state_evaluation_of_derived() {
        let mut f = fixture();
        let rq = f.catalog.def(f.q).stored_rel().unwrap();
        f.storage.monitor(rq);
        f.storage.begin().unwrap();
        // Delete q(1,1): p becomes empty in the new state but p_old still
        // derives (1,2).
        f.storage.delete(rq, &tuple![1, 1]).unwrap();
        let deltas = DeltaMap::new();
        let ctx = EvalContext::new(&f.storage, &f.catalog, &deltas);
        assert!(ctx
            .eval_pred(f.p, &[None, None], StateEpoch::New)
            .unwrap()
            .is_empty());
        let old = ctx.eval_pred(f.p, &[None, None], StateEpoch::Old).unwrap();
        assert_eq!(old, [tuple![1, 2]].into_iter().collect());
    }

    #[test]
    fn delta_literal_seeds_differential() {
        let mut f = fixture();
        // Δp/Δ₊q ← Δ₊q(X,Y) ∧ r(Y,Z), emitting (X,Z).
        let diff = ClauseBuilder::new(3)
            .head([Term::var(0), Term::var(2)])
            .delta(f.q, Polarity::Plus, [Term::var(0), Term::var(1)])
            .pred(f.r, [Term::var(1), Term::var(2)])
            .build();
        let dp = f
            .catalog
            .define_derived("dp_dq", sig(2), vec![diff])
            .unwrap();

        let mut deltas = DeltaMap::new();
        let mut d = DeltaSet::new();
        d.apply_insert(tuple![1, 2]); // assert q(1,2)
        deltas.insert(f.q, d);

        let ctx = EvalContext::new(&f.storage, &f.catalog, &deltas);
        let out = ctx.eval_pred(dp, &[None, None], StateEpoch::New).unwrap();
        assert_eq!(out, [tuple![1, 3]].into_iter().collect());
    }

    /// The fused merge-join step computes exactly what the unfused
    /// Δ-scan + probe pair computes — including residual constraints
    /// (a repeated variable on the Δ side) that are outside the join
    /// key — and bumps the `merge_joins` counter.
    #[test]
    fn merge_join_matches_unfused_pair() {
        use crate::plan::{compile_clause_with, PlanStats};
        use amos_storage::RelId;

        struct BulkStats;
        impl PlanStats for BulkStats {
            fn cardinality(&self, _rel: RelId) -> Option<f64> {
                Some(4.0)
            }
            fn ndv(&self, _rel: RelId, _col: usize) -> Option<f64> {
                Some(4.0)
            }
            fn delta_len(&self, _pred: PredId, _polarity: Polarity) -> Option<f64> {
                Some(100_000.0)
            }
        }

        let mut f = fixture();
        // Δp/Δ₊q ← Δ₊q(X,X) ∧ r(X,Z): repeated variable X on the Δ side.
        let diff = ClauseBuilder::new(2)
            .head([Term::var(0), Term::var(1)])
            .delta(f.q, Polarity::Plus, [Term::var(0), Term::var(0)])
            .pred(f.r, [Term::var(0), Term::var(1)])
            .build();

        let fused = compile_clause_with(&f.catalog, &diff, &HashSet::new(), &BulkStats).unwrap();
        assert!(
            matches!(fused.steps[0], PlanStep::MergeJoin { .. }),
            "{:?}",
            fused.steps
        );
        let unfused = compile_clause(&f.catalog, &diff, &HashSet::new()).unwrap();
        assert!(!unfused
            .steps
            .iter()
            .any(|s| matches!(s, PlanStep::MergeJoin { .. })));

        let mut deltas = DeltaMap::new();
        let mut d = DeltaSet::new();
        d.apply_insert(tuple![1, 1]); // matches X=X, joins r(1,2)
        d.apply_insert(tuple![2, 2]); // matches X=X, joins r(2,3)
        d.apply_insert(tuple![1, 2]); // fails the repeated-variable test
        deltas.insert(f.q, d);
        f.storage.insert(RelId(1), tuple![1, 9]).unwrap(); // second block row

        let ctx = EvalContext::new(&f.storage, &f.catalog, &deltas);
        let run = |plan: &Plan| {
            let mut out = HashSet::new();
            ctx.run_plan(
                plan,
                vec![None; plan.n_vars as usize],
                StateEpoch::New,
                0,
                &mut |b, head| {
                    let vals: Vec<Value> = head.iter().map(|t| resolve(t, b).unwrap()).collect();
                    out.insert(Tuple::new(vals));
                    Ok(())
                },
            )
            .unwrap();
            out
        };
        let fused_out = run(&fused);
        let unfused_out = run(&unfused);
        let expected: HashSet<Tuple> = [tuple![1, 2], tuple![1, 9], tuple![2, 3]]
            .into_iter()
            .collect();
        assert_eq!(fused_out, expected);
        assert_eq!(fused_out, unfused_out);
        assert_eq!(ctx.shared.merge_join_count(), 1, "one zipper execution");
    }

    /// When the Δ side outnumbers the stored arrangement past
    /// `LOOKUP_JOIN_FACTOR`, the merge-join step switches to the
    /// asymmetric lookup path (no Δ sort) — which must produce exactly
    /// the zipper's results.
    #[test]
    fn lookup_join_matches_unfused_pair() {
        use crate::plan::{compile_clause_with, PlanStats};
        use amos_storage::RelId;

        struct BulkStats;
        impl PlanStats for BulkStats {
            fn cardinality(&self, _rel: RelId) -> Option<f64> {
                Some(3.0)
            }
            fn ndv(&self, _rel: RelId, _col: usize) -> Option<f64> {
                Some(3.0)
            }
            fn delta_len(&self, _pred: PredId, _polarity: Polarity) -> Option<f64> {
                Some(100_000.0)
            }
        }

        let mut f = fixture();
        // Δp/Δ₊q ← Δ₊q(X,Y) ∧ r(Y,Z), bulk Δ against a 3-row r.
        let diff = ClauseBuilder::new(3)
            .head([Term::var(0), Term::var(2)])
            .delta(f.q, Polarity::Plus, [Term::var(0), Term::var(1)])
            .pred(f.r, [Term::var(1), Term::var(2)])
            .build();
        let fused = compile_clause_with(&f.catalog, &diff, &HashSet::new(), &BulkStats).unwrap();
        assert!(matches!(fused.steps[0], PlanStep::MergeJoin { .. }));
        let unfused = compile_clause(&f.catalog, &diff, &HashSet::new()).unwrap();

        let mut deltas = DeltaMap::new();
        let mut d = DeltaSet::new();
        for i in 0..30i64 {
            d.apply_insert(tuple![i, (i % 3) + 1]); // keys 1, 2, 3
        }
        deltas.insert(f.q, d);
        f.storage.insert(RelId(1), tuple![1, 9]).unwrap();
        // r = {(1,2), (2,3), (1,9)}: arrangement of 3 ≪ Δ of 30, so the
        // lookup path engages (factor 8).

        let ctx = EvalContext::new(&f.storage, &f.catalog, &deltas);
        let run = |plan: &Plan| {
            let mut out = HashSet::new();
            ctx.run_plan(
                plan,
                vec![None; plan.n_vars as usize],
                StateEpoch::New,
                0,
                &mut |b, head| {
                    let vals: Vec<Value> = head.iter().map(|t| resolve(t, b).unwrap()).collect();
                    out.insert(Tuple::new(vals));
                    Ok(())
                },
            )
            .unwrap();
            out
        };
        let fused_out = run(&fused);
        let unfused_out = run(&unfused);
        assert_eq!(fused_out, unfused_out);
        // Key 3 never matches; keys 1 and 2 each match 10 Δ tuples,
        // key 1 twice over (r has two rows under it).
        assert_eq!(fused_out.len(), 30);
        assert_eq!(ctx.shared.merge_join_count(), 1);
    }

    #[test]
    fn missing_delta_is_empty() {
        let mut f = fixture();
        let diff = ClauseBuilder::new(3)
            .head([Term::var(0), Term::var(2)])
            .delta(f.q, Polarity::Plus, [Term::var(0), Term::var(1)])
            .pred(f.r, [Term::var(1), Term::var(2)])
            .build();
        let dp = f.catalog.define_derived("dp", sig(2), vec![diff]).unwrap();
        let deltas = DeltaMap::new();
        let ctx = EvalContext::new(&f.storage, &f.catalog, &deltas);
        assert!(ctx
            .eval_pred(dp, &[None, None], StateEpoch::New)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn negation_and_builtins() {
        let mut f = fixture();
        // s(X) ← q(X,Y) ∧ ¬r(Y, Z2) … negation needs all bound; use
        // s(X) ← q(X,Y) ∧ Y2 = Y + 1 ∧ ¬r(Y, Y2) ∧ Y < 10
        let s = ClauseBuilder::new(3)
            .head([Term::var(0)])
            .pred(f.q, [Term::var(0), Term::var(1)])
            .arith(Term::var(2), Term::var(1), ArithOp::Add, Term::val(1))
            .not_pred(f.r, [Term::var(1), Term::var(2)])
            .cmp(Term::var(1), CmpOp::Lt, Term::val(10))
            .build();
        let s = f.catalog.define_derived("s", sig(1), vec![s]).unwrap();
        let deltas = DeltaMap::new();
        let ctx = EvalContext::new(&f.storage, &f.catalog, &deltas);
        // q(1,1), r(1,2) exists → ¬r(1,2) fails → empty.
        assert!(ctx
            .eval_pred(s, &[None], StateEpoch::New)
            .unwrap()
            .is_empty());

        // Remove r(1,2) → s(1) holds.
        let rr = f.catalog.def(f.r).stored_rel().unwrap();
        let mut storage = f.storage;
        storage.delete(rr, &tuple![1, 2]).unwrap();
        let ctx = EvalContext::new(&storage, &f.catalog, &deltas);
        assert_eq!(
            ctx.eval_pred(s, &[None], StateEpoch::New).unwrap(),
            [tuple![1]].into_iter().collect()
        );
    }

    #[test]
    fn multi_clause_is_union() {
        let mut f = fixture();
        // u(X) ← q(X,_) ;  u(X) ← r(_,X)
        let c1 = ClauseBuilder::new(2)
            .head([Term::var(0)])
            .pred(f.q, [Term::var(0), Term::var(1)])
            .build();
        let c2 = ClauseBuilder::new(2)
            .head([Term::var(0)])
            .pred(f.r, [Term::var(1), Term::var(0)])
            .build();
        let u = f.catalog.define_derived("u", sig(1), vec![c1, c2]).unwrap();
        let deltas = DeltaMap::new();
        let ctx = EvalContext::new(&f.storage, &f.catalog, &deltas);
        let out = ctx.eval_pred(u, &[None], StateEpoch::New).unwrap();
        assert_eq!(out, [tuple![1], tuple![2], tuple![3]].into_iter().collect());
    }

    #[test]
    fn foreign_predicate() {
        let mut f = fixture();
        // double(X, Y): Y = 2*X for bound X.
        let double = f
            .catalog
            .define_foreign(
                "double",
                sig(2),
                Arc::new(|pattern: &[Option<Value>]| match &pattern[0] {
                    Some(Value::Int(x)) => vec![vec![Value::Int(*x), Value::Int(2 * x)]],
                    _ => vec![],
                }),
            )
            .unwrap();
        // t(X, D) ← q(X, Y) ∧ double(Y, D)
        let t = ClauseBuilder::new(3)
            .head([Term::var(0), Term::var(2)])
            .pred(f.q, [Term::var(0), Term::var(1)])
            .pred(double, [Term::var(1), Term::var(2)])
            .build();
        let t = f.catalog.define_derived("t", sig(2), vec![t]).unwrap();
        let deltas = DeltaMap::new();
        let ctx = EvalContext::new(&f.storage, &f.catalog, &deltas);
        let out = ctx.eval_pred(t, &[None, None], StateEpoch::New).unwrap();
        assert_eq!(out, [tuple![1, 2]].into_iter().collect());
    }

    #[test]
    fn constants_in_head_and_args() {
        let mut f = fixture();
        // only1(Y) ← q(1, Y)
        let c = ClauseBuilder::new(1)
            .head([Term::var(0)])
            .pred(f.q, [Term::val(1), Term::var(0)])
            .build();
        let only1 = f.catalog.define_derived("only1", sig(1), vec![c]).unwrap();
        let deltas = DeltaMap::new();
        let ctx = EvalContext::new(&f.storage, &f.catalog, &deltas);
        let out = ctx.eval_pred(only1, &[None], StateEpoch::New).unwrap();
        assert_eq!(out, [tuple![1]].into_iter().collect());
    }

    #[test]
    fn repeated_head_vars_enforce_equality() {
        let mut f = fixture();
        // eq(X) ← q(X, X)
        let c = ClauseBuilder::new(1)
            .head([Term::var(0)])
            .pred(f.q, [Term::var(0), Term::var(0)])
            .build();
        let eq = f.catalog.define_derived("eq", sig(1), vec![c]).unwrap();
        let deltas = DeltaMap::new();
        let ctx = EvalContext::new(&f.storage, &f.catalog, &deltas);
        // q(1,1) matches; nothing else.
        let out = ctx.eval_pred(eq, &[None], StateEpoch::New).unwrap();
        assert_eq!(out, [tuple![1]].into_iter().collect());
    }

    /// The parallel wave-front shares read-only contexts across threads;
    /// regressing this bound breaks `amos-core`'s parallel propagation.
    #[test]
    fn context_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<EvalContext<'static>>();
    }

    /// Wrap `p` so evaluating the wrapper issues a `PlanStep::Call` on a
    /// derived predicate — the memoized path.
    fn wrap(f: &mut Fixture) -> PredId {
        let c = ClauseBuilder::new(2)
            .head([Term::var(0), Term::var(1)])
            .pred(f.p, [Term::var(0), Term::var(1)])
            .build();
        f.catalog.define_derived("w", sig(2), vec![c]).unwrap()
    }

    #[test]
    fn tabling_memoizes_repeated_derived_calls() {
        let mut f = fixture();
        let w = wrap(&mut f);
        let deltas = DeltaMap::new();
        let ctx = EvalContext::new(&f.storage, &f.catalog, &deltas);
        let expected: HashSet<Tuple> = [tuple![1, 2]].into_iter().collect();

        assert_eq!(
            ctx.eval_pred(w, &[None, None], StateEpoch::New).unwrap(),
            expected
        );
        assert_eq!(ctx.shared().tabling_hits(), 0);
        assert_eq!(ctx.shared().tabling_misses(), 1);

        // Same call pattern again: served from the memo table.
        assert_eq!(
            ctx.eval_pred(w, &[None, None], StateEpoch::New).unwrap(),
            expected
        );
        assert_eq!(ctx.shared().tabling_hits(), 1);
        assert_eq!(ctx.shared().tabling_misses(), 1);

        // A different binding pattern is a different memo key.
        ctx.eval_pred(w, &[Some(Value::Int(1)), None], StateEpoch::New)
            .unwrap();
        assert_eq!(ctx.shared().tabling_misses(), 2);
    }

    #[test]
    fn tabling_disabled_keeps_counters_zero() {
        let mut f = fixture();
        let w = wrap(&mut f);
        let deltas = DeltaMap::new();
        let shared = Arc::new(EvalShared::new(EvalConfig {
            tabling: false,
            ..EvalConfig::default()
        }));
        let ctx = EvalContext::with_shared(&f.storage, &f.catalog, &deltas, shared);
        let expected: HashSet<Tuple> = [tuple![1, 2]].into_iter().collect();
        for _ in 0..2 {
            assert_eq!(
                ctx.eval_pred(w, &[None, None], StateEpoch::New).unwrap(),
                expected
            );
        }
        assert_eq!(ctx.shared().tabling_hits(), 0);
        assert_eq!(ctx.shared().tabling_misses(), 0);
    }

    #[test]
    fn reset_pass_clears_memo_between_passes() {
        let mut f = fixture();
        let w = wrap(&mut f);
        let deltas = DeltaMap::new();
        let shared = Arc::new(EvalShared::default());
        {
            let ctx =
                EvalContext::with_shared(&f.storage, &f.catalog, &deltas, Arc::clone(&shared));
            let out = ctx.eval_pred(w, &[None, None], StateEpoch::New).unwrap();
            assert_eq!(out.len(), 1);
        }
        // Storage changes between passes; the memo entry is now stale.
        let rq = f.catalog.def(f.q).stored_rel().unwrap();
        f.storage.insert(rq, tuple![5, 2]).unwrap();
        shared.reset_pass();
        let ctx = EvalContext::with_shared(&f.storage, &f.catalog, &deltas, Arc::clone(&shared));
        let out = ctx.eval_pred(w, &[None, None], StateEpoch::New).unwrap();
        assert_eq!(out, [tuple![1, 2], tuple![5, 3]].into_iter().collect());
        // It recomputed (a miss), rather than serving the stale entry.
        assert_eq!(shared.tabling_hits(), 0);
        assert_eq!(shared.tabling_misses(), 2);
    }

    /// Regression: a big-transaction old-state index built in one
    /// transaction's check phase must not leak into the next
    /// transaction, where the logical old state is different.
    #[test]
    fn reset_pass_evicts_stale_old_state_index() {
        let mut storage = Storage::new();
        let rs = storage.create_relation("s", 2).unwrap();
        let mut catalog = Catalog::new();
        let s = catalog.define_stored("s", sig(2), rs, 1).unwrap();
        for i in 0..40 {
            storage.insert(rs, tuple![i, 0]).unwrap();
        }
        storage.monitor(rs);

        // Transaction 1: delete everything (|Δ| = 40 > 32 forces the
        // hash-indexed old-state path for partially-bound probes).
        storage.begin().unwrap();
        for i in 0..40 {
            storage.delete(rs, &tuple![i, 0]).unwrap();
        }
        let deltas = DeltaMap::new();
        let shared = Arc::new(EvalShared::default());
        {
            let ctx = EvalContext::with_shared(&storage, &catalog, &deltas, Arc::clone(&shared));
            let old = ctx
                .eval_pred(s, &[None, Some(Value::Int(0))], StateEpoch::Old)
                .unwrap();
            assert_eq!(old.len(), 40);
        }
        storage.commit().unwrap();

        // Transaction 2: the old state is now empty. Without the pass
        // reset the cached index would still answer with 40 tuples.
        storage.begin().unwrap();
        storage.insert(rs, tuple![99, 0]).unwrap();
        for i in 0..40 {
            storage.insert(rs, tuple![100 + i, 1]).unwrap();
        }
        shared.reset_pass();
        let ctx = EvalContext::with_shared(&storage, &catalog, &deltas, Arc::clone(&shared));
        let old = ctx
            .eval_pred(s, &[None, Some(Value::Int(0))], StateEpoch::Old)
            .unwrap();
        assert!(old.is_empty(), "stale old-state index leaked across passes");
    }

    #[test]
    fn holds_shortcuts_stored_lookup() {
        let f = fixture();
        let deltas = DeltaMap::new();
        let ctx = EvalContext::new(&f.storage, &f.catalog, &deltas);
        assert!(ctx
            .holds(
                f.q,
                &[Some(Value::Int(1)), Some(Value::Int(1))],
                StateEpoch::New
            )
            .unwrap());
        assert!(!ctx
            .holds(
                f.q,
                &[Some(Value::Int(1)), Some(Value::Int(7))],
                StateEpoch::New
            )
            .unwrap());
    }
}

#[cfg(test)]
mod recursion_tests {
    use super::*;
    use crate::catalog::Catalog;
    use crate::clause::{ClauseBuilder, Term};
    use amos_types::{tuple, TypeId};

    fn sig(n: usize) -> Vec<TypeId> {
        vec![TypeId(0); n]
    }

    /// reach(X,Y) ← edge(X,Y) ; reach(X,Y) ← reach(X,Z) ∧ edge(Z,Y)
    fn reach_world(edges: &[(i64, i64)]) -> (Storage, Catalog, PredId) {
        let mut storage = Storage::new();
        let re = storage.create_relation("edge", 2).unwrap();
        let mut catalog = Catalog::new();
        let edge = catalog.define_stored("edge", sig(2), re, 1).unwrap();
        let reach = catalog.define_derived("reach", sig(2), vec![]).unwrap();
        catalog
            .replace_clauses(
                reach,
                vec![
                    ClauseBuilder::new(2)
                        .head([Term::var(0), Term::var(1)])
                        .pred(edge, [Term::var(0), Term::var(1)])
                        .build(),
                    ClauseBuilder::new(3)
                        .head([Term::var(0), Term::var(2)])
                        .pred(reach, [Term::var(0), Term::var(1)])
                        .pred(edge, [Term::var(1), Term::var(2)])
                        .build(),
                ],
            )
            .unwrap();
        for &(a, b) in edges {
            storage.insert(re, tuple![a, b]).unwrap();
        }
        (storage, catalog, reach)
    }

    #[test]
    fn transitive_closure_fixpoint() {
        let (storage, catalog, reach) = reach_world(&[(1, 2), (2, 3), (3, 4), (10, 11)]);
        let deltas = DeltaMap::new();
        let ctx = EvalContext::new(&storage, &catalog, &deltas);
        let out = ctx
            .eval_pred(reach, &[None, None], StateEpoch::New)
            .unwrap();
        let expected: HashSet<Tuple> = [
            tuple![1, 2],
            tuple![1, 3],
            tuple![1, 4],
            tuple![2, 3],
            tuple![2, 4],
            tuple![3, 4],
            tuple![10, 11],
        ]
        .into_iter()
        .collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn cyclic_graph_terminates() {
        let (storage, catalog, reach) = reach_world(&[(1, 2), (2, 3), (3, 1)]);
        let deltas = DeltaMap::new();
        let ctx = EvalContext::new(&storage, &catalog, &deltas);
        let out = ctx
            .eval_pred(reach, &[None, None], StateEpoch::New)
            .unwrap();
        // Every pair in the 3-cycle reaches every node (incl. itself).
        assert_eq!(out.len(), 9);
        assert!(out.contains(&tuple![1, 1]));
    }

    #[test]
    fn bound_pattern_filters_fixpoint() {
        let (storage, catalog, reach) = reach_world(&[(1, 2), (2, 3), (5, 6)]);
        let deltas = DeltaMap::new();
        let ctx = EvalContext::new(&storage, &catalog, &deltas);
        let from1 = ctx
            .eval_pred(reach, &[Some(Value::Int(1)), None], StateEpoch::New)
            .unwrap();
        assert_eq!(from1, [tuple![1, 2], tuple![1, 3]].into_iter().collect());
        assert!(ctx
            .holds(
                reach,
                &[Some(Value::Int(1)), Some(Value::Int(3))],
                StateEpoch::New
            )
            .unwrap());
    }

    #[test]
    fn old_state_fixpoint_via_rollback() {
        let (mut storage, catalog, reach) = reach_world(&[(1, 2)]);
        let re = catalog
            .def(catalog.lookup("edge").unwrap())
            .stored_rel()
            .unwrap();
        storage.monitor(re);
        storage.begin().unwrap();
        storage.insert(re, tuple![2, 3]).unwrap();
        let deltas = DeltaMap::new();
        let ctx = EvalContext::new(&storage, &catalog, &deltas);
        let new = ctx
            .eval_pred(reach, &[None, None], StateEpoch::New)
            .unwrap();
        assert!(new.contains(&tuple![1, 3]));
        let old = ctx
            .eval_pred(reach, &[None, None], StateEpoch::Old)
            .unwrap();
        assert_eq!(old, [tuple![1, 2]].into_iter().collect());
    }

    #[test]
    fn empty_graph_empty_fixpoint() {
        let (storage, catalog, reach) = reach_world(&[]);
        let deltas = DeltaMap::new();
        let ctx = EvalContext::new(&storage, &catalog, &deltas);
        assert!(ctx
            .eval_pred(reach, &[None, None], StateEpoch::New)
            .unwrap()
            .is_empty());
    }
}
