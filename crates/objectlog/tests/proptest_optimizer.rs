//! Optimizer soundness: whatever order the greedy planner picks, plan
//! execution must produce exactly the tuples a brute-force reference
//! evaluation produces.
//!
//! The reference enumerates all assignments of clause variables over the
//! active value domain and checks every literal — no plans, no indexes,
//! no ordering decisions to get wrong.

use std::collections::HashSet;

use amos_objectlog::catalog::Catalog;
use amos_objectlog::clause::{Clause, ClauseBuilder, Literal, Term, Var};
use amos_objectlog::eval::{DeltaMap, EvalContext};
use amos_storage::{StateEpoch, Storage};
use amos_types::{tuple, CmpOp, Tuple, TypeId, Value};
use proptest::prelude::*;

fn sig(n: usize) -> Vec<TypeId> {
    vec![TypeId(0); n]
}

const DOMAIN: i64 = 4;

/// Brute-force: enumerate all bindings over the domain.
fn reference_eval(
    clause: &Clause,
    q_rows: &HashSet<Tuple>,
    r_rows: &HashSet<Tuple>,
) -> HashSet<Tuple> {
    let n = clause.n_vars as usize;
    let mut out = HashSet::new();
    let mut assignment = vec![0i64; n];
    loop {
        let value = |t: &Term| -> Value {
            match t {
                Term::Const(v) => v.clone(),
                Term::Var(Var(i)) => Value::Int(assignment[*i as usize]),
            }
        };
        let holds = clause.body.iter().all(|lit| match lit {
            Literal::Pred {
                pred,
                args,
                negated,
                ..
            } => {
                let t: Tuple = args.iter().map(value).collect();
                let present = if pred.0 == 0 {
                    q_rows.contains(&t)
                } else {
                    r_rows.contains(&t)
                };
                present != *negated
            }
            Literal::Cmp { op, lhs, rhs } => op.apply(&value(lhs), &value(rhs)).unwrap_or(false),
            Literal::Arith {
                op,
                result,
                lhs,
                rhs,
            } => match op.apply(&value(lhs), &value(rhs)) {
                Ok(v) => v == value(result),
                Err(_) => false,
            },
            Literal::Unify { lhs, rhs } => value(lhs) == value(rhs),
            Literal::Delta { .. } => unreachable!("no deltas in this test"),
        });
        if holds {
            out.insert(clause.head.iter().map(value).collect());
        }
        // Next assignment (odometer).
        let mut i = 0;
        loop {
            if i == n {
                return out;
            }
            assignment[i] += 1;
            if assignment[i] < DOMAIN {
                break;
            }
            assignment[i] = 0;
            i += 1;
        }
    }
}

fn rows() -> impl Strategy<Value = Vec<(i64, i64)>> {
    prop::collection::vec((0..DOMAIN, 0..DOMAIN), 0..8)
}

/// Random conjunctive bodies over q/2 (pred 0) and r/2 (pred 1) with
/// shared variables, comparisons, and optional negation.
#[derive(Debug, Clone)]
struct Shape {
    literals: Vec<(bool, u32, u32, bool)>, // (on_q, var_a, var_b, negated)
    cmp: Option<(u32, CmpOp, u32)>,
    head: Vec<u32>,
    n_vars: u32,
}

fn shapes() -> impl Strategy<Value = Shape> {
    let n_vars = 3u32;
    (
        prop::collection::vec(
            (
                any::<bool>(),
                0..n_vars,
                0..n_vars,
                prop::bool::weighted(0.25),
            ),
            1..4,
        ),
        prop::option::of((
            0..n_vars,
            prop_oneof![
                Just(CmpOp::Lt),
                Just(CmpOp::Le),
                Just(CmpOp::Eq),
                Just(CmpOp::Ne)
            ],
            0..n_vars,
        )),
        prop::collection::vec(0..n_vars, 1..3),
    )
        .prop_map(move |(literals, cmp, head)| Shape {
            literals,
            cmp,
            head,
            n_vars,
        })
}

fn build_clause(
    shape: &Shape,
    q: amos_objectlog::catalog::PredId,
    r: amos_objectlog::catalog::PredId,
) -> Option<Clause> {
    let mut b = ClauseBuilder::new(shape.n_vars).head(shape.head.iter().map(|&v| Term::var(v)));
    for &(on_q, a, bb, negated) in &shape.literals {
        let pred = if on_q { q } else { r };
        let args = [Term::var(a), Term::var(bb)];
        b = if negated {
            b.not_pred(pred, args)
        } else {
            b.pred(pred, args)
        };
    }
    if let Some((a, op, c)) = shape.cmp {
        b = b.cmp(Term::var(a), op, Term::var(c));
    }
    let clause = b.build();
    // Skip unsafe shapes (e.g. all literals negated).
    if clause.unsafe_var().is_some() {
        return None;
    }
    // Negated literals with variables bound by nothing are rejected
    // above; also skip bodies where the planner can't start (pure
    // negation + cmp).
    Some(clause)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn plan_execution_matches_reference(
        shape in shapes(),
        q_rows in rows(),
        r_rows in rows(),
    ) {
        let mut storage = Storage::new();
        let rq = storage.create_relation("q", 2).unwrap();
        let rr = storage.create_relation("r", 2).unwrap();
        let mut catalog = Catalog::new();
        let q = catalog.define_stored("q", sig(2), rq, 1).unwrap();
        let r = catalog.define_stored("r", sig(2), rr, 1).unwrap();
        prop_assume!(q.0 == 0 && r.0 == 1);

        let Some(clause) = build_clause(&shape, q, r) else {
            return Ok(());
        };

        let q_set: HashSet<Tuple> = q_rows.iter().map(|&(a, b)| tuple![a, b]).collect();
        let r_set: HashSet<Tuple> = r_rows.iter().map(|&(a, b)| tuple![a, b]).collect();
        for t in &q_set {
            storage.insert(rq, t.clone()).unwrap();
        }
        for t in &r_set {
            storage.insert(rr, t.clone()).unwrap();
        }

        let pred = catalog
            .define_derived("p", sig(clause.head.len()), vec![clause.clone()])
            .unwrap();
        let deltas = DeltaMap::new();
        let ctx = EvalContext::new(&storage, &catalog, &deltas);
        let pattern = vec![None; clause.head.len()];
        let via_plan = ctx.eval_pred(pred, &pattern, StateEpoch::New).unwrap();

        let reference = reference_eval(&clause, &q_set, &r_set);
        prop_assert_eq!(via_plan, reference, "clause: {:?}", clause);
    }

    /// Bound patterns agree with post-filtered unbound evaluation.
    #[test]
    fn bound_pattern_equals_filtered(
        shape in shapes(),
        q_rows in rows(),
        r_rows in rows(),
        key in 0..DOMAIN,
    ) {
        let mut storage = Storage::new();
        let rq = storage.create_relation("q", 2).unwrap();
        let rr = storage.create_relation("r", 2).unwrap();
        let mut catalog = Catalog::new();
        let q = catalog.define_stored("q", sig(2), rq, 1).unwrap();
        let r = catalog.define_stored("r", sig(2), rr, 1).unwrap();
        let Some(clause) = build_clause(&shape, q, r) else {
            return Ok(());
        };
        for &(a, b) in &q_rows {
            storage.insert(rq, tuple![a, b]).unwrap();
        }
        for &(a, b) in &r_rows {
            storage.insert(rr, tuple![a, b]).unwrap();
        }
        let arity = clause.head.len();
        let pred = catalog
            .define_derived("p", sig(arity), vec![clause])
            .unwrap();
        let deltas = DeltaMap::new();
        let ctx = EvalContext::new(&storage, &catalog, &deltas);

        let all = ctx.eval_pred(pred, &vec![None; arity], StateEpoch::New).unwrap();
        let mut bound_pattern = vec![None; arity];
        bound_pattern[0] = Some(Value::Int(key));
        let bound = ctx.eval_pred(pred, &bound_pattern, StateEpoch::New).unwrap();
        let filtered: HashSet<Tuple> = all
            .into_iter()
            .filter(|t| t[0] == Value::Int(key))
            .collect();
        prop_assert_eq!(bound, filtered);
    }
}
