//! Property tests: the sorted-run (LSM-lite) representation is
//! observationally identical to plain hash storage.
//!
//! A [`BaseRelation`] with an aggressive seal threshold spills its head
//! into immutable runs every few inserts and compacts constantly; one
//! with `usize::MAX` never seals and behaves as a pure hash set. Under
//! random insert/delete/seal/index interleavings every observable —
//! mutation return values (set semantics), scan contents, cardinality,
//! membership, statistics, index probes, arrangements, and checkpoint
//! snapshots — must agree between the two.

use amos_storage::BaseRelation;
use amos_types::{tuple, Tuple, Value};
use proptest::prelude::*;

/// A small domain keeps re-inserts, re-deletes, tombstone hits, and
/// resurrections frequent.
fn small_tuple() -> impl Strategy<Value = Tuple> {
    (0i64..6, 0i64..6).prop_map(|(a, b)| tuple![a, b])
}

/// One step of a storage interleaving.
#[derive(Debug, Clone)]
enum Op {
    Insert(Tuple),
    Delete(Tuple),
    /// Force the head into a run (and trigger compaction) mid-sequence.
    Seal,
    /// Create the `[0]` hash index mid-sequence (backfill + lazy
    /// maintenance from this point on).
    EnsureIndex,
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            small_tuple().prop_map(Op::Insert),
            small_tuple().prop_map(Op::Insert),
            small_tuple().prop_map(Op::Insert),
            small_tuple().prop_map(Op::Delete),
            small_tuple().prop_map(Op::Delete),
            Just(Op::Seal),
            Just(Op::EnsureIndex),
        ],
        0..60,
    )
}

proptest! {
    /// Run-resident and hash-resident relations are indistinguishable.
    #[test]
    fn sorted_runs_equal_hash_storage(threshold in 1usize..5, ops in ops()) {
        let mut lsm = BaseRelation::new("r", 2);
        lsm.set_seal_threshold(threshold);
        let mut reference = BaseRelation::new("r", 2);
        reference.set_seal_threshold(usize::MAX);

        for op in &ops {
            match op {
                Op::Insert(t) => prop_assert_eq!(
                    lsm.insert(t.clone()),
                    reference.insert(t.clone()),
                    "insert outcome diverged on {}", t
                ),
                Op::Delete(t) => prop_assert_eq!(
                    lsm.delete(t),
                    reference.delete(t),
                    "delete outcome diverged on {}", t
                ),
                Op::Seal => lsm.seal(), // physical-layout-only op
                Op::EnsureIndex => {
                    lsm.ensure_index(&[0]);
                    reference.ensure_index(&[0]);
                }
            }
        }

        // Identical logical contents and cardinality.
        let mut a: Vec<Tuple> = lsm.scan().cloned().collect();
        let mut b: Vec<Tuple> = reference.scan().cloned().collect();
        a.sort();
        b.sort();
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(lsm.len(), reference.len());

        // Membership, statistics, and probes over the whole domain —
        // probes answer via the index when one was created, via the
        // fallback scan otherwise; both must match the reference.
        for x in 0i64..6 {
            for y in 0i64..6 {
                let t = tuple![x, y];
                prop_assert_eq!(lsm.contains(&t), reference.contains(&t));
            }
        }
        for c in 0..2 {
            prop_assert_eq!(lsm.ndv(c), reference.ndv(c), "ndv({}) diverged", c);
        }
        for k in 0i64..6 {
            let key = [Value::Int(k)];
            let mut pa = lsm.probe(&[0], &key);
            let mut pb = reference.probe(&[0], &key);
            pa.sort();
            pb.sort();
            prop_assert_eq!(pa, pb, "probe [0]={} diverged", k);
        }

        // The merge-join arrangement covers exactly the logical content.
        let arr = lsm.arrangement(&[1]);
        prop_assert_eq!(arr.len(), lsm.len());

        // Checkpoint round-trip: serializing the runs and adopting them
        // back reproduces the same relation without rehydration.
        let revived = BaseRelation::from_runs("r", 2, lsm.snapshot_runs());
        let mut c: Vec<Tuple> = revived.scan().cloned().collect();
        c.sort();
        prop_assert_eq!(&c, &a);
        prop_assert_eq!(revived.len(), lsm.len());
        prop_assert_eq!(revived.ndv(0), lsm.ndv(0));
        prop_assert_eq!(revived.ndv(1), lsm.ndv(1));
    }
}
