//! Crash-recovery tests for the WAL (storage level).
//!
//! The invariants pinned down here:
//!
//! * **Prefix durability** — whatever byte prefix of the WAL survives a
//!   crash, recovery rebuilds exactly the state as of the last batch
//!   whose frame is complete (CRC-valid); the torn tail is discarded.
//! * **Atomic commit** — a transaction's records are replayed all or
//!   not at all, never partially.
//! * **Open transactions are not durable** — a crash before commit
//!   loses the in-flight updates, by design.
//! * **Checkpointing** — a snapshot + truncated WAL recovers to the
//!   same state as replaying the full log.
//! * **Adoption** — re-running the schema script after recovery adopts
//!   the recovered relations instead of failing.

use std::collections::BTreeSet;
use std::path::PathBuf;

use amos_storage::{read_wal_bytes, Storage, StorageError, WalConfig, WAL_FILE};
use amos_types::{tuple, Oid, Tuple, Value};

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("amos-walrec-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// All tuples of a relation, by name (order-free comparison).
fn state_of(db: &Storage, name: &str) -> BTreeSet<Tuple> {
    match db.relation_id(name) {
        Ok(id) => db.relation(id).scan().cloned().collect(),
        Err(_) => BTreeSet::new(),
    }
}

fn full_state(db: &Storage) -> (BTreeSet<Tuple>, BTreeSet<Tuple>) {
    (state_of(db, "q"), state_of(db, "s"))
}

/// Run the reference workload against a WAL at `dir`. Returns the state
/// after each durable batch (index 0 = empty initial state, index i =
/// state once WAL seq i is applied) and the final committed state.
fn run_workload(dir: &PathBuf) -> Vec<(BTreeSet<Tuple>, BTreeSet<Tuple>)> {
    let mut db = Storage::new();
    let q = db.create_relation("q", 2).unwrap();
    let s = db.create_relation("s", 1).unwrap();
    db.monitor(q);
    db.attach_wal(dir, WalConfig::default()).unwrap();

    let mut states = vec![full_state(&db)];

    // Batch 1: plain inserts plus an oid-carrying tuple.
    db.begin().unwrap();
    db.insert(q, tuple![1, 10]).unwrap();
    db.insert(q, tuple![2, 20]).unwrap();
    let o = db.fresh_oid();
    db.insert(s, Tuple::new(vec![Value::Oid(o)])).unwrap();
    db.commit().unwrap();
    states.push(full_state(&db));

    // Batch 2: delete + overwrite + new key.
    db.begin().unwrap();
    db.delete(q, &tuple![1, 10]).unwrap();
    db.insert(q, tuple![1, 11]).unwrap();
    db.insert(q, tuple![3, 30]).unwrap();
    db.commit().unwrap();
    states.push(full_state(&db));

    // Batch 3: physically inserted and deleted again inside one
    // transaction — both events are logged; replay must cancel them.
    db.begin().unwrap();
    db.insert(q, tuple![4, 40]).unwrap();
    db.delete(q, &tuple![4, 40]).unwrap();
    db.insert(q, tuple![6, 60]).unwrap();
    db.commit().unwrap();
    states.push(full_state(&db));

    // Batch 4: an autocommitted update (its own single-record batch).
    db.insert(q, tuple![5, 50]).unwrap();
    states.push(full_state(&db));

    // A transaction left open at "crash" time: must NOT be durable.
    db.begin().unwrap();
    db.insert(q, tuple![9, 99]).unwrap();
    // Dropped without commit.
    states
}

fn recover(dir: &PathBuf) -> (Storage, amos_storage::RecoveryInfo) {
    let mut db = Storage::new();
    let info = db.attach_wal(dir, WalConfig::default()).unwrap();
    (db, info)
}

#[test]
fn recovery_rebuilds_last_committed_state() {
    let dir = tmpdir("rebuild");
    let states = run_workload(&dir);
    let committed = states.last().unwrap().clone();

    let (db, info) = recover(&dir);
    assert_eq!(full_state(&db), committed);
    assert_eq!(info.batches_replayed, 4);
    assert_eq!(info.last_seq, 4);
    assert!(!info.snapshot_loaded);
    // The open transaction's insert is gone.
    assert!(!state_of(&db, "q").contains(&tuple![9, 99]));
}

#[test]
fn crash_at_every_wal_offset_recovers_a_committed_prefix() {
    let dir = tmpdir("sweep");
    let states = run_workload(&dir);
    let bytes = std::fs::read(dir.join(WAL_FILE)).unwrap();

    let crash_dir = tmpdir("sweep-crash");
    for cut in 0..=bytes.len() {
        std::fs::write(crash_dir.join(WAL_FILE), &bytes[..cut]).unwrap();
        let _ = std::fs::remove_file(crash_dir.join(amos_storage::SNAPSHOT_FILE));

        // The oracle: whichever batches have a complete frame within
        // the surviving prefix define the expected state.
        let surviving = read_wal_bytes(&bytes[..cut]).unwrap();
        let expect = &states[surviving.last_seq() as usize];

        let (db, info) = recover(&crash_dir);
        assert_eq!(
            &full_state(&db),
            expect,
            "cut at byte {cut}: recovered state must match the committed prefix"
        );
        assert_eq!(info.last_seq, surviving.last_seq(), "cut at byte {cut}");
    }
}

#[test]
fn recovery_after_reopen_continues_the_log() {
    let dir = tmpdir("continue");
    run_workload(&dir);

    // First recovery; commit one more transaction on top.
    let (mut db, _) = recover(&dir);
    let q = db.relation_id("q").unwrap();
    db.begin().unwrap();
    db.insert(q, tuple![7, 70]).unwrap();
    db.commit().unwrap();
    let state = full_state(&db);
    drop(db);

    // Second recovery sees both the original batches and the new one.
    let (db2, info) = recover(&dir);
    assert_eq!(full_state(&db2), state);
    assert_eq!(info.last_seq, 5);
}

#[test]
fn checkpoint_truncates_wal_and_recovers_identically() {
    let dir = tmpdir("checkpoint");
    let states = run_workload(&dir);
    let committed = states.last().unwrap().clone();

    let (mut db, _) = recover(&dir);
    db.checkpoint().unwrap();
    // The WAL now holds only the magic; the snapshot carries the state.
    let wal_len = std::fs::metadata(dir.join(WAL_FILE)).unwrap().len();
    assert_eq!(wal_len, 8, "WAL truncated to its magic after checkpoint");

    // New commits land in the (short) WAL after the snapshot.
    let q = db.relation_id("q").unwrap();
    db.begin().unwrap();
    db.insert(q, tuple![8, 80]).unwrap();
    db.commit().unwrap();
    let mut expect = committed;
    expect.0.insert(tuple![8, 80]);
    drop(db);

    let (db2, info) = recover(&dir);
    assert!(info.snapshot_loaded);
    assert_eq!(info.snapshot_seq, 4);
    assert_eq!(info.batches_replayed, 1, "only the post-checkpoint batch");
    assert_eq!(full_state(&db2), expect);
}

/// Regression: a writer opened over a checkpoint-truncated (empty) WAL
/// derived its sequence from the empty log alone and restarted at 1;
/// replay then skipped its batches as `<= snapshot_seq`, silently
/// dropping every commit of the post-checkpoint session at the *next*
/// recovery.
#[test]
fn commits_after_checkpoint_restart_survive_the_next_recovery() {
    let dir = tmpdir("ckpt-restart");
    // Session 1: commit, then checkpoint (snapshot at seq 1, WAL empty).
    {
        let mut db = Storage::new();
        let q = db.create_relation("q", 2).unwrap();
        db.attach_wal(&dir, WalConfig::default()).unwrap();
        db.begin().unwrap();
        db.insert(q, tuple![1, 10]).unwrap();
        db.commit().unwrap();
        db.checkpoint().unwrap();
    }
    // Session 2: recover from snapshot + empty WAL, then make a durable
    // autocommitted insert. Its batch must be numbered past the
    // snapshot, not restart at 1.
    {
        let (mut db, info) = recover(&dir);
        assert!(info.snapshot_loaded);
        assert_eq!(info.snapshot_seq, 1);
        let q = db.relation_id("q").unwrap();
        db.insert(q, tuple![2, 20]).unwrap();
    }
    // Session 3: the post-restart insert is still there.
    let (db, info) = recover(&dir);
    assert_eq!(info.batches_replayed, 1, "the post-restart commit replays");
    assert_eq!(
        state_of(&db, "q"),
        BTreeSet::from([tuple![1, 10], tuple![2, 20]])
    );
}

#[test]
fn recovered_relations_are_adopted_by_create() {
    let dir = tmpdir("adopt");
    run_workload(&dir);

    let (mut db, _) = recover(&dir);
    // Re-running the schema script adopts the recovered relation.
    let q = db.create_relation("q", 2).unwrap();
    assert!(db.relation(q).contains(&tuple![5, 50]));
    // Adoption is once; a second create is a genuine duplicate.
    assert!(matches!(
        db.create_relation("q", 2),
        Err(StorageError::DuplicateRelation(_))
    ));
    // An arity mismatch against recovered data is rejected.
    assert!(matches!(
        db.create_relation("s", 3),
        Err(StorageError::ArityMismatch { .. })
    ));
}

#[test]
fn oid_allocation_resumes_past_recovered_oids() {
    let dir = tmpdir("oids");
    run_workload(&dir);

    let (mut db, _) = recover(&dir);
    let recovered: Vec<Oid> = state_of(&db, "s")
        .iter()
        .filter_map(|t| match &t[0] {
            Value::Oid(o) => Some(*o),
            _ => None,
        })
        .collect();
    assert!(!recovered.is_empty());
    let fresh = db.fresh_oid();
    assert!(
        recovered.iter().all(|o| fresh > *o),
        "fresh oid {fresh:?} must not collide with recovered {recovered:?}"
    );
}

#[test]
fn group_commit_batches_survive_flush() {
    let dir = tmpdir("group");
    {
        let mut db = Storage::new();
        let q = db.create_relation("q", 2).unwrap();
        db.attach_wal(&dir, WalConfig::grouped(3)).unwrap();
        for i in 0..5 {
            db.begin().unwrap();
            db.insert(q, tuple![i, i * 10]).unwrap();
            db.commit().unwrap();
        }
        // Two batches are still buffered; Drop flushes them.
    }
    let (db, info) = recover(&dir);
    assert_eq!(info.batches_replayed, 5);
    assert_eq!(state_of(&db, "q").len(), 5);
}
