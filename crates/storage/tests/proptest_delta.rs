//! Property tests for the Δ-set calculus of §4.1.
//!
//! The central invariants, quoted from the paper:
//!
//! * `Δ₊B = B − B_old` and `Δ₋B = B_old − B` — the accumulated Δ-set is
//!   exactly the *net* change of the transaction, whatever physical event
//!   sequence produced it.
//! * `B_old = (B ∪ Δ₋B) − Δ₊B` — logical rollback reconstructs the old
//!   state.
//! * Δ-sets stay disjoint (`Δ₊ ∩ Δ₋ = ∅`).
//! * `∪Δ` accumulation by folding equals the paper's set formula.

use amos_types::FxHashSet as HashSet;

use amos_storage::{BaseRelation, DeltaSet, OldStateView, Storage};
use amos_types::{tuple, Tuple, Value};
use proptest::prelude::*;

/// A small domain keeps collisions (and hence cancellations) frequent.
fn small_tuple() -> impl Strategy<Value = Tuple> {
    (0i64..6, 0i64..6).prop_map(|(a, b)| tuple![a, b])
}

/// A physical event: insert (true) or delete (false) of a tuple.
fn events() -> impl Strategy<Value = Vec<(bool, Tuple)>> {
    prop::collection::vec((any::<bool>(), small_tuple()), 0..40)
}

fn initial_tuples() -> impl Strategy<Value = Vec<Tuple>> {
    prop::collection::vec(small_tuple(), 0..12)
}

proptest! {
    /// Replaying arbitrary physical events through a monitored relation
    /// leaves a Δ-set equal to the set difference of final vs initial
    /// state, and the old-state view reconstructs the initial state.
    #[test]
    fn net_delta_equals_state_difference(init in initial_tuples(), evs in events()) {
        let mut db = Storage::new();
        let r = db.create_relation("r", 2).unwrap();
        for t in &init {
            db.insert(r, t.clone()).unwrap();
        }
        let before: HashSet<Tuple> = db.relation(r).scan().cloned().collect();

        db.monitor(r);
        db.begin().unwrap();
        for (is_insert, t) in &evs {
            if *is_insert {
                db.insert(r, t.clone()).unwrap();
            } else {
                db.delete(r, t).unwrap();
            }
        }
        let after: HashSet<Tuple> = db.relation(r).scan().cloned().collect();
        let empty = DeltaSet::new();
        let delta = db.delta(r).unwrap_or(&empty);

        // Δ₊B = B − B_old, Δ₋B = B_old − B
        let expected_plus: HashSet<Tuple> = after.difference(&before).cloned().collect();
        let expected_minus: HashSet<Tuple> = before.difference(&after).cloned().collect();
        prop_assert_eq!(delta.plus(), &expected_plus);
        prop_assert_eq!(delta.minus(), &expected_minus);
        prop_assert!(delta.invariant_holds());

        // B_old = (B ∪ Δ₋B) − Δ₊B
        let view = db.old_view(r);
        let reconstructed: HashSet<Tuple> = view.scan().cloned().collect();
        prop_assert_eq!(&reconstructed, &before);
        prop_assert_eq!(view.len(), before.len());
        for t in &before {
            prop_assert!(view.contains(t));
        }
        for t in expected_plus.iter() {
            prop_assert!(!view.contains(t));
        }
    }

    /// Rollback restores exactly the pre-transaction state.
    #[test]
    fn rollback_restores(init in initial_tuples(), evs in events()) {
        let mut db = Storage::new();
        let r = db.create_relation("r", 2).unwrap();
        for t in &init {
            db.insert(r, t.clone()).unwrap();
        }
        let before: HashSet<Tuple> = db.relation(r).scan().cloned().collect();
        db.begin().unwrap();
        for (is_insert, t) in &evs {
            if *is_insert {
                db.insert(r, t.clone()).unwrap();
            } else {
                db.delete(r, t).unwrap();
            }
        }
        db.rollback().unwrap();
        let after: HashSet<Tuple> = db.relation(r).scan().cloned().collect();
        prop_assert_eq!(before, after);
    }

    /// Folding a Δ-set into another with `delta_union_assign` equals the
    /// paper's `∪Δ` set formula, and preserves disjointness.
    #[test]
    fn delta_union_fold_equals_formula(evs1 in events(), evs2 in events()) {
        let mut d1 = DeltaSet::new();
        for (ins, t) in &evs1 {
            if *ins { d1.apply_insert(t.clone()); } else { d1.apply_delete(t.clone()); }
        }
        let mut d2 = DeltaSet::new();
        for (ins, t) in &evs2 {
            if *ins { d2.apply_insert(t.clone()); } else { d2.apply_delete(t.clone()); }
        }
        prop_assert!(d1.invariant_holds());
        prop_assert!(d2.invariant_holds());

        let by_formula = d1.delta_union(&d2);
        let mut by_fold = d1.clone();
        by_fold.delta_union_assign(d2);
        prop_assert_eq!(&by_formula, &by_fold);
        prop_assert!(by_formula.invariant_holds());
    }

    /// `∪Δ` with the inverse Δ-set cancels to empty.
    #[test]
    fn delta_union_with_inverse_is_empty(evs in events()) {
        let mut d = DeltaSet::new();
        for (ins, t) in &evs {
            if *ins { d.apply_insert(t.clone()); } else { d.apply_delete(t.clone()); }
        }
        let inverse = DeltaSet::from_parts(d.minus().clone(), d.plus().clone());
        prop_assert!(d.delta_union(&inverse).is_empty());
    }

    /// Old-state index probes agree with old-state scans.
    #[test]
    fn old_probe_agrees_with_scan(init in initial_tuples(), evs in events(), key in 0i64..6) {
        let mut rel = BaseRelation::new("r", 2);
        rel.ensure_index(&[0]);
        let mut delta = DeltaSet::new();
        for t in &init {
            rel.insert(t.clone());
        }
        for (ins, t) in &evs {
            if *ins {
                if rel.insert(t.clone()) { delta.apply_insert(t.clone()); }
            } else if rel.delete(t) {
                delta.apply_delete(t.clone());
            }
        }
        let view = OldStateView::new(&rel, &delta);
        let k = Value::Int(key);
        let mut probed: Vec<Tuple> = view.probe(&[0], std::slice::from_ref(&k));
        let mut scanned: Vec<Tuple> = view.scan().filter(|t| t[0] == k).cloned().collect();
        probed.sort();
        scanned.sort();
        prop_assert_eq!(probed, scanned);
    }
}

/// One step of a savepoint-algebra interleaving.
#[derive(Debug, Clone)]
enum SpOp {
    Insert(Tuple),
    Delete(Tuple),
    Save,
    /// Rewind to the i-th (mod live count) outstanding savepoint.
    RollbackTo(usize),
    /// Abort the whole transaction and open a fresh one.
    Rollback,
}

fn sp_ops() -> impl Strategy<Value = Vec<SpOp>> {
    prop::collection::vec(
        prop_oneof![
            small_tuple().prop_map(SpOp::Insert),
            small_tuple().prop_map(SpOp::Insert),
            small_tuple().prop_map(SpOp::Delete),
            small_tuple().prop_map(SpOp::Delete),
            Just(SpOp::Save),
            (0usize..4).prop_map(SpOp::RollbackTo),
            Just(SpOp::Rollback),
        ],
        0..48,
    )
}

proptest! {
    /// Savepoint algebra (§4.1 partial rollback): any interleaving of
    /// updates, `savepoint`, `rollback_to`, and full `rollback` leaves
    /// the relation, the undo log, the Δ-set, and the old-state overlay
    /// exactly equivalent to replaying only the *surviving* updates —
    /// the events recorded since transaction start and never undone.
    #[test]
    fn savepoint_algebra_equals_surviving_replay(init in initial_tuples(), ops in sp_ops()) {
        let mut db = Storage::new();
        let r = db.create_relation("r", 2).unwrap();
        for t in &init {
            db.insert(r, t.clone()).unwrap();
        }
        let before: HashSet<Tuple> = db.relation(r).scan().cloned().collect();
        db.monitor(r);
        db.begin().unwrap();

        // The model: effective events not undone by any rollback, and
        // the live savepoint stack with the model length at save time.
        let mut surviving: Vec<(bool, Tuple)> = Vec::new();
        let mut stack: Vec<(amos_storage::Savepoint, usize)> = Vec::new();

        for op in &ops {
            match op {
                SpOp::Insert(t) => {
                    if db.insert(r, t.clone()).unwrap() {
                        surviving.push((true, t.clone()));
                    }
                }
                SpOp::Delete(t) => {
                    if db.delete(r, t).unwrap() {
                        surviving.push((false, t.clone()));
                    }
                }
                SpOp::Save => stack.push((db.savepoint(), surviving.len())),
                SpOp::RollbackTo(i) => {
                    if stack.is_empty() {
                        continue;
                    }
                    let idx = i % stack.len();
                    let (sp, keep) = stack[idx];
                    let undone = db.rollback_to(sp).unwrap();
                    prop_assert_eq!(undone, surviving.len() - keep);
                    surviving.truncate(keep);
                    // Savepoints taken after the rewound point are gone;
                    // the rewound-to savepoint itself stays valid.
                    stack.truncate(idx + 1);
                }
                SpOp::Rollback => {
                    db.rollback().unwrap();
                    surviving.clear();
                    stack.clear();
                    db.begin().unwrap();
                }
            }
        }

        // Relation state ≡ initial state + surviving events, in order.
        let mut model = before.clone();
        for (ins, t) in &surviving {
            if *ins {
                model.insert(t.clone());
            } else {
                model.remove(t);
            }
        }
        let after: HashSet<Tuple> = db.relation(r).scan().cloned().collect();
        prop_assert_eq!(&after, &model);

        // Undo log holds exactly the surviving events.
        prop_assert_eq!(db.log().len(), surviving.len());

        // Δ-set is the net of the surviving events.
        let expected_plus: HashSet<Tuple> = after.difference(&before).cloned().collect();
        let expected_minus: HashSet<Tuple> = before.difference(&after).cloned().collect();
        let empty = DeltaSet::new();
        let delta = db.delta(r).unwrap_or(&empty);
        prop_assert_eq!(delta.plus(), &expected_plus);
        prop_assert_eq!(delta.minus(), &expected_minus);
        prop_assert!(delta.invariant_holds());

        // Old-state overlay still reconstructs transaction-start state.
        let view = db.old_view(r);
        let reconstructed: HashSet<Tuple> = view.scan().cloned().collect();
        prop_assert_eq!(&reconstructed, &before);
    }
}
