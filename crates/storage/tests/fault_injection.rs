//! FaultPlan-driven WAL fault tests (require `--features fault-injection`).
//!
//! Each test schedules one deterministic fault, runs a workload whose
//! in-memory side keeps going (the "process" only dies when the test
//! drops the storage), then recovers from disk and checks the durable
//! state is a *committed prefix* — never a torn or partial transaction.

#![cfg(feature = "fault-injection")]

use std::collections::BTreeSet;
use std::path::PathBuf;
use std::sync::Arc;

use amos_storage::fault::{FaultPlan, WalFault};
use amos_storage::{Storage, StorageError, WalConfig, WAL_FILE};
use amos_types::{tuple, Tuple};

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("amos-fault-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn state(db: &Storage, name: &str) -> BTreeSet<Tuple> {
    match db.relation_id(name) {
        Ok(id) => db.relation(id).scan().cloned().collect(),
        Err(_) => BTreeSet::new(),
    }
}

/// Storage with WAL at `dir` and the given plan installed.
fn faulty_storage(dir: &PathBuf, plan: &Arc<FaultPlan>) -> (Storage, amos_storage::RelId) {
    let mut db = Storage::new();
    let q = db.create_relation("q", 2).unwrap();
    db.attach_wal(dir, WalConfig::default()).unwrap();
    db.wal_mut().unwrap().set_fault_plan(Arc::clone(plan));
    (db, q)
}

fn commit_one(db: &mut Storage, q: amos_storage::RelId, i: i64) -> Result<(), StorageError> {
    db.begin()?;
    db.insert(q, tuple![i, i * 10])?;
    db.insert(q, tuple![i, i * 10 + 1])?;
    db.commit()
}

#[test]
fn short_write_loses_only_the_torn_batch_and_later_writes() {
    let dir = tmpdir("short");
    let plan = Arc::new(FaultPlan::wal(WalFault::ShortWrite { batch: 2, keep: 10 }));
    let (mut db, q) = faulty_storage(&dir, &plan);
    for i in 1..=3 {
        commit_one(&mut db, q, i).unwrap(); // in-memory all succeed
    }
    assert_eq!(state(&db, "q").len(), 6, "in-memory state kept going");
    drop(db);

    let mut db2 = Storage::new();
    let info = db2.attach_wal(&dir, WalConfig::default()).unwrap();
    assert_eq!(info.batches_replayed, 1, "only batch 1 is durable");
    assert!(info.torn_tail_bytes > 0, "the short write left a torn tail");
    assert_eq!(
        state(&db2, "q"),
        BTreeSet::from([tuple![1, 10], tuple![1, 11]])
    );
}

#[test]
fn io_error_fails_the_commit_transiently() {
    let dir = tmpdir("eio");
    let plan = Arc::new(FaultPlan::wal(WalFault::IoErrorAtBatch(2)));
    let (mut db, q) = faulty_storage(&dir, &plan);

    commit_one(&mut db, q, 1).unwrap();
    // Batch 2 fails with the injected EIO; the transaction stays open.
    let err = commit_one(&mut db, q, 2).unwrap_err();
    assert!(matches!(err, StorageError::Io(_)), "{err}");
    assert!(db.in_transaction());
    db.rollback().unwrap();
    // The fault is one-shot: a retry commits durably.
    commit_one(&mut db, q, 3).unwrap();
    drop(db);

    let mut db2 = Storage::new();
    let info = db2.attach_wal(&dir, WalConfig::default()).unwrap();
    assert_eq!(info.batches_replayed, 2);
    assert_eq!(
        state(&db2, "q"),
        BTreeSet::from([tuple![1, 10], tuple![1, 11], tuple![3, 30], tuple![3, 31]])
    );
}

#[test]
fn crash_after_records_never_leaks_a_partial_transaction() {
    let dir = tmpdir("crashrec");
    // Crash once 3 records are durable: batch 1 carries 2, so the crash
    // lands inside batch 2 — one of its records reaches the disk as a
    // torn frame, which recovery must reject *whole*.
    let plan = Arc::new(FaultPlan::wal(WalFault::CrashAfterRecords(3)));
    let (mut db, q) = faulty_storage(&dir, &plan);
    for i in 1..=3 {
        commit_one(&mut db, q, i).unwrap();
    }
    drop(db);

    let wal_len = std::fs::metadata(dir.join(WAL_FILE)).unwrap().len();
    let mut db2 = Storage::new();
    let info = db2.attach_wal(&dir, WalConfig::default()).unwrap();
    assert_eq!(info.batches_replayed, 1);
    assert!(
        info.torn_tail_bytes > 0,
        "partial record bytes hit the disk"
    );
    assert_eq!(
        state(&db2, "q"),
        BTreeSet::from([tuple![1, 10], tuple![1, 11]]),
        "no tuple of the torn batch 2 (or the dropped batch 3) survives"
    );
    // Reopening truncated the torn tail away.
    let after = std::fs::metadata(dir.join(WAL_FILE)).unwrap().len();
    assert!(after < wal_len);
}

#[test]
fn torn_write_is_repaired_so_the_retried_commit_is_recoverable() {
    let dir = tmpdir("tornretry");
    // Batch 2's write_all tears after 7 bytes (think ENOSPC) and fails.
    let plan = Arc::new(FaultPlan::wal(WalFault::TornWriteError {
        batch: 2,
        keep: 7,
    }));
    let (mut db, q) = faulty_storage(&dir, &plan);

    commit_one(&mut db, q, 1).unwrap();
    let err = commit_one(&mut db, q, 2).unwrap_err();
    assert!(matches!(err, StorageError::Io(_)), "{err}");
    assert!(db.in_transaction());
    // Retry the commit: the writer must truncate the torn bytes first,
    // or the retried frame lands behind CRC debris and every later
    // commit is unreadable at recovery.
    db.commit().unwrap();
    commit_one(&mut db, q, 3).unwrap();
    drop(db);

    let mut db2 = Storage::new();
    let info = db2.attach_wal(&dir, WalConfig::default()).unwrap();
    assert_eq!(info.batches_replayed, 3, "retried commit is durable");
    assert_eq!(info.torn_tail_bytes, 0, "no torn debris left behind");
    assert_eq!(
        state(&db2, "q"),
        BTreeSet::from([
            tuple![1, 10],
            tuple![1, 11],
            tuple![2, 20],
            tuple![2, 21],
            tuple![3, 30],
            tuple![3, 31],
        ])
    );
}

#[test]
fn torn_write_rolled_back_transaction_is_not_resurrected() {
    let dir = tmpdir("tornroll");
    let plan = Arc::new(FaultPlan::wal(WalFault::TornWriteError {
        batch: 2,
        keep: 7,
    }));
    let (mut db, q) = faulty_storage(&dir, &plan);

    commit_one(&mut db, q, 1).unwrap();
    commit_one(&mut db, q, 2).unwrap_err();
    // Roll back instead of retrying: the failed batch's frame must not
    // linger in the group buffer and surface in a later flush.
    db.rollback().unwrap();
    commit_one(&mut db, q, 3).unwrap();
    drop(db);

    let mut db2 = Storage::new();
    let info = db2.attach_wal(&dir, WalConfig::default()).unwrap();
    assert_eq!(info.batches_replayed, 2);
    assert_eq!(info.torn_tail_bytes, 0);
    assert_eq!(
        state(&db2, "q"),
        BTreeSet::from([tuple![1, 10], tuple![1, 11], tuple![3, 30], tuple![3, 31]]),
        "the rolled-back transaction's tuples never reach the log"
    );
}

#[test]
fn seeded_plans_reproduce_identical_wal_bytes() {
    for seed in [1u64, 7, 42] {
        let mut files = Vec::new();
        for run in 0..2 {
            let dir = tmpdir(&format!("seed{seed}-{run}"));
            let plan = Arc::new(FaultPlan::from_seed(seed, 8));
            let (mut db, q) = faulty_storage(&dir, &plan);
            for i in 1..=4 {
                // Ignore injected EIO — the point is byte determinism.
                let _ = commit_one(&mut db, q, i);
                if db.in_transaction() {
                    db.rollback().unwrap();
                }
            }
            drop(db);
            files.push(std::fs::read(dir.join(WAL_FILE)).unwrap());
        }
        assert_eq!(files[0], files[1], "seed {seed} must reproduce exactly");
    }
}
