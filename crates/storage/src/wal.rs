//! Durable write-ahead log for the §4.1 update log.
//!
//! The in-memory [`crate::UpdateLog`] scopes undo to one transaction; the
//! WAL makes the *committed* suffix of history durable. Each committed
//! transaction (or autocommitted single update) becomes one **batch**:
//!
//! ```text
//! file    := magic "AMOSWAL1" batch*
//! batch   := seq:u64 len:u32 payload crc:u32     (crc over seq‖len‖payload)
//! payload := record*
//! record  := op:u8 name_len:u16 name:utf8 tuple
//! tuple   := arity:u16 value*
//! value   := tag:u8 data        (0 bool, 1 int, 2 real, 3 str, 4 oid)
//! ```
//!
//! All integers are little-endian. Records address relations by *name*,
//! not [`crate::RelId`] — ids are assigned per-process in DDL order and
//! need not coincide between the run that wrote the log and the run that
//! replays it.
//!
//! Recovery invariants (proved by the crash-offset sweep in
//! `tests/wal_recovery.rs`):
//!
//! * **Prefix durability** — a crash at any byte offset preserves exactly
//!   the batches whose frames fit entirely in the surviving prefix; the
//!   CRC rejects the torn tail, which is truncated on reopen.
//! * **Atomic commit** — a batch is either replayed whole or not at all;
//!   no recovered state ever reflects half a transaction.
//! * **Idempotent replay** — records are logical (§4.1) and relations
//!   have set semantics, so replaying a batch over a snapshot that
//!   already contains its effects is a no-op.
//!
//! Group commit: with [`WalConfig::group_commit`] > 1 the writer buffers
//! framed batches and writes + syncs them with one syscall when the group
//! fills (or on [`WalWriter::flush`]/drop). This trades a bounded
//! durability window (the buffered batches) for fewer fsyncs; the default
//! of 1 makes every commit durable before `commit()` returns.
//!
//! Cross-session commit pipeline: [`WalWriter::append_buffered`] frames a
//! batch into the shared group buffer *without* flushing and hands back a
//! [`CommitWaiter`]. The committing session releases the engine lock and
//! then blocks in [`CommitWaiter::wait`], where the first waiter becomes
//! the **leader**: it drains every pending framed batch, issues one
//! `write + fsync` for the whole group, and wakes every covered waiter —
//! followers never touch the file. Because batches enter the buffer in
//! `commit_seq` order under the engine lock and the leader writes them in
//! that order, the on-disk log is always a sequence-ordered prefix of the
//! acknowledged commits (the ack-prefix recovery invariant).

use std::fs::{File, OpenOptions};
use std::io::{Read as _, Seek as _, SeekFrom, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use amos_types::{Oid, Tuple, Value};

use crate::error::StorageError;
use crate::log::LogOp;

#[cfg(feature = "fault-injection")]
use crate::fault::{FaultPlan, WalFault};

/// File name of the log inside a WAL directory.
pub const WAL_FILE: &str = "wal.log";
/// Magic bytes opening a WAL file.
pub const WAL_MAGIC: &[u8; 8] = b"AMOSWAL1";

/// CRC-32 (IEEE 802.3), bitwise — WAL batches are small and this keeps
/// the codec dependency-free.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = 0xffff_ffff;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xedb8_8320 & mask);
        }
    }
    !crc
}

// ----------------------------------------------------------------------
// Value / tuple codec (shared with the snapshot module)
// ----------------------------------------------------------------------

const TAG_BOOL: u8 = 0;
const TAG_INT: u8 = 1;
const TAG_REAL: u8 = 2;
const TAG_STR: u8 = 3;
const TAG_OID: u8 = 4;

pub(crate) fn encode_value(buf: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Bool(b) => {
            buf.push(TAG_BOOL);
            buf.push(*b as u8);
        }
        Value::Int(i) => {
            buf.push(TAG_INT);
            buf.extend_from_slice(&i.to_le_bytes());
        }
        Value::Real(r) => {
            buf.push(TAG_REAL);
            buf.extend_from_slice(&r.to_bits().to_le_bytes());
        }
        Value::Str(s) => {
            buf.push(TAG_STR);
            buf.extend_from_slice(&(s.len() as u32).to_le_bytes());
            buf.extend_from_slice(s.as_bytes());
        }
        Value::Oid(o) => {
            buf.push(TAG_OID);
            buf.extend_from_slice(&o.raw().to_le_bytes());
        }
    }
}

pub(crate) fn encode_tuple(buf: &mut Vec<u8>, t: &Tuple) {
    buf.extend_from_slice(&(t.arity() as u16).to_le_bytes());
    for v in t.iter() {
        encode_value(buf, v);
    }
}

fn corrupt(what: impl Into<String>) -> StorageError {
    StorageError::Corrupt(what.into())
}

/// A byte cursor with bounds-checked little-endian reads.
pub(crate) struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    pub(crate) fn is_at_end(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], StorageError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| corrupt("record truncated inside a CRC-valid batch"))?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, StorageError> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u16(&mut self) -> Result<u16, StorageError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    pub(crate) fn u32(&mut self) -> Result<u32, StorageError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, StorageError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub(crate) fn str(&mut self, len: usize) -> Result<&'a str, StorageError> {
        std::str::from_utf8(self.take(len)?).map_err(|_| corrupt("invalid UTF-8 in WAL string"))
    }

    pub(crate) fn value(&mut self) -> Result<Value, StorageError> {
        match self.u8()? {
            TAG_BOOL => Ok(Value::Bool(self.u8()? != 0)),
            TAG_INT => Ok(Value::Int(i64::from_le_bytes(
                self.take(8)?.try_into().unwrap(),
            ))),
            TAG_REAL => {
                Value::real(f64::from_bits(self.u64()?)).map_err(|_| corrupt("NaN real in WAL"))
            }
            TAG_STR => {
                let len = self.u32()? as usize;
                Ok(Value::str(self.str(len)?))
            }
            TAG_OID => Ok(Value::Oid(Oid::from_raw(self.u64()?))),
            tag => Err(corrupt(format!("unknown value tag {tag}"))),
        }
    }

    pub(crate) fn tuple(&mut self) -> Result<Tuple, StorageError> {
        let arity = self.u16()? as usize;
        let mut vals = Vec::with_capacity(arity);
        for _ in 0..arity {
            vals.push(self.value()?);
        }
        Ok(Tuple::new(vals))
    }
}

// ----------------------------------------------------------------------
// Records and batches
// ----------------------------------------------------------------------

/// One durable update event, addressed by relation name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// Name of the updated relation.
    pub rel: String,
    /// Insert or delete.
    pub op: LogOp,
    /// The affected tuple.
    pub tuple: Tuple,
}

/// One committed transaction's records.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalBatch {
    /// Monotonically increasing commit sequence number.
    pub seq: u64,
    /// The records, in original apply order.
    pub records: Vec<WalRecord>,
}

fn encode_record(buf: &mut Vec<u8>, rec: &WalRecord) {
    buf.push(match rec.op {
        LogOp::Insert => 0,
        LogOp::Delete => 1,
    });
    buf.extend_from_slice(&(rec.rel.len() as u16).to_le_bytes());
    buf.extend_from_slice(rec.rel.as_bytes());
    encode_tuple(buf, &rec.tuple);
}

fn decode_record(cur: &mut Cursor<'_>) -> Result<WalRecord, StorageError> {
    let op = match cur.u8()? {
        0 => LogOp::Insert,
        1 => LogOp::Delete,
        other => return Err(corrupt(format!("unknown op tag {other}"))),
    };
    let name_len = cur.u16()? as usize;
    let rel = cur.str(name_len)?.to_string();
    let tuple = cur.tuple()?;
    Ok(WalRecord { rel, op, tuple })
}

/// Frame a batch: `seq ‖ len ‖ payload ‖ crc(seq‖len‖payload)`, plus the
/// byte offset (within the frame) at which each record's encoding ends —
/// the fault injector uses these to tear a write at a record boundary.
fn frame_batch(seq: u64, records: &[WalRecord]) -> (Vec<u8>, Vec<usize>) {
    let mut payload = Vec::new();
    let mut rec_ends = Vec::with_capacity(records.len());
    for rec in records {
        encode_record(&mut payload, rec);
        rec_ends.push(12 + payload.len());
    }
    let mut frame = Vec::with_capacity(16 + payload.len());
    frame.extend_from_slice(&seq.to_le_bytes());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&payload);
    let crc = crc32(&frame);
    frame.extend_from_slice(&crc.to_le_bytes());
    (frame, rec_ends)
}

// ----------------------------------------------------------------------
// Reading
// ----------------------------------------------------------------------

/// Outcome of scanning a WAL file.
#[derive(Debug)]
pub struct WalReadResult {
    /// The CRC-valid batches, in sequence order.
    pub batches: Vec<WalBatch>,
    /// Byte length of the valid prefix (magic + whole batches). Reopening
    /// for append truncates the file to this length.
    pub valid_bytes: u64,
    /// Total file length found on disk.
    pub total_bytes: u64,
    /// Whether a torn tail (bytes past the valid prefix) was found.
    pub torn_tail: bool,
}

impl WalReadResult {
    fn empty() -> Self {
        WalReadResult {
            batches: Vec::new(),
            valid_bytes: WAL_MAGIC.len() as u64,
            total_bytes: 0,
            torn_tail: false,
        }
    }

    /// Sequence number of the last valid batch (0 if none).
    pub fn last_seq(&self) -> u64 {
        self.batches.last().map_or(0, |b| b.seq)
    }
}

/// Scan `path`, returning every batch in the longest CRC-valid prefix.
///
/// A missing file reads as empty. Damage *at the tail* (short header,
/// short payload, CRC mismatch on the final frame) is expected — that is
/// what a crash mid-write leaves behind — and simply ends the scan.
/// Violations that a torn write cannot produce (bad magic, non-monotonic
/// sequence numbers, undecodable payload under a valid CRC) are reported
/// as [`StorageError::Corrupt`].
pub fn read_wal(path: &Path) -> Result<WalReadResult, StorageError> {
    let mut file = match File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Ok(WalReadResult::empty());
        }
        Err(e) => return Err(e.into()),
    };
    let mut bytes = Vec::new();
    file.read_to_end(&mut bytes)?;
    read_wal_bytes(&bytes)
}

/// [`read_wal`] over an in-memory image (used by the crash-offset sweep
/// to scan arbitrary prefixes without touching the filesystem).
pub fn read_wal_bytes(bytes: &[u8]) -> Result<WalReadResult, StorageError> {
    let total = bytes.len() as u64;
    if bytes.is_empty() {
        return Ok(WalReadResult {
            valid_bytes: 0,
            ..WalReadResult::empty()
        });
    }
    if bytes.len() < WAL_MAGIC.len() {
        // A crash during file creation can tear even the magic.
        return Ok(WalReadResult {
            total_bytes: total,
            torn_tail: true,
            valid_bytes: 0,
            batches: Vec::new(),
        });
    }
    if &bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
        return Err(corrupt("bad WAL magic"));
    }
    let mut batches = Vec::new();
    let mut pos = WAL_MAGIC.len();
    let mut last_seq = 0u64;
    loop {
        let rest = &bytes[pos..];
        if rest.is_empty() {
            break;
        }
        if rest.len() < 12 {
            break; // torn header
        }
        let seq = u64::from_le_bytes(rest[0..8].try_into().unwrap());
        let len = u32::from_le_bytes(rest[8..12].try_into().unwrap()) as usize;
        let frame_len = match len.checked_add(16) {
            Some(l) if l <= rest.len() => l,
            _ => break, // torn payload or absurd length in a torn header
        };
        let stored_crc = u32::from_le_bytes(rest[12 + len..frame_len].try_into().unwrap());
        if crc32(&rest[..12 + len]) != stored_crc {
            break; // torn tail
        }
        if seq <= last_seq {
            return Err(corrupt(format!(
                "non-monotonic WAL sequence {seq} after {last_seq}"
            )));
        }
        let mut cur = Cursor::new(&rest[12..12 + len]);
        let mut records = Vec::new();
        while !cur.is_at_end() {
            records.push(decode_record(&mut cur)?);
        }
        batches.push(WalBatch { seq, records });
        last_seq = seq;
        pos += frame_len;
    }
    Ok(WalReadResult {
        batches,
        valid_bytes: pos as u64,
        total_bytes: total,
        torn_tail: (pos as u64) < total,
    })
}

// ----------------------------------------------------------------------
// Writing
// ----------------------------------------------------------------------

/// Writer configuration.
#[derive(Debug, Clone)]
pub struct WalConfig {
    /// Number of batches buffered before a physical write + sync. 1 (the
    /// default) makes every commit durable before it returns. In the
    /// pipelined commit path this is the *target group size*: a flush
    /// leader stops waiting for stragglers once this many batches are
    /// pending.
    pub group_commit: usize,
    /// How long a pipelined flush leader waits (microseconds) for the
    /// group to reach `group_commit` batches before writing whatever is
    /// pending. 0 (the default) flushes immediately — groups then form
    /// only from commits that were already pending, i.e. under actual
    /// concurrency.
    pub max_delay_us: u64,
}

impl Default for WalConfig {
    fn default() -> Self {
        WalConfig {
            group_commit: 1,
            max_delay_us: 0,
        }
    }
}

impl WalConfig {
    /// A config with the given group size and no leader delay.
    pub fn grouped(group_commit: usize) -> Self {
        WalConfig {
            group_commit,
            max_delay_us: 0,
        }
    }
}

/// Number of buckets in the group-size histogram: group sizes 1, 2,
/// 3–4, 5–8, 9–16, 17+.
pub const GROUP_HIST_BUCKETS: usize = 6;

fn hist_bucket(group: u64) -> usize {
    match group {
        0 | 1 => 0,
        2 => 1,
        3..=4 => 2,
        5..=8 => 3,
        9..=16 => 4,
        _ => 5,
    }
}

/// Durability-side counters of a WAL writer, snapshot by
/// [`WalWriter::metrics`]. All counters are cumulative since the writer
/// was opened.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct WalMetrics {
    /// Successful `fsync` calls.
    pub fsyncs: u64,
    /// Batches made durable (across all fsyncs).
    pub batches: u64,
    /// Largest batch group covered by one fsync.
    pub max_group: u64,
    /// Histogram of batches-per-fsync: buckets 1, 2, 3–4, 5–8, 9–16,
    /// 17+.
    pub group_hist: [u64; GROUP_HIST_BUCKETS],
    /// Commit waiters acknowledged by *another* session's flush (group
    /// commit followers — they never touched the file).
    pub waiters_woken: u64,
}

#[derive(Debug, Default)]
struct WalCounters {
    fsyncs: AtomicU64,
    batches: AtomicU64,
    max_group: AtomicU64,
    group_hist: [AtomicU64; GROUP_HIST_BUCKETS],
    waiters_woken: AtomicU64,
}

impl WalCounters {
    fn record_sync(&self, group: u64) {
        self.fsyncs.fetch_add(1, Ordering::Relaxed);
        self.batches.fetch_add(group, Ordering::Relaxed);
        self.max_group.fetch_max(group, Ordering::Relaxed);
        self.group_hist[hist_bucket(group)].fetch_add(1, Ordering::Relaxed);
    }

    fn snapshot(&self) -> WalMetrics {
        let mut group_hist = [0u64; GROUP_HIST_BUCKETS];
        for (out, bucket) in group_hist.iter_mut().zip(&self.group_hist) {
            *out = bucket.load(Ordering::Relaxed);
        }
        WalMetrics {
            fsyncs: self.fsyncs.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            max_group: self.max_group.load(Ordering::Relaxed),
            group_hist,
            waiters_woken: self.waiters_woken.load(Ordering::Relaxed),
        }
    }
}

/// One framed batch awaiting the group write.
#[derive(Debug)]
struct PendingBatch {
    seq: u64,
    frame: Vec<u8>,
    rec_ends: Vec<usize>,
}

/// The physical file and its torn-tail bookkeeping. Only one thread
/// touches the disk at a time (the flush leader, or the writer itself
/// under the engine lock), serialized by the mutex around this.
#[derive(Debug)]
struct DiskCore {
    file: File,
    /// File length up to the last fully-written frame. A failed
    /// `write_all` (ENOSPC, EIO) can leave torn bytes past this point;
    /// `repair_torn_tail` truncates back to it so a retried append lands
    /// on a clean boundary instead of after unreadable debris.
    good_len: u64,
    /// Set when a failed write may have left torn bytes past `good_len`.
    needs_repair: bool,
    /// Set when frames were written but not yet `sync_data`ed (a failed
    /// group flush); the next flush syncs even with nothing pending.
    dirty: bool,
    /// Highest sequence number whose frame was fully handed to the file
    /// (or logically dropped by a crashed fault plan).
    written_seq: u64,
    /// Frames physically written since the last successful sync — the
    /// group size the next fsync will cover.
    unsynced: u64,
    #[cfg(feature = "fault-injection")]
    faults: Option<Arc<FaultPlan>>,
}

/// Leader/follower coordination state for the group buffer.
#[derive(Debug, Default)]
struct GroupState {
    /// Framed batches awaiting the group write, in sequence order.
    pending: Vec<PendingBatch>,
    /// Highest sequence number acknowledged durable (covered by a
    /// completed flush round).
    durable_seq: u64,
    /// A leader is currently flushing off-lock.
    leader: bool,
    /// Sticky error from the last failed flush round, cleared by the
    /// next successful one. Waiters not yet durable observe it and fail
    /// their commit's durability wait instead of spinning on a dead
    /// disk.
    error: Option<String>,
}

/// State shared between the [`WalWriter`] (owned by storage, used under
/// the engine lock) and the off-lock [`CommitWaiter`]s.
#[derive(Debug)]
struct WalShared {
    group: Mutex<GroupState>,
    cv: Condvar,
    disk: Mutex<DiskCore>,
    counters: WalCounters,
}

/// Append-only WAL writer with group commit.
#[derive(Debug)]
pub struct WalWriter {
    shared: Arc<WalShared>,
    path: PathBuf,
    next_seq: u64,
    config: WalConfig,
}

impl WalWriter {
    /// Open (or create) the WAL in `dir`, scanning any existing log,
    /// truncating a torn tail, and positioning for append. Returns the
    /// writer plus what was read — the caller replays the batches.
    pub fn open(dir: &Path, config: WalConfig) -> Result<(WalWriter, WalReadResult), StorageError> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(WAL_FILE);
        let read = read_wal(&path)?;
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        if read.total_bytes == 0 {
            file.write_all(WAL_MAGIC)?;
            file.sync_all()?;
        } else {
            // Drop the torn tail (and a torn magic: rewrite it whole).
            if read.valid_bytes < WAL_MAGIC.len() as u64 {
                file.set_len(0)?;
                file.write_all(WAL_MAGIC)?;
                file.sync_all()?;
            } else if read.torn_tail {
                file.set_len(read.valid_bytes)?;
                file.sync_all()?;
            }
        }
        let good_len = file.seek(SeekFrom::End(0))?;
        let last_seq = read.last_seq();
        let shared = Arc::new(WalShared {
            group: Mutex::new(GroupState {
                durable_seq: last_seq,
                ..GroupState::default()
            }),
            cv: Condvar::new(),
            disk: Mutex::new(DiskCore {
                file,
                good_len,
                needs_repair: false,
                dirty: false,
                written_seq: last_seq,
                unsynced: 0,
                #[cfg(feature = "fault-injection")]
                faults: None,
            }),
            counters: WalCounters::default(),
        });
        let writer = WalWriter {
            shared,
            path,
            next_seq: last_seq + 1,
            config,
        };
        Ok((writer, read))
    }

    /// Raise the next sequence number above `seq`. Recovery calls this
    /// with the snapshot's `last_seq`: after a checkpoint the truncated
    /// log no longer shows the sequence numbers the snapshot covers, so
    /// a freshly opened writer would otherwise restart at 1 and its
    /// batches would be skipped (as `<= snapshot_seq`) at the *next*
    /// recovery.
    pub fn ensure_seq_above(&mut self, seq: u64) {
        if self.next_seq <= seq {
            self.next_seq = seq + 1;
        }
    }

    /// Attach a fault plan; subsequent writes consult it.
    #[cfg(feature = "fault-injection")]
    pub fn set_fault_plan(&mut self, plan: Arc<FaultPlan>) {
        self.shared.disk.lock().expect("wal disk lock").faults = Some(plan);
    }

    /// Path of the log file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Sequence number the next appended batch will carry.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Snapshot of the durability counters (fsyncs, group sizes, woken
    /// waiters) since this writer was opened.
    pub fn metrics(&self) -> WalMetrics {
        self.shared.counters.snapshot()
    }

    /// Append one committed batch. With `group_commit` = 1 the batch is
    /// on disk (synced) when this returns; otherwise it may sit in the
    /// group buffer until the group fills or [`WalWriter::flush`] runs.
    ///
    /// On error *this* batch is withdrawn — its commit is failing, and
    /// the caller decides whether to retry (re-append) or roll back, in
    /// which case its records must never surface in the log. Earlier
    /// group-buffered batches already returned `Ok` to their commits and
    /// stay queued for the next flush.
    pub fn append(&mut self, records: &[WalRecord]) -> Result<u64, StorageError> {
        let seq = self.next_seq;
        let (frame, rec_ends) = frame_batch(seq, records);
        self.next_seq += 1;
        let filled = {
            let mut st = self.shared.group.lock().expect("wal group lock");
            st.pending.push(PendingBatch {
                seq,
                frame,
                rec_ends,
            });
            st.pending.len() >= self.config.group_commit
        };
        if filled {
            if let Err(e) = self.flush() {
                self.shared
                    .group
                    .lock()
                    .expect("wal group lock")
                    .pending
                    .retain(|b| b.seq != seq);
                return Err(e);
            }
        }
        Ok(seq)
    }

    /// Frame one committed batch into the shared group buffer *without*
    /// flushing, and return a [`CommitWaiter`] for the off-lock
    /// durability wait. Called under the engine lock, so batches enter
    /// the buffer in commit order; the caller releases the lock and then
    /// blocks in [`CommitWaiter::wait`].
    pub fn append_buffered(&mut self, records: &[WalRecord]) -> CommitWaiter {
        let seq = self.next_seq;
        let (frame, rec_ends) = frame_batch(seq, records);
        self.next_seq += 1;
        {
            let mut st = self.shared.group.lock().expect("wal group lock");
            st.pending.push(PendingBatch {
                seq,
                frame,
                rec_ends,
            });
        }
        // Wake a parked flush leader: its delay window ends early once
        // the group reaches the configured size.
        self.shared.cv.notify_all();
        CommitWaiter {
            shared: Arc::clone(&self.shared),
            seq,
            config: self.config.clone(),
        }
    }

    /// Write and sync every buffered batch.
    ///
    /// On error the unwritten batches stay in the group buffer and any
    /// torn bytes from a partial write are marked for repair, so a
    /// retried flush (or the next append) first restores a clean file
    /// tail and then re-attempts the writes — a retried commit is
    /// recoverable, not silently lost behind an unreadable frame.
    pub fn flush(&mut self) -> Result<(), StorageError> {
        loop {
            let st = self.shared.group.lock().expect("wal group lock");
            if st.leader {
                // An off-lock commit waiter is mid-flush; let it finish,
                // then re-check what is left.
                let _unused = self.shared.cv.wait(st).expect("wal group lock");
                continue;
            }
            return run_leader_round(&self.shared, st, None);
        }
    }

    /// Truncate the log after a checkpoint: every batch up to and
    /// including `last_seq` is captured by the snapshot, so the log
    /// restarts empty (sequence numbering continues).
    pub fn truncate_after_checkpoint(&mut self) -> Result<(), StorageError> {
        self.flush()?;
        let mut disk = self.shared.disk.lock().expect("wal disk lock");
        disk.file.set_len(WAL_MAGIC.len() as u64)?;
        disk.file.sync_all()?;
        disk.file.seek(SeekFrom::End(0))?;
        disk.good_len = WAL_MAGIC.len() as u64;
        disk.needs_repair = false;
        disk.dirty = false;
        Ok(())
    }
}

impl Drop for WalWriter {
    fn drop(&mut self) {
        let _ = self.flush();
    }
}

impl DiskCore {
    /// Truncate torn bytes a failed write left past the last complete
    /// frame, repositioning for append. No-op unless a write failed.
    fn repair_torn_tail(&mut self) -> Result<(), StorageError> {
        if !self.needs_repair {
            return Ok(());
        }
        self.file.set_len(self.good_len)?;
        self.file.seek(SeekFrom::Start(self.good_len))?;
        self.needs_repair = false;
        Ok(())
    }

    /// Physically write one framed batch, honoring any fault plan.
    #[allow(unused_variables)]
    fn write_batch(&mut self, batch: &PendingBatch) -> Result<(), StorageError> {
        let (seq, frame, rec_ends) = (batch.seq, &batch.frame, &batch.rec_ends);
        #[cfg(feature = "fault-injection")]
        if let Some(plan) = self.faults.clone() {
            if plan.is_crashed() {
                self.written_seq = seq;
                return Ok(()); // writes after the crash vanish
            }
            if plan.take_io_error(seq) {
                return Err(StorageError::Io("injected I/O error".into()));
            }
            if let Some(keep) = plan.take_torn_write(seq) {
                // A partial `write_all` (e.g. ENOSPC): some frame bytes
                // land, then the write fails — exactly the debris
                // `repair_torn_tail` exists to clean up.
                let keep = keep.min(frame.len());
                let _ = self.file.write_all(&frame[..keep]);
                self.needs_repair = true;
                return Err(StorageError::Io("injected torn write".into()));
            }
            match plan.wal_fault() {
                Some(&WalFault::CrashAfterRecords(n)) => {
                    let start = plan.records_written();
                    let nrecs = rec_ends.len() as u64;
                    if start + nrecs > n {
                        // Tear the frame at the crash record's boundary:
                        // records before it survive as a torn (CRC-less)
                        // frame the reader will reject whole.
                        let keep_records = n.saturating_sub(start) as usize;
                        let keep = if keep_records == 0 {
                            frame.len().min(4) // only part of the header lands
                        } else {
                            rec_ends[keep_records - 1]
                        };
                        self.file.write_all(&frame[..keep])?;
                        self.file.sync_data()?;
                        plan.mark_crashed();
                        self.written_seq = seq;
                        return Ok(());
                    }
                    plan.note_records_written(nrecs);
                }
                Some(&WalFault::ShortWrite { batch, keep }) if batch == seq => {
                    let keep = keep.min(frame.len());
                    self.file.write_all(&frame[..keep])?;
                    self.file.sync_data()?;
                    plan.mark_crashed();
                    self.written_seq = seq;
                    return Ok(());
                }
                _ => {}
            }
        }
        if let Err(e) = self.file.write_all(frame) {
            // Torn bytes may now sit past `good_len` at an arbitrary
            // offset; repair before the next append.
            self.needs_repair = true;
            return Err(e.into());
        }
        self.good_len += frame.len() as u64;
        self.written_seq = seq;
        self.unsynced += 1;
        self.dirty = true;
        Ok(())
    }
}

/// One leader flush round over the group buffer. The caller holds the
/// group lock with no other leader active; the round drains the pending
/// batches, releases the group lock, performs the write + fsync under
/// the disk lock, then re-acquires the group lock to publish the new
/// durable sequence (or the error) and wake every waiter.
///
/// With `delay` set (a pipelined [`CommitWaiter`] whose group has not
/// reached `group_commit` yet), the leader first parks up to
/// `max_delay_us` for stragglers; appends wake it early once the group
/// fills.
fn run_leader_round(
    shared: &WalShared,
    mut st: MutexGuard<'_, GroupState>,
    delay: Option<&WalConfig>,
) -> Result<(), StorageError> {
    st.leader = true;
    if let Some(config) = delay {
        if config.max_delay_us > 0 {
            let deadline = Instant::now() + Duration::from_micros(config.max_delay_us);
            while st.pending.len() < config.group_commit.max(1) {
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                let (next, timeout) = shared
                    .cv
                    .wait_timeout(st, deadline - now)
                    .expect("wal group lock");
                st = next;
                if timeout.timed_out() {
                    break;
                }
            }
        }
    }
    let batch: Vec<PendingBatch> = std::mem::take(&mut st.pending);
    drop(st);

    let mut disk = shared.disk.lock().expect("wal disk lock");
    let mut failed: Option<(usize, StorageError)> = None;
    if let Err(e) = disk.repair_torn_tail() {
        failed = Some((0, e));
    }
    if failed.is_none() {
        for (i, b) in batch.iter().enumerate() {
            if let Err(e) = disk.write_batch(b) {
                failed = Some((i, e));
                break;
            }
        }
    }
    if failed.is_none() && disk.dirty {
        match disk.file.sync_data() {
            Ok(()) => {
                shared.counters.record_sync(disk.unsynced);
                disk.unsynced = 0;
                disk.dirty = false;
            }
            Err(e) => failed = Some((batch.len(), e.into())),
        }
    }
    let synced_seq = if failed.is_none() {
        disk.written_seq
    } else {
        0 // unused on the error path
    };
    drop(disk);

    let mut st = shared.group.lock().expect("wal group lock");
    st.leader = false;
    let result = match failed {
        None => {
            st.durable_seq = st.durable_seq.max(synced_seq);
            st.error = None;
            Ok(())
        }
        Some((written, e)) => {
            // Batches from the failed one onward go back to the front of
            // the buffer (appends that raced in have higher sequence
            // numbers), preserving write order for the retry.
            let mut rest: Vec<PendingBatch> = batch.into_iter().skip(written).collect();
            rest.append(&mut st.pending);
            st.pending = rest;
            st.error = Some(e.to_string());
            Err(e)
        }
    };
    drop(st);
    shared.cv.notify_all();
    result
}

/// The durability half of a pipelined commit: a handle on one appended
/// batch, blocked on until that batch's sequence is covered by a group
/// flush. The first waiter to arrive becomes the flush leader (one
/// `write + fsync` for every pending batch); the rest are followers and
/// never touch the file.
#[derive(Debug)]
pub struct CommitWaiter {
    shared: Arc<WalShared>,
    seq: u64,
    config: WalConfig,
}

impl CommitWaiter {
    /// The commit sequence this waiter acknowledges.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Block until this commit's batch is durable (covered by a group
    /// fsync). Must be called *after* releasing the engine lock — that
    /// is the point of the split.
    ///
    /// On `Err` the batch's durability is unknown: the flush round
    /// covering it failed, the batch stays queued, and a later retry (or
    /// shutdown flush) may still land it — the same at-least-once
    /// ambiguity any group-commit log has on a mid-group I/O error.
    pub fn wait(self) -> Result<(), StorageError> {
        let mut led = false;
        let mut st = self.shared.group.lock().expect("wal group lock");
        loop {
            if st.durable_seq >= self.seq {
                if !led {
                    self.shared
                        .counters
                        .waiters_woken
                        .fetch_add(1, Ordering::Relaxed);
                }
                return Ok(());
            }
            if let Some(msg) = &st.error {
                return Err(StorageError::Io(format!(
                    "group commit flush failed (durability unknown): {msg}"
                )));
            }
            if st.leader {
                st = self.shared.cv.wait(st).expect("wal group lock");
                continue;
            }
            led = true;
            run_leader_round(&self.shared, st, Some(&self.config))?;
            st = self.shared.group.lock().expect("wal group lock");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amos_types::tuple;

    fn rec(rel: &str, op: LogOp, t: Tuple) -> WalRecord {
        WalRecord {
            rel: rel.into(),
            op,
            tuple: t,
        }
    }

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("amos-wal-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn crc32_known_vector() {
        // IEEE CRC-32 of "123456789".
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
    }

    #[test]
    fn roundtrip_batches() {
        let dir = tmpdir("roundtrip");
        let records = vec![
            rec("q", LogOp::Insert, tuple![1, "abc"]),
            rec(
                "q",
                LogOp::Delete,
                Tuple::new(vec![Value::Bool(true), Value::real(2.5).unwrap()]),
            ),
            rec(
                "r",
                LogOp::Insert,
                Tuple::new(vec![Value::Oid(Oid::from_raw(9))]),
            ),
        ];
        {
            let (mut w, read) = WalWriter::open(&dir, WalConfig::default()).unwrap();
            assert_eq!(read.batches.len(), 0);
            w.append(&records).unwrap();
            w.append(&records[..1]).unwrap();
        }
        let read = read_wal(&dir.join(WAL_FILE)).unwrap();
        assert_eq!(read.batches.len(), 2);
        assert_eq!(read.batches[0].seq, 1);
        assert_eq!(read.batches[0].records, records);
        assert_eq!(read.batches[1].seq, 2);
        assert!(!read.torn_tail);
        // Reopen continues the sequence.
        let (w, read) = WalWriter::open(&dir, WalConfig::default()).unwrap();
        assert_eq!(w.next_seq(), 3);
        assert_eq!(read.batches.len(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn every_truncation_yields_a_valid_prefix() {
        let dir = tmpdir("prefix");
        {
            let (mut w, _) = WalWriter::open(&dir, WalConfig::default()).unwrap();
            for i in 0..5i64 {
                w.append(&[rec("q", LogOp::Insert, tuple![i, "payload"])])
                    .unwrap();
            }
        }
        let bytes = std::fs::read(dir.join(WAL_FILE)).unwrap();
        let full = read_wal_bytes(&bytes).unwrap();
        assert_eq!(full.batches.len(), 5);
        // End offset of each frame, by re-framing in order.
        let mut ends = Vec::new();
        let mut off = WAL_MAGIC.len();
        for b in &full.batches {
            off += frame_batch(b.seq, &b.records).0.len();
            ends.push(off);
        }
        for cut in 0..=bytes.len() {
            let read = read_wal_bytes(&bytes[..cut]).unwrap();
            // The valid prefix is exactly the batches whose frames fit.
            let expect = ends.iter().filter(|&&e| e <= cut).count();
            assert_eq!(read.batches.len(), expect, "cut at {cut}");
            assert!(read.valid_bytes as usize <= cut);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reopen_truncates_torn_tail() {
        let dir = tmpdir("torn");
        {
            let (mut w, _) = WalWriter::open(&dir, WalConfig::default()).unwrap();
            w.append(&[rec("q", LogOp::Insert, tuple![1])]).unwrap();
            w.append(&[rec("q", LogOp::Insert, tuple![2])]).unwrap();
        }
        // Tear the last batch by chopping 3 bytes.
        let path = dir.join(WAL_FILE);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();

        let (mut w, read) = WalWriter::open(&dir, WalConfig::default()).unwrap();
        assert_eq!(read.batches.len(), 1);
        assert!(read.torn_tail);
        assert_eq!(w.next_seq(), 2);
        w.append(&[rec("q", LogOp::Insert, tuple![3])]).unwrap();
        drop(w);
        let read = read_wal(&path).unwrap();
        assert_eq!(read.batches.len(), 2);
        assert_eq!(read.batches[1].seq, 2);
        assert!(!read.torn_tail);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn group_commit_buffers_until_full() {
        let dir = tmpdir("group");
        let path = dir.join(WAL_FILE);
        {
            let (mut w, _) = WalWriter::open(&dir, WalConfig::grouped(3)).unwrap();
            w.append(&[rec("q", LogOp::Insert, tuple![1])]).unwrap();
            w.append(&[rec("q", LogOp::Insert, tuple![2])]).unwrap();
            assert_eq!(
                read_wal(&path).unwrap().batches.len(),
                0,
                "buffered, not yet on disk"
            );
            w.append(&[rec("q", LogOp::Insert, tuple![3])]).unwrap();
            assert_eq!(read_wal(&path).unwrap().batches.len(), 3, "group flushed");
            w.append(&[rec("q", LogOp::Insert, tuple![4])]).unwrap();
        }
        // Drop flushes the partial group.
        assert_eq!(read_wal(&path).unwrap().batches.len(), 4);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bad_magic_is_corrupt_not_torn() {
        assert!(matches!(
            read_wal_bytes(b"NOTAWAL!rest"),
            Err(StorageError::Corrupt(_))
        ));
    }
}
