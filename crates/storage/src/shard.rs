//! Hash-partitioned shard views over Δ-sets — the storage substrate of
//! sharded wave-front propagation.
//!
//! A [`ShardedDelta`] splits one side of a [`DeltaSet`] into `S`
//! disjoint [`DeltaSet`] slices keyed on a column subset: every tuple
//! lands in the shard selected by hashing its projection onto the key
//! columns, so all tuples agreeing on the key are owned by one shard.
//! Workers can then evaluate a partial differential against their own
//! slice with no cross-worker coordination — the union of the slices is
//! exactly the original side, tuple for tuple, so partitioned execution
//! reproduces unpartitioned execution as a multiset.
//!
//! Partitioning rides on the Δ-set's existing [`Arrangement`] layer:
//! the side is arranged by the key columns once (sorted, equal keys
//! contiguous) and then walked block by block with
//! [`Arrangement::equal_range_on`] — one hash per distinct key instead
//! of one per tuple, and key groups move into their shard as contiguous
//! runs. Key-free ("broadcast") differentials have no columns to
//! partition on; [`ShardedDelta::broadcast`] routes the whole side to
//! one owner shard, which evaluates it against the full shared state —
//! the degenerate exchange in which the state is broadcast rather than
//! the Δ-stream partitioned.

use std::hash::{Hash, Hasher};

use amos_types::{FxHashSet, Tuple};

use crate::arrangement::Arrangement;
use crate::delta::{DeltaSet, Polarity};

/// The shard owning `tuple` under a partitioning of `shards` shards
/// keyed on `cols`.
///
/// Deterministic across runs and platforms (FxHash over the projected
/// values, no per-process seed) — shard assignment, and therefore every
/// per-shard metric, is reproducible for a fixed workload.
pub fn shard_of(tuple: &Tuple, cols: &[usize], shards: usize) -> usize {
    debug_assert!(shards > 0);
    let mut h = amos_types::FxHasher::default();
    for &c in cols {
        tuple[c].hash(&mut h);
    }
    (h.finish() as usize) % shards
}

/// One side of a Δ-set, hash-partitioned into `S` disjoint slices.
#[derive(Debug)]
pub struct ShardedDelta {
    shards: Vec<DeltaSet>,
    key: Vec<usize>,
}

impl ShardedDelta {
    /// Partition `polarity`'s side of `delta` into `shards` slices keyed
    /// on `cols`. Each slice is a [`DeltaSet`] with only that side
    /// populated; the union of all slices equals the source side.
    ///
    /// The side is arranged by `cols` (reusing the Δ-set's lazy
    /// arrangement cache) and walked in equal-key blocks via
    /// [`Arrangement::equal_range_on`], so tuples sharing a key are
    /// hashed once and co-located in one shard.
    ///
    /// # Panics
    /// Panics if `shards == 0`.
    pub fn partition(delta: &DeltaSet, polarity: Polarity, cols: &[usize], shards: usize) -> Self {
        assert!(shards > 0, "cannot partition into zero shards");
        let mut sides: Vec<FxHashSet<Tuple>> = (0..shards).map(|_| FxHashSet::default()).collect();
        if shards == 1 {
            sides[0] = delta.side(polarity).clone();
        } else {
            let arr: std::sync::Arc<Arrangement> = delta.arrangement(polarity, cols);
            let tuples = arr.tuples();
            let mut i = 0;
            while i < tuples.len() {
                // The contiguous block of tuples sharing tuples[i]'s key.
                let block = arr.equal_range_on(&tuples[i], cols);
                let s = shard_of(&tuples[i], cols, shards);
                sides[s].extend(block.iter().cloned());
                i += block.len();
            }
        }
        ShardedDelta {
            shards: sides
                .into_iter()
                .map(|side| match polarity {
                    Polarity::Plus => DeltaSet::from_parts(side, FxHashSet::default()),
                    Polarity::Minus => DeltaSet::from_parts(FxHashSet::default(), side),
                })
                .collect(),
            key: cols.to_vec(),
        }
    }

    /// The key-free fallback: the entire side goes to `owner`'s slice
    /// and every other shard is empty. Used for differentials with no
    /// bound/join columns, where hash partitioning has nothing to key
    /// on.
    ///
    /// # Panics
    /// Panics if `owner >= shards` or `shards == 0`.
    pub fn broadcast(delta: &DeltaSet, polarity: Polarity, shards: usize, owner: usize) -> Self {
        assert!(shards > 0, "cannot partition into zero shards");
        assert!(owner < shards, "broadcast owner out of range");
        let shards: Vec<DeltaSet> = (0..shards)
            .map(|s| {
                let side = if s == owner {
                    delta.side(polarity).clone()
                } else {
                    FxHashSet::default()
                };
                match polarity {
                    Polarity::Plus => DeltaSet::from_parts(side, FxHashSet::default()),
                    Polarity::Minus => DeltaSet::from_parts(FxHashSet::default(), side),
                }
            })
            .collect();
        ShardedDelta {
            shards,
            key: Vec::new(),
        }
    }

    /// The per-shard slices, in shard order.
    pub fn shards(&self) -> &[DeltaSet] {
        &self.shards
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The key columns this partition hashes on (empty for broadcast).
    pub fn key(&self) -> &[usize] {
        &self.key
    }

    /// Per-shard slice sizes, in shard order — the occupancy profile the
    /// skew metrics report.
    pub fn shard_lens(&self) -> Vec<usize> {
        self.shards.iter().map(DeltaSet::len).collect()
    }

    /// Total tuples across all slices. Always equals the partitioned
    /// side's size — the shard-aware statistics path sums per-shard
    /// cardinalities back into the whole-side estimate.
    pub fn len(&self) -> usize {
        self.shards.iter().map(DeltaSet::len).sum()
    }

    /// Whether every slice is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amos_types::{tuple, Value};

    fn sample(n: i64) -> DeltaSet {
        let mut d = DeltaSet::new();
        for i in 0..n {
            d.apply_insert(tuple![i % 7, i]);
        }
        d
    }

    #[test]
    fn partition_is_exact_and_disjoint() {
        let d = sample(50);
        for shards in 1..=8 {
            let p = ShardedDelta::partition(&d, Polarity::Plus, &[0], shards);
            assert_eq!(p.shard_count(), shards);
            assert_eq!(p.len(), 50, "no tuple lost or duplicated");
            let mut union: FxHashSet<Tuple> = FxHashSet::default();
            for slice in p.shards() {
                assert!(slice.minus().is_empty());
                for t in slice.plus() {
                    assert!(union.insert(t.clone()), "tuple {t} in two shards");
                }
            }
            assert_eq!(&union, d.plus());
        }
    }

    #[test]
    fn equal_keys_land_in_one_shard() {
        let d = sample(49); // 7 tuples per key value
        let p = ShardedDelta::partition(&d, Polarity::Plus, &[0], 4);
        for key in 0..7i64 {
            let holders: Vec<usize> = p
                .shards()
                .iter()
                .enumerate()
                .filter(|(_, s)| s.plus().iter().any(|t| t[0] == Value::Int(key)))
                .map(|(i, _)| i)
                .collect();
            assert_eq!(holders.len(), 1, "key {key} split across shards");
            assert_eq!(holders[0], shard_of(&tuple![key, 0], &[0], 4));
        }
    }

    #[test]
    fn single_shard_is_identity() {
        let d = sample(20);
        let p = ShardedDelta::partition(&d, Polarity::Plus, &[0], 1);
        assert_eq!(p.shards()[0].plus(), d.plus());
    }

    #[test]
    fn minus_side_partitions_too() {
        let mut d = DeltaSet::new();
        for i in 0..30 {
            d.apply_delete(tuple![i, i]);
        }
        let p = ShardedDelta::partition(&d, Polarity::Minus, &[1], 3);
        assert_eq!(p.len(), 30);
        assert!(p.shards().iter().all(|s| s.plus().is_empty()));
    }

    #[test]
    fn broadcast_routes_everything_to_the_owner() {
        let d = sample(10);
        let p = ShardedDelta::broadcast(&d, Polarity::Plus, 4, 2);
        assert_eq!(p.shard_lens(), vec![0, 0, 10, 0]);
        assert_eq!(p.shards()[2].plus(), d.plus());
        assert!(p.key().is_empty());
    }

    #[test]
    fn shard_of_is_deterministic() {
        let t = tuple![3, 9];
        let a = shard_of(&t, &[0], 8);
        for _ in 0..10 {
            assert_eq!(shard_of(&t, &[0], 8), a);
        }
        assert!(a < 8);
    }
}
