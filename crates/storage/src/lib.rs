//! # amos-storage
//!
//! Storage substrate for the AMOS partial-differencing reproduction:
//! in-memory set-oriented base relations with hash indexes, a logical
//! undo/redo log, transactions, and the Δ-set machinery of §4.1 of the
//! paper (Sköld & Risch, ICDE'96).
//!
//! The pieces map onto the paper as follows:
//!
//! * [`BaseRelation`] — a *stored function* compiled to a base relation
//!   (facts). Set semantics; optional hash indexes on column subsets.
//! * [`DeltaSet`] — the Δ-set `ΔB = <Δ₊B, Δ₋B>` accumulating *logical*
//!   events from physical update events, with the delta-union `∪Δ` that
//!   cancels matching insert/delete pairs ("no net effect" example in
//!   §4.1).
//! * [`UpdateLog`] — the logical undo/redo log that physical events are
//!   written to; undo restores the pre-transaction state.
//! * [`OldStateView`] — the *logical rollback* view
//!   `S_old = (S_new ∪ Δ₋S) − Δ₊S` (§4, fig. 3), answering membership,
//!   scans, and index probes against the old state without materializing
//!   it.
//! * [`Storage`] — the database of base relations with transaction
//!   scoping and per-relation Δ-set accumulation for *monitored*
//!   relations (only influents of some activated rule pay any overhead,
//!   exactly as the paper requires).

pub mod database;
pub mod delta;
pub mod error;
pub mod log;
pub mod oldstate;
pub mod relation;

pub use database::{RelId, Storage};
pub use delta::{DeltaSet, Polarity};
pub use error::StorageError;
pub use log::{LogOp, LogRecord, UpdateLog};
pub use oldstate::{OldStateView, StateEpoch};
pub use relation::BaseRelation;
