//! # amos-storage
//!
//! Storage substrate for the AMOS partial-differencing reproduction:
//! in-memory set-oriented base relations with hash indexes, a logical
//! undo/redo log, transactions, and the Δ-set machinery of §4.1 of the
//! paper (Sköld & Risch, ICDE'96).
//!
//! The pieces map onto the paper as follows:
//!
//! * [`BaseRelation`] — a *stored function* compiled to a base relation
//!   (facts). Set semantics; optional hash indexes on column subsets.
//! * [`DeltaSet`] — the Δ-set `ΔB = <Δ₊B, Δ₋B>` accumulating *logical*
//!   events from physical update events, with the delta-union `∪Δ` that
//!   cancels matching insert/delete pairs ("no net effect" example in
//!   §4.1).
//! * [`UpdateLog`] — the logical undo/redo log that physical events are
//!   written to; undo restores the pre-transaction state.
//! * [`OldStateView`] — the *logical rollback* view
//!   `S_old = (S_new ∪ Δ₋S) − Δ₊S` (§4, fig. 3), answering membership,
//!   scans, and index probes against the old state without materializing
//!   it.
//! * [`Storage`] — the database of base relations with transaction
//!   scoping and per-relation Δ-set accumulation for *monitored*
//!   relations (only influents of some activated rule pay any overhead,
//!   exactly as the paper requires).

//!
//! Durability (this layer's §4.1 "written to the log", made literal):
//!
//! * [`wal`] — an append-only on-disk WAL of committed batches with CRC
//!   framing, group commit, and torn-tail-tolerant recovery scanning.
//! * [`snapshot`] — atomic checkpoint images that bound replay time.
//! * [`Storage::attach_wal`] / [`Storage::checkpoint`] — snapshot +
//!   replay recovery and the ongoing commit → WAL pipeline.
//! * [`Savepoint`] / [`Storage::rollback_to`] — partial rollback by
//!   reverse-undoing a log suffix, rewinding Δ-sets in step.
//! * [`fault`] *(feature `fault-injection`)* — deterministic, seeded
//!   fault plans (crashes, torn writes, I/O errors, failing rule
//!   actions) threaded through the WAL writer and the rule layer.

pub mod arrangement;
pub mod database;
pub mod delta;
pub mod error;
#[cfg(feature = "fault-injection")]
pub mod fault;
pub mod log;
pub mod oldstate;
pub mod relation;
pub mod shard;
pub mod snapshot;
pub mod txn;
pub mod wal;

pub use arrangement::{Arrangement, SortedRun};
pub use database::{RecoveryInfo, RelId, Savepoint, Storage};
pub use delta::{DeltaSet, Polarity};
pub use error::StorageError;
pub use log::{LogOp, LogRecord, UndoDrain, UpdateLog};
pub use oldstate::{OldStateView, StateEpoch};
pub use relation::BaseRelation;
pub use shard::{shard_of, ShardedDelta};
pub use snapshot::{Snapshot, SnapshotRelation, SNAPSHOT_FILE};
pub use txn::{ReadOverlay, RelOverlay, TxnVersion};
pub use wal::{
    read_wal, read_wal_bytes, CommitWaiter, WalBatch, WalConfig, WalMetrics, WalRecord, WalWriter,
    GROUP_HIST_BUCKETS, WAL_FILE,
};
