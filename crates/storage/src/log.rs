//! The logical undo/redo log (paper §4.1).
//!
//! "All changes to base relations, i.e. stored functions, are logged in a
//! logical undo/redo log." The log records *physical* update events in
//! order; transaction rollback undoes them in reverse. Δ-set
//! accumulation for monitored relations happens as events are appended
//! (see [`crate::Storage`]).

use amos_types::Tuple;

use crate::database::RelId;

/// Kind of a physical update event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LogOp {
    /// A tuple was added to a base relation.
    Insert,
    /// A tuple was removed from a base relation.
    Delete,
}

/// One physical update event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogRecord {
    /// The updated relation.
    pub rel: RelId,
    /// Insert or delete.
    pub op: LogOp,
    /// The affected tuple.
    pub tuple: Tuple,
}

/// An append-only log of physical update events for the current
/// transaction.
#[derive(Debug, Clone, Default)]
pub struct UpdateLog {
    records: Vec<LogRecord>,
}

impl UpdateLog {
    /// An empty log.
    pub fn new() -> Self {
        UpdateLog::default()
    }

    /// Append an event.
    pub fn push(&mut self, rel: RelId, op: LogOp, tuple: Tuple) {
        self.records.push(LogRecord { rel, op, tuple });
    }

    /// Number of logged events.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The records in append order.
    pub fn records(&self) -> &[LogRecord] {
        &self.records
    }

    /// Drain all records in *reverse* order for undo.
    pub fn drain_for_undo(&mut self) -> impl Iterator<Item = LogRecord> + '_ {
        self.records.drain(..).rev()
    }

    /// Clear the log (transaction committed).
    pub fn clear(&mut self) {
        self.records.clear();
    }

    /// A savepoint position for partial rollback.
    pub fn savepoint(&self) -> usize {
        self.records.len()
    }

    /// Drain records appended after `savepoint`, in reverse order.
    pub fn drain_since(&mut self, savepoint: usize) -> impl Iterator<Item = LogRecord> + '_ {
        self.records.drain(savepoint..).rev()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amos_types::tuple;

    #[test]
    fn append_and_undo_order() {
        let mut log = UpdateLog::new();
        log.push(RelId(0), LogOp::Insert, tuple![1]);
        log.push(RelId(0), LogOp::Delete, tuple![2]);
        log.push(RelId(1), LogOp::Insert, tuple![3]);
        assert_eq!(log.len(), 3);
        let undo: Vec<_> = log.drain_for_undo().collect();
        assert_eq!(undo[0].tuple, tuple![3]);
        assert_eq!(undo[2].tuple, tuple![1]);
        assert!(log.is_empty());
    }

    #[test]
    fn savepoint_partial_undo() {
        let mut log = UpdateLog::new();
        log.push(RelId(0), LogOp::Insert, tuple![1]);
        let sp = log.savepoint();
        log.push(RelId(0), LogOp::Insert, tuple![2]);
        log.push(RelId(0), LogOp::Insert, tuple![3]);
        let undone: Vec<_> = log.drain_since(sp).collect();
        assert_eq!(undone.len(), 2);
        assert_eq!(undone[0].tuple, tuple![3]);
        assert_eq!(log.len(), 1);
    }
}
