//! The logical undo/redo log (paper §4.1).
//!
//! "All changes to base relations, i.e. stored functions, are logged in a
//! logical undo/redo log." The log records *physical* update events in
//! order; transaction rollback undoes them in reverse. Δ-set
//! accumulation for monitored relations happens as events are appended
//! (see [`crate::Storage`]).

use amos_types::Tuple;

use crate::database::RelId;

/// Kind of a physical update event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LogOp {
    /// A tuple was added to a base relation.
    Insert,
    /// A tuple was removed from a base relation.
    Delete,
}

/// One physical update event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogRecord {
    /// The updated relation.
    pub rel: RelId,
    /// Insert or delete.
    pub op: LogOp,
    /// The affected tuple.
    pub tuple: Tuple,
}

/// An append-only log of physical update events for the current
/// transaction.
#[derive(Debug, Clone, Default)]
pub struct UpdateLog {
    records: Vec<LogRecord>,
}

impl UpdateLog {
    /// An empty log.
    pub fn new() -> Self {
        UpdateLog::default()
    }

    /// Append an event.
    pub fn push(&mut self, rel: RelId, op: LogOp, tuple: Tuple) {
        self.records.push(LogRecord { rel, op, tuple });
    }

    /// Number of logged events.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The records in append order.
    pub fn records(&self) -> &[LogRecord] {
        &self.records
    }

    /// Drain all records in *reverse* order for undo.
    ///
    /// The drain is *transactional*: each record leaves the log only as
    /// it is yielded, so dropping the iterator early keeps every
    /// not-yet-undone record in the log (in order). Records that were
    /// yielded are gone — matching the invariant that the log always
    /// describes exactly the update events still applied to relations.
    pub fn drain_for_undo(&mut self) -> UndoDrain<'_> {
        UndoDrain {
            records: &mut self.records,
            floor: 0,
        }
    }

    /// Remove and return the most recent record (undo order). This is
    /// the primitive the undo paths build on: a record leaves the log at
    /// exactly the moment its inverse is applied, so an interrupted undo
    /// leaves the log describing precisely the still-applied events.
    pub fn pop_for_undo(&mut self) -> Option<LogRecord> {
        self.records.pop()
    }

    /// Clear the log (transaction committed).
    pub fn clear(&mut self) {
        self.records.clear();
    }

    /// A savepoint position for partial rollback.
    pub fn savepoint(&self) -> usize {
        self.records.len()
    }

    /// Drain records appended after `savepoint`, in reverse order.
    ///
    /// Transactional in the same sense as [`UpdateLog::drain_for_undo`]:
    /// early drop keeps the not-yet-yielded records in the log.
    pub fn drain_since(&mut self, savepoint: usize) -> UndoDrain<'_> {
        let floor = savepoint.min(self.records.len());
        UndoDrain {
            records: &mut self.records,
            floor,
        }
    }
}

/// Reverse-order undo cursor over an [`UpdateLog`] suffix.
///
/// Unlike `Vec::drain` — whose `Drop` removes the *entire* range even if
/// the iterator was abandoned halfway — this cursor pops one record at a
/// time, so the log always holds exactly the records that have not been
/// yielded for undo yet.
#[derive(Debug)]
pub struct UndoDrain<'a> {
    records: &'a mut Vec<LogRecord>,
    floor: usize,
}

impl Iterator for UndoDrain<'_> {
    type Item = LogRecord;

    fn next(&mut self) -> Option<LogRecord> {
        if self.records.len() > self.floor {
            self.records.pop()
        } else {
            None
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.records.len() - self.floor;
        (n, Some(n))
    }
}

impl ExactSizeIterator for UndoDrain<'_> {}

#[cfg(test)]
mod tests {
    use super::*;
    use amos_types::tuple;

    #[test]
    fn append_and_undo_order() {
        let mut log = UpdateLog::new();
        log.push(RelId(0), LogOp::Insert, tuple![1]);
        log.push(RelId(0), LogOp::Delete, tuple![2]);
        log.push(RelId(1), LogOp::Insert, tuple![3]);
        assert_eq!(log.len(), 3);
        let undo: Vec<_> = log.drain_for_undo().collect();
        assert_eq!(undo[0].tuple, tuple![3]);
        assert_eq!(undo[2].tuple, tuple![1]);
        assert!(log.is_empty());
    }

    #[test]
    fn savepoint_partial_undo() {
        let mut log = UpdateLog::new();
        log.push(RelId(0), LogOp::Insert, tuple![1]);
        let sp = log.savepoint();
        log.push(RelId(0), LogOp::Insert, tuple![2]);
        log.push(RelId(0), LogOp::Insert, tuple![3]);
        let undone: Vec<_> = log.drain_since(sp).collect();
        assert_eq!(undone.len(), 2);
        assert_eq!(undone[0].tuple, tuple![3]);
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn abandoned_undo_drain_keeps_unconsumed_records() {
        // Regression: `Vec::drain(..)` removes the whole range on drop,
        // so abandoning the old iterator after one step silently lost
        // the two records that were never undone.
        let mut log = UpdateLog::new();
        log.push(RelId(0), LogOp::Insert, tuple![1]);
        log.push(RelId(0), LogOp::Insert, tuple![2]);
        log.push(RelId(0), LogOp::Insert, tuple![3]);
        {
            let mut undo = log.drain_for_undo();
            assert_eq!(undo.len(), 3);
            assert_eq!(undo.next().unwrap().tuple, tuple![3]);
            // Dropped here with two records unconsumed.
        }
        assert_eq!(log.len(), 2, "unconsumed records must survive");
        assert_eq!(log.records()[0].tuple, tuple![1]);
        assert_eq!(log.records()[1].tuple, tuple![2]);
    }

    #[test]
    fn abandoned_drain_since_keeps_suffix_prefix() {
        let mut log = UpdateLog::new();
        for i in 0..5 {
            log.push(RelId(0), LogOp::Insert, tuple![i]);
        }
        let sp = 1;
        {
            let mut undo = log.drain_since(sp);
            undo.next().unwrap(); // yields tuple![4]
            undo.next().unwrap(); // yields tuple![3]
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.records()[2].tuple, tuple![2]);
        // Savepoints beyond the log length are clamped, not panicking.
        assert_eq!(log.drain_since(99).count(), 0);
    }
}
