//! Set-oriented base relations with hash indexes.
//!
//! A stored AMOSQL function such as `quantity(item) -> integer` compiles
//! to a base relation of arity 2. Relations have *set* semantics (the
//! calculus of the paper is set-oriented, §7.2); inserting an existing
//! tuple or deleting a missing one is a physical no-op and generates no
//! update event.
//!
//! Hash indexes over column subsets support the index-seeded joins the
//! partial-differential optimizer emits: a differential binds variables
//! from a (small) Δ-set first and probes the remaining literals by key,
//! which is what makes incremental monitoring O(1)-ish in database size
//! (fig. 6).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use amos_types::{FxHashMap, FxHashSet, Tuple, Value};

/// A hash index: projection of the indexed columns → the matching tuples.
#[derive(Debug, Clone, Default)]
struct HashIndex {
    cols: Vec<usize>,
    map: FxHashMap<Tuple, FxHashSet<Tuple>>,
}

impl HashIndex {
    fn key_of(&self, t: &Tuple) -> Tuple {
        t.project(&self.cols)
    }

    fn insert(&mut self, t: &Tuple) {
        self.map
            .entry(self.key_of(t))
            .or_default()
            .insert(t.clone());
    }

    fn remove(&mut self, t: &Tuple) {
        let key = self.key_of(t);
        if let Some(set) = self.map.get_mut(&key) {
            set.remove(t);
            if set.is_empty() {
                self.map.remove(&key);
            }
        }
    }
}

/// An in-memory, set-oriented base relation.
///
/// Alongside the tuples and indexes it maintains the cheap statistics the
/// adaptive planner feeds on: per-column distinct-value counts (exact,
/// kept as value→multiplicity maps updated on insert/delete) and a
/// counter of index-less `probe` calls that silently degraded to a full
/// scan.
#[derive(Debug)]
pub struct BaseRelation {
    name: String,
    arity: usize,
    tuples: FxHashSet<Tuple>,
    indexes: Vec<HashIndex>,
    index_by_cols: FxHashMap<Vec<usize>, usize>,
    /// Per-column value→multiplicity; `ndv(c)` is `col_counts[c].len()`.
    col_counts: Vec<FxHashMap<Value, u32>>,
    /// Probes that found no matching index and fell back to a scan.
    fallback_scans: AtomicU64,
    /// Distinct column sets that triggered a fallback since the last
    /// [`take_fallback_sites`](Self::take_fallback_sites) drain.
    fallback_sites: Mutex<FxHashSet<Vec<usize>>>,
}

impl Clone for BaseRelation {
    fn clone(&self) -> Self {
        BaseRelation {
            name: self.name.clone(),
            arity: self.arity,
            tuples: self.tuples.clone(),
            indexes: self.indexes.clone(),
            index_by_cols: self.index_by_cols.clone(),
            col_counts: self.col_counts.clone(),
            fallback_scans: AtomicU64::new(self.fallback_scans.load(Ordering::Relaxed)),
            fallback_sites: Mutex::new(
                self.fallback_sites
                    .lock()
                    .map(|s| s.clone())
                    .unwrap_or_default(),
            ),
        }
    }
}

impl BaseRelation {
    /// Create an empty relation.
    pub fn new(name: impl Into<String>, arity: usize) -> Self {
        BaseRelation {
            name: name.into(),
            arity,
            tuples: FxHashSet::default(),
            indexes: Vec::new(),
            index_by_cols: FxHashMap::default(),
            col_counts: vec![FxHashMap::default(); arity],
            fallback_scans: AtomicU64::new(0),
            fallback_sites: Mutex::new(FxHashSet::default()),
        }
    }

    /// The relation's name (the stored function's name).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the relation is empty.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Membership test.
    pub fn contains(&self, t: &Tuple) -> bool {
        self.tuples.contains(t)
    }

    /// Insert a tuple. Returns `true` iff the relation changed (set
    /// semantics: re-inserting is a no-op and must not generate a
    /// physical update event).
    ///
    /// # Panics
    /// Panics on arity mismatch — tuples are produced by the compiler
    /// against known signatures, so this is a programming error.
    pub fn insert(&mut self, t: Tuple) -> bool {
        assert_eq!(
            t.arity(),
            self.arity,
            "arity mismatch inserting into `{}`",
            self.name
        );
        if self.tuples.insert(t.clone()) {
            for idx in &mut self.indexes {
                idx.insert(&t);
            }
            for (c, counts) in self.col_counts.iter_mut().enumerate() {
                *counts.entry(t[c].clone()).or_insert(0) += 1;
            }
            true
        } else {
            false
        }
    }

    /// Delete a tuple. Returns `true` iff the relation changed.
    pub fn delete(&mut self, t: &Tuple) -> bool {
        if self.tuples.remove(t) {
            for idx in &mut self.indexes {
                idx.remove(t);
            }
            for (c, counts) in self.col_counts.iter_mut().enumerate() {
                if let Some(n) = counts.get_mut(&t[c]) {
                    *n -= 1;
                    if *n == 0 {
                        counts.remove(&t[c]);
                    }
                }
            }
            true
        } else {
            false
        }
    }

    /// Iterate over all tuples (arbitrary order).
    pub fn scan(&self) -> impl Iterator<Item = &Tuple> {
        self.tuples.iter()
    }

    /// Ensure a hash index exists over the given columns (sorted,
    /// deduplicated by the caller being consistent; the same column list
    /// always maps to the same index).
    pub fn ensure_index(&mut self, cols: &[usize]) {
        if self.index_by_cols.contains_key(cols) {
            return;
        }
        let mut idx = HashIndex {
            cols: cols.to_vec(),
            map: FxHashMap::default(),
        };
        for t in &self.tuples {
            idx.insert(t);
        }
        self.index_by_cols.insert(cols.to_vec(), self.indexes.len());
        self.indexes.push(idx);
    }

    /// Whether an index over exactly these columns exists.
    pub fn has_index(&self, cols: &[usize]) -> bool {
        self.index_by_cols.contains_key(cols)
    }

    /// Probe an index: all tuples whose projection onto `cols` equals
    /// `key`. Requires [`ensure_index`](Self::ensure_index) to have been
    /// called for `cols` (the plan compiler does this); falls back to a
    /// scan-filter if not, so correctness never depends on index
    /// presence.
    pub fn probe<'a>(&'a self, cols: &[usize], key: &[Value]) -> Vec<&'a Tuple> {
        if let Some(&i) = self.index_by_cols.get(cols) {
            let key_tuple = Tuple::new(key.to_vec());
            match self.indexes[i].map.get(&key_tuple) {
                Some(set) => set.iter().collect(),
                None => Vec::new(),
            }
        } else {
            self.fallback_scans.fetch_add(1, Ordering::Relaxed);
            if let Ok(mut sites) = self.fallback_sites.lock() {
                sites.insert(cols.to_vec());
            }
            self.tuples
                .iter()
                .filter(|t| cols.iter().zip(key).all(|(&c, v)| &t[c] == v))
                .collect()
        }
    }

    /// Number of maintained indexes (for tests / introspection).
    pub fn index_count(&self) -> usize {
        self.indexes.len()
    }

    /// Number of distinct values in column `col` (exact, maintained on
    /// insert/delete). Out-of-range columns report 0.
    pub fn ndv(&self, col: usize) -> usize {
        self.col_counts.get(col).map_or(0, |m| m.len())
    }

    /// Total index-less probes that degraded to a full scan-filter.
    pub fn fallback_scans(&self) -> u64 {
        self.fallback_scans.load(Ordering::Relaxed)
    }

    /// Drain the distinct column sets that triggered a fallback scan
    /// since the previous drain (used for once-per-pass logging).
    pub fn take_fallback_sites(&self) -> Vec<Vec<usize>> {
        match self.fallback_sites.lock() {
            Ok(mut sites) => {
                let mut out: Vec<Vec<usize>> = sites.drain().collect();
                out.sort();
                out
            }
            Err(_) => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amos_types::tuple;

    #[test]
    fn set_semantics() {
        let mut r = BaseRelation::new("q", 2);
        assert!(r.insert(tuple![1, 2]));
        assert!(!r.insert(tuple![1, 2]), "re-insert is a no-op");
        assert!(r.delete(&tuple![1, 2]));
        assert!(!r.delete(&tuple![1, 2]), "re-delete is a no-op");
        assert!(r.is_empty());
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_checked() {
        let mut r = BaseRelation::new("q", 2);
        r.insert(tuple![1]);
    }

    #[test]
    fn probe_with_index() {
        let mut r = BaseRelation::new("q", 2);
        r.insert(tuple![1, 10]);
        r.insert(tuple![1, 11]);
        r.insert(tuple![2, 20]);
        r.ensure_index(&[0]);
        let mut hits: Vec<_> = r.probe(&[0], &[Value::Int(1)]);
        hits.sort();
        assert_eq!(hits, vec![&tuple![1, 10], &tuple![1, 11]]);
        assert!(r.probe(&[0], &[Value::Int(3)]).is_empty());
    }

    #[test]
    fn probe_without_index_scans() {
        let mut r = BaseRelation::new("q", 2);
        r.insert(tuple![1, 10]);
        r.insert(tuple![2, 10]);
        let mut hits = r.probe(&[1], &[Value::Int(10)]);
        hits.sort();
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn index_maintained_across_updates() {
        let mut r = BaseRelation::new("q", 2);
        r.ensure_index(&[0]);
        r.insert(tuple![1, 10]);
        assert_eq!(r.probe(&[0], &[Value::Int(1)]).len(), 1);
        r.delete(&tuple![1, 10]);
        assert!(r.probe(&[0], &[Value::Int(1)]).is_empty());
    }

    #[test]
    fn ensure_index_idempotent_and_backfills() {
        let mut r = BaseRelation::new("q", 2);
        r.insert(tuple![5, 50]);
        r.ensure_index(&[0]);
        r.ensure_index(&[0]);
        assert_eq!(r.index_count(), 1);
        assert_eq!(r.probe(&[0], &[Value::Int(5)]).len(), 1);
    }

    #[test]
    fn ndv_maintained_on_insert_and_delete() {
        let mut r = BaseRelation::new("q", 2);
        assert_eq!(r.ndv(0), 0);
        r.insert(tuple![1, 10]);
        r.insert(tuple![1, 11]);
        r.insert(tuple![2, 10]);
        assert_eq!(r.ndv(0), 2, "two distinct values in col 0");
        assert_eq!(r.ndv(1), 2, "two distinct values in col 1");
        r.delete(&tuple![1, 10]);
        assert_eq!(r.ndv(0), 2, "value 1 still present via (1,11)");
        r.delete(&tuple![1, 11]);
        assert_eq!(r.ndv(0), 1, "value 1 fully gone");
        assert_eq!(r.ndv(7), 0, "out-of-range column");
    }

    #[test]
    fn fallback_scans_counted_and_sites_drained() {
        let mut r = BaseRelation::new("q", 2);
        r.insert(tuple![1, 10]);
        r.ensure_index(&[0]);
        r.probe(&[0], &[Value::Int(1)]);
        assert_eq!(r.fallback_scans(), 0, "indexed probe is not a fallback");
        r.probe(&[1], &[Value::Int(10)]);
        r.probe(&[1], &[Value::Int(11)]);
        assert_eq!(r.fallback_scans(), 2);
        assert_eq!(r.take_fallback_sites(), vec![vec![1]]);
        assert!(r.take_fallback_sites().is_empty(), "drain empties the set");
        let cloned = r.clone();
        assert_eq!(cloned.fallback_scans(), 2);
        assert_eq!(cloned.ndv(0), 1);
    }

    #[test]
    fn multi_column_index() {
        let mut r = BaseRelation::new("delivery_time", 3);
        r.insert(tuple![1, 7, 2]);
        r.insert(tuple![1, 8, 3]);
        r.ensure_index(&[0, 1]);
        assert_eq!(r.probe(&[0, 1], &[Value::Int(1), Value::Int(7)]).len(), 1);
    }
}
