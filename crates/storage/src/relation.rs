//! Set-oriented base relations with hash indexes.
//!
//! A stored AMOSQL function such as `quantity(item) -> integer` compiles
//! to a base relation of arity 2. Relations have *set* semantics (the
//! calculus of the paper is set-oriented, §7.2); inserting an existing
//! tuple or deleting a missing one is a physical no-op and generates no
//! update event.
//!
//! Hash indexes over column subsets support the index-seeded joins the
//! partial-differential optimizer emits: a differential binds variables
//! from a (small) Δ-set first and probes the remaining literals by key,
//! which is what makes incremental monitoring O(1)-ish in database size
//! (fig. 6).

use amos_types::{FxHashMap, FxHashSet, Tuple, Value};

/// A hash index: projection of the indexed columns → the matching tuples.
#[derive(Debug, Clone, Default)]
struct HashIndex {
    cols: Vec<usize>,
    map: FxHashMap<Tuple, FxHashSet<Tuple>>,
}

impl HashIndex {
    fn key_of(&self, t: &Tuple) -> Tuple {
        t.project(&self.cols)
    }

    fn insert(&mut self, t: &Tuple) {
        self.map
            .entry(self.key_of(t))
            .or_default()
            .insert(t.clone());
    }

    fn remove(&mut self, t: &Tuple) {
        let key = self.key_of(t);
        if let Some(set) = self.map.get_mut(&key) {
            set.remove(t);
            if set.is_empty() {
                self.map.remove(&key);
            }
        }
    }
}

/// An in-memory, set-oriented base relation.
#[derive(Debug, Clone)]
pub struct BaseRelation {
    name: String,
    arity: usize,
    tuples: FxHashSet<Tuple>,
    indexes: Vec<HashIndex>,
    index_by_cols: FxHashMap<Vec<usize>, usize>,
}

impl BaseRelation {
    /// Create an empty relation.
    pub fn new(name: impl Into<String>, arity: usize) -> Self {
        BaseRelation {
            name: name.into(),
            arity,
            tuples: FxHashSet::default(),
            indexes: Vec::new(),
            index_by_cols: FxHashMap::default(),
        }
    }

    /// The relation's name (the stored function's name).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the relation is empty.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Membership test.
    pub fn contains(&self, t: &Tuple) -> bool {
        self.tuples.contains(t)
    }

    /// Insert a tuple. Returns `true` iff the relation changed (set
    /// semantics: re-inserting is a no-op and must not generate a
    /// physical update event).
    ///
    /// # Panics
    /// Panics on arity mismatch — tuples are produced by the compiler
    /// against known signatures, so this is a programming error.
    pub fn insert(&mut self, t: Tuple) -> bool {
        assert_eq!(
            t.arity(),
            self.arity,
            "arity mismatch inserting into `{}`",
            self.name
        );
        if self.tuples.insert(t.clone()) {
            for idx in &mut self.indexes {
                idx.insert(&t);
            }
            true
        } else {
            false
        }
    }

    /// Delete a tuple. Returns `true` iff the relation changed.
    pub fn delete(&mut self, t: &Tuple) -> bool {
        if self.tuples.remove(t) {
            for idx in &mut self.indexes {
                idx.remove(t);
            }
            true
        } else {
            false
        }
    }

    /// Iterate over all tuples (arbitrary order).
    pub fn scan(&self) -> impl Iterator<Item = &Tuple> {
        self.tuples.iter()
    }

    /// Ensure a hash index exists over the given columns (sorted,
    /// deduplicated by the caller being consistent; the same column list
    /// always maps to the same index).
    pub fn ensure_index(&mut self, cols: &[usize]) {
        if self.index_by_cols.contains_key(cols) {
            return;
        }
        let mut idx = HashIndex {
            cols: cols.to_vec(),
            map: FxHashMap::default(),
        };
        for t in &self.tuples {
            idx.insert(t);
        }
        self.index_by_cols.insert(cols.to_vec(), self.indexes.len());
        self.indexes.push(idx);
    }

    /// Whether an index over exactly these columns exists.
    pub fn has_index(&self, cols: &[usize]) -> bool {
        self.index_by_cols.contains_key(cols)
    }

    /// Probe an index: all tuples whose projection onto `cols` equals
    /// `key`. Requires [`ensure_index`](Self::ensure_index) to have been
    /// called for `cols` (the plan compiler does this); falls back to a
    /// scan-filter if not, so correctness never depends on index
    /// presence.
    pub fn probe<'a>(&'a self, cols: &[usize], key: &[Value]) -> Vec<&'a Tuple> {
        if let Some(&i) = self.index_by_cols.get(cols) {
            let key_tuple = Tuple::new(key.to_vec());
            match self.indexes[i].map.get(&key_tuple) {
                Some(set) => set.iter().collect(),
                None => Vec::new(),
            }
        } else {
            self.tuples
                .iter()
                .filter(|t| cols.iter().zip(key).all(|(&c, v)| &t[c] == v))
                .collect()
        }
    }

    /// Number of maintained indexes (for tests / introspection).
    pub fn index_count(&self) -> usize {
        self.indexes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amos_types::tuple;

    #[test]
    fn set_semantics() {
        let mut r = BaseRelation::new("q", 2);
        assert!(r.insert(tuple![1, 2]));
        assert!(!r.insert(tuple![1, 2]), "re-insert is a no-op");
        assert!(r.delete(&tuple![1, 2]));
        assert!(!r.delete(&tuple![1, 2]), "re-delete is a no-op");
        assert!(r.is_empty());
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_checked() {
        let mut r = BaseRelation::new("q", 2);
        r.insert(tuple![1]);
    }

    #[test]
    fn probe_with_index() {
        let mut r = BaseRelation::new("q", 2);
        r.insert(tuple![1, 10]);
        r.insert(tuple![1, 11]);
        r.insert(tuple![2, 20]);
        r.ensure_index(&[0]);
        let mut hits: Vec<_> = r.probe(&[0], &[Value::Int(1)]);
        hits.sort();
        assert_eq!(hits, vec![&tuple![1, 10], &tuple![1, 11]]);
        assert!(r.probe(&[0], &[Value::Int(3)]).is_empty());
    }

    #[test]
    fn probe_without_index_scans() {
        let mut r = BaseRelation::new("q", 2);
        r.insert(tuple![1, 10]);
        r.insert(tuple![2, 10]);
        let mut hits = r.probe(&[1], &[Value::Int(10)]);
        hits.sort();
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn index_maintained_across_updates() {
        let mut r = BaseRelation::new("q", 2);
        r.ensure_index(&[0]);
        r.insert(tuple![1, 10]);
        assert_eq!(r.probe(&[0], &[Value::Int(1)]).len(), 1);
        r.delete(&tuple![1, 10]);
        assert!(r.probe(&[0], &[Value::Int(1)]).is_empty());
    }

    #[test]
    fn ensure_index_idempotent_and_backfills() {
        let mut r = BaseRelation::new("q", 2);
        r.insert(tuple![5, 50]);
        r.ensure_index(&[0]);
        r.ensure_index(&[0]);
        assert_eq!(r.index_count(), 1);
        assert_eq!(r.probe(&[0], &[Value::Int(5)]).len(), 1);
    }

    #[test]
    fn multi_column_index() {
        let mut r = BaseRelation::new("delivery_time", 3);
        r.insert(tuple![1, 7, 2]);
        r.insert(tuple![1, 8, 3]);
        r.ensure_index(&[0, 1]);
        assert_eq!(r.probe(&[0, 1], &[Value::Int(1), Value::Int(7)]).len(), 1);
    }
}
