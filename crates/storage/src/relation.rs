//! Set-oriented base relations: an LSM-lite of sorted runs with hash
//! indexes on top.
//!
//! A stored AMOSQL function such as `quantity(item) -> integer` compiles
//! to a base relation of arity 2. Relations have *set* semantics (the
//! calculus of the paper is set-oriented, §7.2); inserting an existing
//! tuple or deleting a missing one is a physical no-op and generates no
//! update event.
//!
//! Physically a relation is a small mutable **head** (hash set) plus a
//! stack of immutable **sorted runs** with a tombstone set for deletes
//! that land on run-resident tuples. When the head outgrows the seal
//! threshold it is sorted into a new run, and size-tiered compaction
//! merges neighbouring runs of similar size (a linear co-traversal that
//! also drains tombstones). Reads merge on the fly: membership is one
//! hash probe plus a binary search per run; scans chain the head with
//! the tombstone-filtered runs. The layout is what makes Δ-application
//! and checkpointing linear passes, and it feeds the merge-join planner:
//! [`arrangement`](BaseRelation::arrangement) exposes the content sorted
//! by any column subset, cached until the next mutation.
//!
//! Hash indexes over column subsets still support the index-seeded joins
//! the partial-differential optimizer emits: a differential binds
//! variables from a (small) Δ-set first and probes the remaining
//! literals by key, which is what makes incremental monitoring O(1)-ish
//! in database size (fig. 6).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use amos_types::{FxHashMap, FxHashSet, Tuple, Value};

use crate::arrangement::{Arrangement, SortedRun};

/// Head size at which the mutable head is sealed into a sorted run.
/// Small enough that sealing is cheap, large enough that run counts stay
/// low under bulk loads; overridable per relation for tests and tuning.
pub const DEFAULT_SEAL_THRESHOLD: usize = 1024;

/// Hard cap on the pending maintenance log: a mutation that grows the
/// log to this size folds it immediately, bounding memory for relations
/// that churn heavily but are never probed. The fold's rebuild path
/// makes this O(live content), not O(ops).
const PENDING_FOLD_CAP: usize = 1 << 16;

/// A hash index: projection of the indexed columns → the matching tuples.
#[derive(Debug, Clone, Default)]
struct HashIndex {
    cols: Vec<usize>,
    map: FxHashMap<Tuple, FxHashSet<Tuple>>,
}

impl HashIndex {
    fn key_of(&self, t: &Tuple) -> Tuple {
        t.project(&self.cols)
    }

    fn insert(&mut self, t: &Tuple) {
        self.map
            .entry(self.key_of(t))
            .or_default()
            .insert(t.clone());
    }

    fn remove(&mut self, t: &Tuple) {
        let key = self.key_of(t);
        if let Some(set) = self.map.get_mut(&key) {
            set.remove(t);
            if set.is_empty() {
                self.map.remove(&key);
            }
        }
    }
}

/// The relation's read-optimized derived state — hash indexes and
/// per-column statistics — with merge-on-read maintenance: mutators
/// append one `(is_insert, tuple)` op to `pending` (a single `Vec` push
/// and `Arc` bump no matter how many indexes exist) and the first probe
/// or statistics read after a mutation folds the log in. Derived state
/// that is never read never pays for maintenance, which is what keeps
/// bulk loads (and their rollbacks) off the index-update treadmill.
#[derive(Debug, Clone, Default)]
struct Maintained {
    indexes: Vec<HashIndex>,
    by_cols: FxHashMap<Vec<usize>, usize>,
    /// Per-column value→multiplicity; `ndv(c)` is `col_counts[c].len()`.
    col_counts: Vec<FxHashMap<Value, u32>>,
    /// Mutations not yet folded in, oldest first.
    pending: Vec<(bool, Tuple)>,
}

impl Maintained {
    /// Fold the pending op log into every index and the statistics.
    /// When the log outgrows the live content, rebuilding from `scan`
    /// is cheaper than replaying — a bulk load followed by its rollback
    /// nets to zero content but leaves `2·n` ops, and the rebuild then
    /// costs nothing.
    fn fold_pending<'a>(&mut self, scan: impl Iterator<Item = &'a Tuple> + Clone, live: usize) {
        if self.pending.is_empty() {
            return;
        }
        if self.pending.len() > live.max(16) {
            self.pending.clear();
            for idx in &mut self.indexes {
                idx.map.clear();
            }
            for counts in &mut self.col_counts {
                counts.clear();
            }
            for t in scan {
                self.apply(true, t);
            }
            return;
        }
        for (is_insert, t) in std::mem::take(&mut self.pending) {
            self.apply(is_insert, &t);
        }
    }

    /// Apply one op to every index and the column statistics.
    fn apply(&mut self, is_insert: bool, t: &Tuple) {
        for idx in &mut self.indexes {
            if is_insert {
                idx.insert(t);
            } else {
                idx.remove(t);
            }
        }
        for (c, counts) in self.col_counts.iter_mut().enumerate() {
            if is_insert {
                *counts.entry(t[c].clone()).or_insert(0) += 1;
            } else if let Some(n) = counts.get_mut(&t[c]) {
                *n -= 1;
                if *n == 0 {
                    counts.remove(&t[c]);
                }
            }
        }
    }
}

/// Merge-on-read scan over a relation's physical parts: the head, then
/// each run filtered by the tombstone set. A free function so callers
/// holding a disjoint borrow of the index lock can still scan.
fn scan_parts<'a>(
    head: &'a FxHashSet<Tuple>,
    runs: &'a [SortedRun],
    tombstones: &'a FxHashSet<Tuple>,
) -> impl Iterator<Item = &'a Tuple> + Clone {
    head.iter().chain(
        runs.iter()
            .flat_map(|r| r.iter())
            .filter(move |t| !tombstones.contains(*t)),
    )
}

/// An in-memory, set-oriented base relation over sorted runs.
///
/// Alongside the tuples and indexes it maintains the cheap statistics the
/// adaptive planner feeds on: per-column distinct-value counts (exact,
/// folded in from the maintenance log on read), the run profile (run
/// count and sizes, for merge-join pricing), and a counter of index-less
/// `probe` calls that silently degraded to a full scan.
#[derive(Debug)]
pub struct BaseRelation {
    name: String,
    arity: usize,
    /// Mutable head: recent inserts not yet sealed into a run. Disjoint
    /// from the runs — a tuple lives in exactly one place.
    head: FxHashSet<Tuple>,
    /// Immutable sorted runs, oldest first; mutually disjoint.
    runs: Vec<SortedRun>,
    /// Deletes of run-resident tuples, reconciled at compaction.
    tombstones: FxHashSet<Tuple>,
    /// Logical cardinality: `|head| + Σ|runs| − |tombstones|`.
    live: usize,
    /// Head size that triggers [`seal`](Self::seal).
    seal_threshold: usize,
    /// Runs sealed over the relation's lifetime (introspection).
    seals: u64,
    /// Run merges performed by size-tiered compaction (introspection).
    compactions: u64,
    /// Hash indexes and planner statistics, maintained merge-on-read
    /// (see [`Maintained`]). Behind a lock because probes and statistics
    /// reads (`&self`, possibly parallel) fold the pending op log in
    /// before reading.
    maintained: RwLock<Maintained>,
    /// Lazily built arrangements by column subset; execution state, not
    /// value state — invalidated by every mutation, excluded from
    /// `Clone`.
    arrangements: Mutex<FxHashMap<Vec<usize>, Arc<Arrangement>>>,
    /// Probes that found no matching index and fell back to a scan.
    fallback_scans: AtomicU64,
    /// Distinct column sets that triggered a fallback since the last
    /// [`take_fallback_sites`](Self::take_fallback_sites) drain.
    fallback_sites: Mutex<FxHashSet<Vec<usize>>>,
}

impl Clone for BaseRelation {
    fn clone(&self) -> Self {
        BaseRelation {
            name: self.name.clone(),
            arity: self.arity,
            head: self.head.clone(),
            runs: self.runs.clone(),
            tombstones: self.tombstones.clone(),
            live: self.live,
            seal_threshold: self.seal_threshold,
            seals: self.seals,
            compactions: self.compactions,
            maintained: RwLock::new(
                self.maintained
                    .read()
                    .map(|g| g.clone())
                    .unwrap_or_else(|e| e.into_inner().clone()),
            ),
            arrangements: Mutex::new(FxHashMap::default()),
            fallback_scans: AtomicU64::new(self.fallback_scans.load(Ordering::Relaxed)),
            fallback_sites: Mutex::new(
                self.fallback_sites
                    .lock()
                    .map(|s| s.clone())
                    .unwrap_or_default(),
            ),
        }
    }
}

impl BaseRelation {
    /// Create an empty relation.
    pub fn new(name: impl Into<String>, arity: usize) -> Self {
        BaseRelation {
            name: name.into(),
            arity,
            head: FxHashSet::default(),
            runs: Vec::new(),
            tombstones: FxHashSet::default(),
            live: 0,
            seal_threshold: DEFAULT_SEAL_THRESHOLD,
            seals: 0,
            compactions: 0,
            maintained: RwLock::new(Maintained {
                col_counts: vec![FxHashMap::default(); arity],
                ..Maintained::default()
            }),
            arrangements: Mutex::new(FxHashMap::default()),
            fallback_scans: AtomicU64::new(0),
            fallback_sites: Mutex::new(FxHashSet::default()),
        }
    }

    /// Rebuild a relation from recovered sorted runs *without* pushing
    /// every tuple through the hash head: the runs are adopted as-is
    /// (re-sorted only if a legacy snapshot was unordered) and the
    /// planner statistics are derived in one linear pass.
    pub fn from_runs(name: impl Into<String>, arity: usize, runs: Vec<Vec<Tuple>>) -> Self {
        let mut rel = BaseRelation::new(name, arity);
        for batch in runs {
            let run = SortedRun::from_maybe_sorted(batch);
            if run.is_empty() {
                continue;
            }
            rel.live += run.len();
            rel.runs.push(run);
        }
        let maintained = match rel.maintained.get_mut() {
            Ok(m) => m,
            Err(e) => e.into_inner(),
        };
        for t in rel.runs.iter().flat_map(|r| r.iter()) {
            debug_assert_eq!(t.arity(), arity);
            for (c, counts) in maintained.col_counts.iter_mut().enumerate() {
                *counts.entry(t[c].clone()).or_insert(0) += 1;
            }
        }
        // Recovered runs may overlap only if the writer was not ours;
        // compaction re-establishes disjointness lazily. We trust our
        // own checkpoints (disjoint by construction).
        rel
    }

    /// The relation's name (the stored function's name).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether the relation is empty.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Membership test: one hash probe on the head, then a binary search
    /// per run (tombstones veto run hits).
    pub fn contains(&self, t: &Tuple) -> bool {
        if self.head.contains(t) {
            return true;
        }
        self.runs.iter().any(|r| r.contains(t)) && !self.tombstones.contains(t)
    }

    fn in_runs(&self, t: &Tuple) -> bool {
        self.runs.iter().any(|r| r.contains(t))
    }

    fn invalidate_arrangements(&mut self) {
        if let Ok(map) = self.arrangements.get_mut() {
            if !map.is_empty() {
                map.clear();
            }
        }
    }

    /// Append one op to the maintenance log: a single `Vec` push and
    /// `Arc` bump, however many indexes exist — the derived state
    /// absorbs it at the next read. The cap fold bounds log memory for
    /// relations that churn but are never read; its rebuild path costs
    /// O(live content), not O(ops).
    fn log_op(&mut self, is_insert: bool, t: &Tuple) {
        let m = match self.maintained.get_mut() {
            Ok(m) => m,
            Err(e) => e.into_inner(),
        };
        m.pending.push((is_insert, t.clone()));
        if m.pending.len() >= PENDING_FOLD_CAP {
            let scan = scan_parts(&self.head, &self.runs, &self.tombstones);
            m.fold_pending(scan, self.live);
        }
    }

    /// Insert a tuple. Returns `true` iff the relation changed (set
    /// semantics: re-inserting is a no-op and must not generate a
    /// physical update event).
    ///
    /// # Panics
    /// Panics on arity mismatch — tuples are produced by the compiler
    /// against known signatures, so this is a programming error.
    pub fn insert(&mut self, t: Tuple) -> bool {
        assert_eq!(
            t.arity(),
            self.arity,
            "arity mismatch inserting into `{}`",
            self.name
        );
        if self.head.contains(&t) {
            return false;
        }
        if self.tombstones.remove(&t) {
            // Tombstones only cover run-resident tuples, so clearing one
            // resurrects the tuple without searching the runs.
        } else if self.in_runs(&t) {
            return false; // live in a run already
        } else {
            self.head.insert(t.clone());
        }
        self.live += 1;
        self.log_op(true, &t);
        self.invalidate_arrangements();
        if self.head.len() >= self.seal_threshold {
            self.seal();
        }
        true
    }

    /// Delete a tuple. Returns `true` iff the relation changed.
    pub fn delete(&mut self, t: &Tuple) -> bool {
        if self.head.remove(t) {
            // fall through to bookkeeping
        } else if self.tombstones.contains(t) {
            return false; // already tombstoned — no run search needed
        } else if self.in_runs(t) {
            self.tombstones.insert(t.clone());
        } else {
            return false;
        }
        self.live -= 1;
        self.log_op(false, t);
        self.invalidate_arrangements();
        true
    }

    /// Iterate over all tuples (arbitrary order): the head, then each
    /// run filtered by the tombstone set.
    pub fn scan(&self) -> impl Iterator<Item = &Tuple> + Clone {
        scan_parts(&self.head, &self.runs, &self.tombstones)
    }

    /// Seal the mutable head into a new sorted run and run size-tiered
    /// compaction. Idempotent on an empty head.
    pub fn seal(&mut self) {
        if self.head.is_empty() {
            return;
        }
        let batch: Vec<Tuple> = self.head.drain().collect();
        self.runs.push(SortedRun::from_unsorted(batch));
        self.seals += 1;
        self.compact();
    }

    /// Size-tiered compaction: while the newest run has grown to at
    /// least half its predecessor, merge the two (a linear co-traversal
    /// that drains the tombstones covering them). Logical content is
    /// untouched.
    fn compact(&mut self) {
        while self.runs.len() >= 2 {
            let n = self.runs.len();
            if self.runs[n - 1].len() * 2 < self.runs[n - 2].len() {
                break;
            }
            let newer = self.runs.pop().expect("len checked");
            let older = self.runs.pop().expect("len checked");
            self.runs.push(SortedRun::merge_dropping(
                &older,
                &newer,
                &mut self.tombstones,
            ));
            self.compactions += 1;
        }
    }

    /// Override the seal threshold (tests / tuning). `usize::MAX`
    /// effectively restores pure hash-set behaviour; `1` seals on every
    /// insert. Takes effect on the next insert.
    pub fn set_seal_threshold(&mut self, threshold: usize) {
        self.seal_threshold = threshold.max(1);
    }

    /// Current number of immutable runs.
    pub fn run_count(&self) -> usize {
        self.runs.len()
    }

    /// Sizes of the immutable runs, oldest first (merge-join pricing).
    pub fn run_sizes(&self) -> Vec<usize> {
        self.runs.iter().map(|r| r.len()).collect()
    }

    /// Tuples in the mutable head (not yet sealed).
    pub fn head_len(&self) -> usize {
        self.head.len()
    }

    /// Lifetime count of head seals (introspection).
    pub fn seal_count(&self) -> u64 {
        self.seals
    }

    /// Lifetime count of compaction merges (introspection).
    pub fn compaction_count(&self) -> u64 {
        self.compactions
    }

    /// The relation's content as tombstone-free sorted runs, the head
    /// sealed into a final run — what a checkpoint serializes. Does not
    /// mutate the relation.
    pub fn snapshot_runs(&self) -> Vec<Vec<Tuple>> {
        let mut out: Vec<Vec<Tuple>> = Vec::with_capacity(self.runs.len() + 1);
        for r in &self.runs {
            let live: Vec<Tuple> = r
                .iter()
                .filter(|t| !self.tombstones.contains(*t))
                .cloned()
                .collect();
            if !live.is_empty() {
                out.push(live);
            }
        }
        if !self.head.is_empty() {
            let mut head: Vec<Tuple> = self.head.iter().cloned().collect();
            head.sort_unstable();
            out.push(head);
        }
        out
    }

    /// The relation's content arranged (sorted) by `cols`, built lazily
    /// and cached until the next mutation. This is the base-side input
    /// of a merge join.
    pub fn arrangement(&self, cols: &[usize]) -> Arc<Arrangement> {
        if let Ok(cache) = self.arrangements.lock() {
            if let Some(a) = cache.get(cols) {
                return Arc::clone(a);
            }
        }
        let a = Arc::new(Arrangement::build(self.scan().cloned().collect(), cols));
        if let Ok(mut cache) = self.arrangements.lock() {
            cache.insert(cols.to_vec(), Arc::clone(&a));
        }
        a
    }

    /// Number of cached arrangements (for tests / introspection).
    pub fn arrangement_count(&self) -> usize {
        self.arrangements.lock().map(|m| m.len()).unwrap_or(0)
    }

    /// Ensure a hash index exists over the given columns (sorted,
    /// deduplicated by the caller being consistent; the same column list
    /// always maps to the same index). Any pending maintenance is folded
    /// into the existing indexes first, so the new index (built from a
    /// scan of the current content) and its siblings agree.
    pub fn ensure_index(&mut self, cols: &[usize]) {
        let scan = scan_parts(&self.head, &self.runs, &self.tombstones);
        let m = match self.maintained.get_mut() {
            Ok(m) => m,
            Err(e) => e.into_inner(),
        };
        if m.by_cols.contains_key(cols) {
            return;
        }
        m.fold_pending(scan.clone(), self.live);
        let mut idx = HashIndex {
            cols: cols.to_vec(),
            map: FxHashMap::default(),
        };
        for t in scan {
            idx.insert(t);
        }
        m.by_cols.insert(cols.to_vec(), m.indexes.len());
        m.indexes.push(idx);
    }

    /// Whether an index over exactly these columns exists.
    pub fn has_index(&self, cols: &[usize]) -> bool {
        match self.maintained.read() {
            Ok(m) => m.by_cols.contains_key(cols),
            Err(e) => e.into_inner().by_cols.contains_key(cols),
        }
    }

    /// Probe an index: all tuples whose projection onto `cols` equals
    /// `key` (owned — tuples are interned, so the clones are reference
    /// bumps). Requires [`ensure_index`](Self::ensure_index) to have
    /// been called for `cols` (the plan compiler does this); falls back
    /// to a scan-filter if not, so correctness never depends on index
    /// presence. The first probe after a mutation folds the pending
    /// maintenance log in (merge-on-read).
    pub fn probe(&self, cols: &[usize], key: &[Value]) -> Vec<Tuple> {
        {
            let m = match self.maintained.read() {
                Ok(g) => g,
                Err(e) => e.into_inner(),
            };
            if let Some(&i) = m.by_cols.get(cols) {
                if m.pending.is_empty() {
                    let key_tuple = Tuple::new(key.to_vec());
                    return match m.indexes[i].map.get(&key_tuple) {
                        Some(set) => set.iter().cloned().collect(),
                        None => Vec::new(),
                    };
                }
                drop(m);
                let mut m = match self.maintained.write() {
                    Ok(g) => g,
                    Err(e) => e.into_inner(),
                };
                m.fold_pending(
                    scan_parts(&self.head, &self.runs, &self.tombstones),
                    self.live,
                );
                let key_tuple = Tuple::new(key.to_vec());
                return match m.indexes[i].map.get(&key_tuple) {
                    Some(set) => set.iter().cloned().collect(),
                    None => Vec::new(),
                };
            }
        }
        self.fallback_scans.fetch_add(1, Ordering::Relaxed);
        if let Ok(mut sites) = self.fallback_sites.lock() {
            sites.insert(cols.to_vec());
        }
        self.scan()
            .filter(|t| cols.iter().zip(key).all(|(&c, v)| &t[c] == v))
            .cloned()
            .collect()
    }

    /// Number of maintained indexes (for tests / introspection).
    pub fn index_count(&self) -> usize {
        match self.maintained.read() {
            Ok(m) => m.indexes.len(),
            Err(e) => e.into_inner().indexes.len(),
        }
    }

    /// Number of distinct values in column `col` (exact). Like probes,
    /// the first read after a mutation folds the pending maintenance log
    /// in. Out-of-range columns report 0.
    pub fn ndv(&self, col: usize) -> usize {
        {
            let m = match self.maintained.read() {
                Ok(g) => g,
                Err(e) => e.into_inner(),
            };
            if m.pending.is_empty() {
                return m.col_counts.get(col).map_or(0, |c| c.len());
            }
        }
        let mut m = match self.maintained.write() {
            Ok(g) => g,
            Err(e) => e.into_inner(),
        };
        m.fold_pending(
            scan_parts(&self.head, &self.runs, &self.tombstones),
            self.live,
        );
        m.col_counts.get(col).map_or(0, |c| c.len())
    }

    /// Total index-less probes that degraded to a full scan-filter.
    pub fn fallback_scans(&self) -> u64 {
        self.fallback_scans.load(Ordering::Relaxed)
    }

    /// Drain the distinct column sets that triggered a fallback scan
    /// since the previous drain (used for once-per-pass logging).
    pub fn take_fallback_sites(&self) -> Vec<Vec<usize>> {
        match self.fallback_sites.lock() {
            Ok(mut sites) => {
                let mut out: Vec<Vec<usize>> = sites.drain().collect();
                out.sort();
                out
            }
            Err(_) => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amos_types::tuple;

    #[test]
    fn set_semantics() {
        let mut r = BaseRelation::new("q", 2);
        assert!(r.insert(tuple![1, 2]));
        assert!(!r.insert(tuple![1, 2]), "re-insert is a no-op");
        assert!(r.delete(&tuple![1, 2]));
        assert!(!r.delete(&tuple![1, 2]), "re-delete is a no-op");
        assert!(r.is_empty());
    }

    #[test]
    fn set_semantics_across_runs() {
        let mut r = BaseRelation::new("q", 1);
        r.set_seal_threshold(2);
        for i in 0..6 {
            assert!(r.insert(tuple![i]));
        }
        assert!(r.run_count() >= 1, "threshold 2 must have sealed");
        assert!(!r.insert(tuple![0]), "re-insert of run-resident tuple");
        assert!(r.delete(&tuple![0]), "delete tombstones a run tuple");
        assert!(!r.delete(&tuple![0]), "re-delete is a no-op");
        assert!(!r.contains(&tuple![0]));
        assert_eq!(r.len(), 5);
        assert!(r.insert(tuple![0]), "resurrection clears the tombstone");
        assert!(r.contains(&tuple![0]));
        assert_eq!(r.len(), 6);
        let mut all: Vec<_> = r.scan().cloned().collect();
        all.sort();
        assert_eq!(all, (0..6).map(|i| tuple![i]).collect::<Vec<_>>());
    }

    #[test]
    fn compaction_preserves_content_and_drains_tombstones() {
        let mut r = BaseRelation::new("q", 1);
        r.set_seal_threshold(4);
        for i in 0..64 {
            r.insert(tuple![i]);
        }
        for i in (0..64).step_by(3) {
            r.delete(&tuple![i]);
        }
        let before: Vec<_> = {
            let mut v: Vec<_> = r.scan().cloned().collect();
            v.sort();
            v
        };
        r.seal(); // force the head out and compact
        assert!(r.compaction_count() > 0, "size-tiered merges happened");
        let mut after: Vec<_> = r.scan().cloned().collect();
        after.sort();
        assert_eq!(before, after);
        assert_eq!(r.len(), after.len());
    }

    #[test]
    fn from_runs_matches_inserts() {
        let mut by_insert = BaseRelation::new("q", 2);
        for i in 0..10 {
            by_insert.insert(tuple![i, i % 3]);
        }
        let by_runs = BaseRelation::from_runs(
            "q",
            2,
            vec![
                (0..5).map(|i| tuple![i, i % 3]).collect(),
                (5..10).map(|i| tuple![i, i % 3]).collect(),
            ],
        );
        assert_eq!(by_runs.len(), 10);
        assert_eq!(by_runs.ndv(0), by_insert.ndv(0));
        assert_eq!(by_runs.ndv(1), by_insert.ndv(1));
        for i in 0..10 {
            assert!(by_runs.contains(&tuple![i, i % 3]));
        }
        assert_eq!(by_runs.run_count(), 2, "runs adopted without rehydration");
        assert_eq!(by_runs.head_len(), 0);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_checked() {
        let mut r = BaseRelation::new("q", 2);
        r.insert(tuple![1]);
    }

    #[test]
    fn probe_with_index() {
        let mut r = BaseRelation::new("q", 2);
        r.insert(tuple![1, 10]);
        r.insert(tuple![1, 11]);
        r.insert(tuple![2, 20]);
        r.ensure_index(&[0]);
        let mut hits: Vec<_> = r.probe(&[0], &[Value::Int(1)]);
        hits.sort();
        assert_eq!(hits, vec![tuple![1, 10], tuple![1, 11]]);
        assert!(r.probe(&[0], &[Value::Int(3)]).is_empty());
    }

    #[test]
    fn probe_without_index_scans() {
        let mut r = BaseRelation::new("q", 2);
        r.insert(tuple![1, 10]);
        r.insert(tuple![2, 10]);
        let mut hits = r.probe(&[1], &[Value::Int(10)]);
        hits.sort();
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn index_maintained_across_updates() {
        let mut r = BaseRelation::new("q", 2);
        r.ensure_index(&[0]);
        r.insert(tuple![1, 10]);
        assert_eq!(r.probe(&[0], &[Value::Int(1)]).len(), 1);
        r.delete(&tuple![1, 10]);
        assert!(r.probe(&[0], &[Value::Int(1)]).is_empty());
    }

    #[test]
    fn index_maintained_across_seal_and_tombstone() {
        let mut r = BaseRelation::new("q", 2);
        r.ensure_index(&[0]);
        r.set_seal_threshold(2);
        for i in 0..8 {
            r.insert(tuple![i % 4, i]);
        }
        assert_eq!(r.probe(&[0], &[Value::Int(1)]).len(), 2);
        r.delete(&tuple![1, 1]);
        assert_eq!(r.probe(&[0], &[Value::Int(1)]).len(), 1, "tombstoned");
        r.insert(tuple![1, 1]);
        assert_eq!(r.probe(&[0], &[Value::Int(1)]).len(), 2, "resurrected");
    }

    #[test]
    fn ensure_index_idempotent_and_backfills() {
        let mut r = BaseRelation::new("q", 2);
        r.insert(tuple![5, 50]);
        r.ensure_index(&[0]);
        r.ensure_index(&[0]);
        assert_eq!(r.index_count(), 1);
        assert_eq!(r.probe(&[0], &[Value::Int(5)]).len(), 1);
    }

    #[test]
    fn ndv_maintained_on_insert_and_delete() {
        let mut r = BaseRelation::new("q", 2);
        assert_eq!(r.ndv(0), 0);
        r.insert(tuple![1, 10]);
        r.insert(tuple![1, 11]);
        r.insert(tuple![2, 10]);
        assert_eq!(r.ndv(0), 2, "two distinct values in col 0");
        assert_eq!(r.ndv(1), 2, "two distinct values in col 1");
        r.delete(&tuple![1, 10]);
        assert_eq!(r.ndv(0), 2, "value 1 still present via (1,11)");
        r.delete(&tuple![1, 11]);
        assert_eq!(r.ndv(0), 1, "value 1 fully gone");
        assert_eq!(r.ndv(7), 0, "out-of-range column");
    }

    #[test]
    fn fallback_scans_counted_and_sites_drained() {
        let mut r = BaseRelation::new("q", 2);
        r.insert(tuple![1, 10]);
        r.ensure_index(&[0]);
        r.probe(&[0], &[Value::Int(1)]);
        assert_eq!(r.fallback_scans(), 0, "indexed probe is not a fallback");
        r.probe(&[1], &[Value::Int(10)]);
        r.probe(&[1], &[Value::Int(11)]);
        assert_eq!(r.fallback_scans(), 2);
        assert_eq!(r.take_fallback_sites(), vec![vec![1]]);
        assert!(r.take_fallback_sites().is_empty(), "drain empties the set");
        let cloned = r.clone();
        assert_eq!(cloned.fallback_scans(), 2);
        assert_eq!(cloned.ndv(0), 1);
    }

    #[test]
    fn arrangement_cached_and_invalidated() {
        let mut r = BaseRelation::new("q", 2);
        r.set_seal_threshold(2);
        for i in 0..8 {
            r.insert(tuple![i, i % 3]);
        }
        let a = r.arrangement(&[1]);
        assert_eq!(a.equal_range(&[Value::Int(0)]).len(), 3);
        assert_eq!(r.arrangement_count(), 1);
        assert!(Arc::ptr_eq(&a, &r.arrangement(&[1])), "cache hit");
        r.insert(tuple![100, 0]);
        assert_eq!(r.arrangement_count(), 0, "mutation invalidates");
        assert_eq!(r.arrangement(&[1]).equal_range(&[Value::Int(0)]).len(), 4);
    }

    #[test]
    fn snapshot_runs_cover_content_without_tombstones() {
        let mut r = BaseRelation::new("q", 1);
        r.set_seal_threshold(3);
        for i in 0..10 {
            r.insert(tuple![i]);
        }
        r.delete(&tuple![4]);
        let runs = r.snapshot_runs();
        let mut flat: Vec<Tuple> = runs.into_iter().flatten().collect();
        flat.sort();
        let mut expect: Vec<Tuple> = r.scan().cloned().collect();
        expect.sort();
        assert_eq!(flat, expect);
        assert!(!flat.contains(&tuple![4]));
    }

    #[test]
    fn multi_column_index() {
        let mut r = BaseRelation::new("delivery_time", 3);
        r.insert(tuple![1, 7, 2]);
        r.insert(tuple![1, 8, 3]);
        r.ensure_index(&[0, 1]);
        assert_eq!(r.probe(&[0, 1], &[Value::Int(1), Value::Int(7)]).len(), 1);
    }
}
