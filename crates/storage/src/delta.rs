//! Δ-sets and the delta-union operator `∪Δ` (paper §4.1, §4.5).
//!
//! A Δ-set is a **disjoint** pair `<Δ₊S, Δ₋S>` of the tuples added to and
//! removed from a set `S` over a period of time (here: since the start of
//! the current transaction, or since the start of a propagation step for
//! derived relations).
//!
//! Physical update events fold into a Δ-set so that only *logical* (net)
//! events remain: inserting a tuple that is pending deletion cancels the
//! deletion instead of recording an insertion, and vice versa. The §4.1
//! `min_stock` double-update example therefore folds to the empty Δ-set —
//! see the `min_stock_example_has_no_net_effect` unit test.

use std::fmt;
use std::sync::{Arc, RwLock};

use amos_types::{FxHashMap, FxHashSet, Tuple, Value};

use crate::arrangement::Arrangement;

/// Whether a change, Δ-set side, or differential concerns insertions
/// (`Δ₊`) or deletions (`Δ₋`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Polarity {
    /// Insertions (`Δ₊`).
    Plus,
    /// Deletions (`Δ₋`).
    Minus,
}

impl Polarity {
    /// The opposite polarity — deletions from `R` *insert* into `Q − R`.
    pub fn flipped(self) -> Polarity {
        match self {
            Polarity::Plus => Polarity::Minus,
            Polarity::Minus => Polarity::Plus,
        }
    }
}

impl fmt::Display for Polarity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Polarity::Plus => write!(f, "Δ+"),
            Polarity::Minus => write!(f, "Δ-"),
        }
    }
}

/// Below this side size a Δ-probe just scan-filters: arranging a
/// handful of tuples costs more than the scan it saves.
const DELTA_INDEX_THRESHOLD: usize = 16;

/// Past this combined size, `∪Δ` switches from hash-set differences to
/// the sorted linear co-traversal (the arrangement idiom: sort once,
/// cancel in one merge pass).
const DELTA_UNION_SORT_THRESHOLD: usize = 64;

/// Cache of lazily-built Δ-side arrangements, keyed by side and key
/// columns.
type ArrangementCache = RwLock<FxHashMap<(Polarity, Vec<usize>), Arc<Arrangement>>>;

/// A disjoint pair of inserted (`Δ₊`) and deleted (`Δ₋`) tuples.
///
/// Carries a cache of lazy per-column-set [`Arrangement`]s so that a
/// Δ-literal scheduled *after* binding literals (the adaptive planner's
/// scan-then-probe order for bulk loads) probes the Δ-set by binary
/// search instead of scanning it, and so that a merge join can zipper
/// the Δ-side against a base-relation arrangement without building any
/// hash table. The cache is execution state, not value state: it is
/// invalidated by every mutation and excluded from `Clone`/`PartialEq`.
#[derive(Debug, Default)]
pub struct DeltaSet {
    plus: FxHashSet<Tuple>,
    minus: FxHashSet<Tuple>,
    indexes: ArrangementCache,
}

impl Clone for DeltaSet {
    fn clone(&self) -> Self {
        DeltaSet {
            plus: self.plus.clone(),
            minus: self.minus.clone(),
            indexes: RwLock::new(FxHashMap::default()),
        }
    }
}

impl PartialEq for DeltaSet {
    fn eq(&self, other: &Self) -> bool {
        self.plus == other.plus && self.minus == other.minus
    }
}

impl Eq for DeltaSet {}

impl DeltaSet {
    /// The empty Δ-set.
    pub fn new() -> Self {
        DeltaSet::default()
    }

    fn from_sets(plus: FxHashSet<Tuple>, minus: FxHashSet<Tuple>) -> Self {
        DeltaSet {
            plus,
            minus,
            indexes: RwLock::new(FxHashMap::default()),
        }
    }

    /// Drop all cached Δ-side arrangements; must be called by every
    /// mutator.
    fn invalidate_indexes(&mut self) {
        if let Ok(map) = self.indexes.get_mut() {
            if !map.is_empty() {
                map.clear();
            }
        }
    }

    /// Build from explicit plus/minus sets.
    ///
    /// # Panics
    /// Panics if the two sets are not disjoint — the disjointness
    /// invariant is what makes `∪Δ` and logical rollback correct.
    pub fn from_parts(plus: FxHashSet<Tuple>, minus: FxHashSet<Tuple>) -> Self {
        assert!(
            plus.is_disjoint(&minus),
            "Δ-set invariant violated: Δ₊ ∩ Δ₋ ≠ ∅"
        );
        DeltaSet::from_sets(plus, minus)
    }

    /// The set of inserted tuples `Δ₊S`.
    pub fn plus(&self) -> &FxHashSet<Tuple> {
        &self.plus
    }

    /// The set of deleted tuples `Δ₋S`.
    pub fn minus(&self) -> &FxHashSet<Tuple> {
        &self.minus
    }

    /// The side selected by `polarity`.
    pub fn side(&self, polarity: Polarity) -> &FxHashSet<Tuple> {
        match polarity {
            Polarity::Plus => &self.plus,
            Polarity::Minus => &self.minus,
        }
    }

    /// True when there is no net change.
    pub fn is_empty(&self) -> bool {
        self.plus.is_empty() && self.minus.is_empty()
    }

    /// Total number of net changes (`|Δ₊| + |Δ₋|`).
    pub fn len(&self) -> usize {
        self.plus.len() + self.minus.len()
    }

    /// Fold a physical *insert* event into the Δ-set.
    ///
    /// If the tuple is pending deletion the two events cancel (a logical
    /// no-op); otherwise it becomes a pending insertion.
    pub fn apply_insert(&mut self, t: Tuple) {
        self.invalidate_indexes();
        if !self.minus.remove(&t) {
            self.plus.insert(t);
        }
    }

    /// Fold a physical *delete* event into the Δ-set.
    pub fn apply_delete(&mut self, t: Tuple) {
        self.invalidate_indexes();
        if !self.plus.remove(&t) {
            self.minus.insert(t);
        }
    }

    /// Record an insertion coming from a partial differential during
    /// propagation. Unlike [`apply_insert`](Self::apply_insert) this is
    /// the `∪Δ` single-tuple case: the paper accumulates differential
    /// results with `∪Δ`, performed in the order the changes occurred.
    pub fn delta_union_insert(&mut self, t: Tuple) {
        self.apply_insert(t);
    }

    /// Record a deletion coming from a partial differential (single-tuple
    /// `∪Δ`).
    pub fn delta_union_delete(&mut self, t: Tuple) {
        self.apply_delete(t);
    }

    /// The delta-union `self ∪Δ other`, with `other` the *later* change
    /// (the operator is not commutative under set semantics — §7.2).
    ///
    /// Defined in §4.1/§4.5 as
    /// `<(Δ₊₁ − Δ₋₂) ∪ (Δ₊₂ − Δ₋₁), (Δ₋₁ − Δ₊₂) ∪ (Δ₋₂ − Δ₊₁)>`.
    ///
    /// ```
    /// use amos_storage::DeltaSet;
    /// use amos_types::tuple;
    /// let mut d1 = DeltaSet::new();
    /// d1.apply_insert(tuple![1]);
    /// let mut d2 = DeltaSet::new();
    /// d2.apply_delete(tuple![1]); // later deletion cancels the insert
    /// assert!(d1.delta_union(&d2).is_empty());
    /// ```
    pub fn delta_union(&self, other: &DeltaSet) -> DeltaSet {
        if self.len() + other.len() >= DELTA_UNION_SORT_THRESHOLD {
            return self.delta_union_sorted(other);
        }
        let plus: FxHashSet<Tuple> = self
            .plus
            .difference(&other.minus)
            .chain(other.plus.difference(&self.minus))
            .cloned()
            .collect();
        let minus: FxHashSet<Tuple> = self
            .minus
            .difference(&other.plus)
            .chain(other.minus.difference(&self.plus))
            .cloned()
            .collect();
        DeltaSet::from_sets(plus, minus)
    }

    /// The `∪Δ` cancellation as linear co-traversals over sorted runs:
    /// each side is sorted once, then every set difference in the §4.1
    /// formula is a single merge pass. Identical result to the hash
    /// formula (pinned by `delta_union_sorted_matches_formula`); wins
    /// once the Δ-sets are large enough to make hash churn the cost.
    fn delta_union_sorted(&self, other: &DeltaSet) -> DeltaSet {
        fn sorted(set: &FxHashSet<Tuple>) -> Vec<Tuple> {
            let mut v: Vec<Tuple> = set.iter().cloned().collect();
            v.sort_unstable();
            v
        }
        /// `a − b` for sorted, duplicate-free slices, in one pass.
        fn difference(a: &[Tuple], b: &[Tuple], out: &mut FxHashSet<Tuple>) {
            let mut j = 0;
            for t in a {
                while j < b.len() && b[j] < *t {
                    j += 1;
                }
                if j >= b.len() || b[j] != *t {
                    out.insert(t.clone());
                }
            }
        }
        let (p1, m1) = (sorted(&self.plus), sorted(&self.minus));
        let (p2, m2) = (sorted(&other.plus), sorted(&other.minus));
        let mut plus = FxHashSet::default();
        difference(&p1, &m2, &mut plus);
        difference(&p2, &m1, &mut plus);
        let mut minus = FxHashSet::default();
        difference(&m1, &p2, &mut minus);
        difference(&m2, &p1, &mut minus);
        DeltaSet::from_sets(plus, minus)
    }

    /// In-place `self = self ∪Δ other`, consuming `other`.
    pub fn delta_union_assign(&mut self, other: DeltaSet) {
        // Fold other's events one by one; for disjoint Δ-sets this equals
        // the set formula (each tuple appears on at most one side of each
        // operand) and avoids rebuilding both hash sets.
        for t in other.plus {
            self.apply_insert(t);
        }
        for t in other.minus {
            self.apply_delete(t);
        }
    }

    /// Remove all changes (the paper clears wave-front Δ-sets after a
    /// node's out-edges have been processed, §5).
    pub fn clear(&mut self) {
        self.invalidate_indexes();
        self.plus.clear();
        self.minus.clear();
    }

    /// Take the contents, leaving this Δ-set empty.
    pub fn take(&mut self) -> DeltaSet {
        self.invalidate_indexes();
        DeltaSet::from_sets(
            std::mem::take(&mut self.plus),
            std::mem::take(&mut self.minus),
        )
    }

    /// Check the disjointness invariant (used by debug assertions and
    /// property tests).
    pub fn invariant_holds(&self) -> bool {
        self.plus.is_disjoint(&self.minus)
    }

    /// All tuples on `polarity`'s side whose projection onto `cols`
    /// equals `key`.
    ///
    /// Small sides are scan-filtered directly; past
    /// [`DELTA_INDEX_THRESHOLD`] the side is arranged by `cols` lazily
    /// (sorted once, cached until the next mutation), making repeated
    /// probes a binary search with no per-tuple key allocation. Returns
    /// owned tuples — interning makes the clones reference bumps.
    pub fn probe(&self, polarity: Polarity, cols: &[usize], key: &[Value]) -> Vec<Tuple> {
        let side = self.side(polarity);
        if side.len() < DELTA_INDEX_THRESHOLD {
            return side
                .iter()
                .filter(|t| cols.iter().zip(key).all(|(&c, v)| &t[c] == v))
                .cloned()
                .collect();
        }
        self.arrangement(polarity, cols).equal_range(key).to_vec()
    }

    /// Number of cached Δ-side arrangements (for tests / introspection).
    pub fn index_count(&self) -> usize {
        self.indexes.read().map(|m| m.len()).unwrap_or(0)
    }

    /// The side's tuples arranged (sorted) by `cols`, built lazily and
    /// cached until the next mutation. The Δ-side input of a merge join
    /// — unlike [`probe`](Self::probe) this always arranges, because the
    /// caller wants the whole sorted sequence, not one key block.
    pub fn arrangement(&self, polarity: Polarity, cols: &[usize]) -> Arc<Arrangement> {
        if let Ok(cache) = self.indexes.read() {
            if let Some(a) = cache.get(&(polarity, cols.to_vec())) {
                return Arc::clone(a);
            }
        }
        let a = Arc::new(Arrangement::build(
            self.side(polarity).iter().cloned().collect(),
            cols,
        ));
        if let Ok(mut cache) = self.indexes.write() {
            cache.insert((polarity, cols.to_vec()), Arc::clone(&a));
        }
        a
    }
}

impl fmt::Display for DeltaSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut plus: Vec<String> = self.plus.iter().map(|t| t.to_string()).collect();
        let mut minus: Vec<String> = self.minus.iter().map(|t| t.to_string()).collect();
        plus.sort();
        minus.sort();
        write!(f, "<+{{{}}}, -{{{}}}>", plus.join(", "), minus.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amos_types::{tuple, Value};

    fn delta(plus: &[Tuple], minus: &[Tuple]) -> DeltaSet {
        DeltaSet::from_parts(
            plus.iter().cloned().collect(),
            minus.iter().cloned().collect(),
        )
    }

    /// The §4.1 running example: two `set min_stock` updates that restore
    /// the original value produce four physical events and an empty
    /// logical Δ-set.
    #[test]
    fn min_stock_example_has_no_net_effect() {
        let item = Value::Int(1); // stands in for :item1
        let mut d = DeltaSet::new();
        // set min_stock(:item1) = 150;  (was 100)
        d.apply_delete(tuple![item.clone(), 100]);
        assert_eq!(d, delta(&[], &[tuple![item.clone(), 100]]));
        d.apply_insert(tuple![item.clone(), 150]);
        assert_eq!(
            d,
            delta(&[tuple![item.clone(), 150]], &[tuple![item.clone(), 100]])
        );
        // set min_stock(:item1) = 100;
        d.apply_delete(tuple![item.clone(), 150]);
        assert_eq!(d, delta(&[], &[tuple![item.clone(), 100]]));
        d.apply_insert(tuple![item.clone(), 100]);
        assert!(d.is_empty());
    }

    #[test]
    fn insert_then_delete_cancels() {
        let mut d = DeltaSet::new();
        d.apply_insert(tuple![1]);
        d.apply_delete(tuple![1]);
        assert!(d.is_empty());
    }

    #[test]
    fn delete_then_insert_cancels() {
        let mut d = DeltaSet::new();
        d.apply_delete(tuple![1]);
        d.apply_insert(tuple![1]);
        assert!(d.is_empty());
    }

    #[test]
    fn delta_union_formula() {
        // Δ1 = <{a}, {b}>, Δ2 = <{b}, {a}> — they exactly cancel.
        let d1 = delta(&[tuple![1]], &[tuple![2]]);
        let d2 = delta(&[tuple![2]], &[tuple![1]]);
        assert!(d1.delta_union(&d2).is_empty());
    }

    #[test]
    fn delta_union_merges_disjoint_changes() {
        let d1 = delta(&[tuple![1]], &[]);
        let d2 = delta(&[tuple![2]], &[tuple![3]]);
        let u = d1.delta_union(&d2);
        assert_eq!(u, delta(&[tuple![1], tuple![2]], &[tuple![3]]));
    }

    #[test]
    fn delta_union_assign_matches_formula() {
        let d1 = delta(&[tuple![1], tuple![4]], &[tuple![2]]);
        let d2 = delta(&[tuple![2]], &[tuple![4], tuple![5]]);
        let by_formula = d1.delta_union(&d2);
        let mut by_fold = d1.clone();
        by_fold.delta_union_assign(d2);
        assert_eq!(by_formula, by_fold);
    }

    #[test]
    fn invariant_checked_on_from_parts() {
        let result = std::panic::catch_unwind(|| {
            delta(&[tuple![1]], &[tuple![1]]);
        });
        assert!(result.is_err());
    }

    #[test]
    fn take_empties_the_source() {
        let mut d = delta(&[tuple![1]], &[tuple![2]]);
        let taken = d.take();
        assert!(d.is_empty());
        assert_eq!(taken.len(), 2);
    }

    #[test]
    fn probe_matches_scan_filter_on_both_sides_of_threshold() {
        let mut d = DeltaSet::new();
        // Small side: below DELTA_INDEX_THRESHOLD, no index is built.
        for i in 0..4 {
            d.apply_insert(tuple![i % 2, i]);
        }
        let mut got = d.probe(Polarity::Plus, &[0], &[Value::Int(1)]);
        got.sort();
        assert_eq!(got, vec![tuple![1, 1], tuple![1, 3]]);
        assert_eq!(d.index_count(), 0, "small side stays index-free");

        // Large side: the lazy index kicks in and agrees with the scan.
        for i in 4..40 {
            d.apply_insert(tuple![i % 2, i]);
        }
        let mut indexed = d.probe(Polarity::Plus, &[0], &[Value::Int(0)]);
        indexed.sort();
        let mut scanned: Vec<Tuple> = d
            .plus()
            .iter()
            .filter(|t| t[0] == Value::Int(0))
            .cloned()
            .collect();
        scanned.sort();
        assert_eq!(indexed, scanned);
        assert_eq!(d.index_count(), 1);
        // Cache hit path returns the same answer.
        assert_eq!(d.probe(Polarity::Plus, &[0], &[Value::Int(0)]).len(), 20);
        // Missing key probes return nothing.
        assert!(d.probe(Polarity::Plus, &[0], &[Value::Int(9)]).is_empty());
        assert!(d.probe(Polarity::Minus, &[0], &[Value::Int(0)]).is_empty());
    }

    #[test]
    fn mutation_invalidates_cached_indexes() {
        let mut d = DeltaSet::new();
        for i in 0..40 {
            d.apply_insert(tuple![7, i]);
        }
        assert_eq!(d.probe(Polarity::Plus, &[0], &[Value::Int(7)]).len(), 40);
        assert_eq!(d.index_count(), 1);
        d.apply_insert(tuple![7, 100]);
        assert_eq!(d.index_count(), 0, "insert dropped the stale index");
        assert_eq!(d.probe(Polarity::Plus, &[0], &[Value::Int(7)]).len(), 41);
        d.apply_delete(tuple![7, 100]);
        assert_eq!(d.probe(Polarity::Plus, &[0], &[Value::Int(7)]).len(), 40);
        d.clear();
        assert!(d.probe(Polarity::Plus, &[0], &[Value::Int(7)]).is_empty());
    }

    #[test]
    fn clone_and_eq_ignore_index_cache() {
        let mut d = DeltaSet::new();
        for i in 0..40 {
            d.apply_insert(tuple![i, i]);
        }
        d.probe(Polarity::Plus, &[0], &[Value::Int(1)]);
        assert_eq!(d.index_count(), 1);
        let c = d.clone();
        assert_eq!(c.index_count(), 0, "clone starts with a cold cache");
        assert_eq!(c, d, "equality is on Δ contents only");
    }

    #[test]
    fn delta_union_sorted_matches_formula() {
        // Large overlapping Δ-sets: the sorted co-traversal path engages
        // (combined size past DELTA_UNION_SORT_THRESHOLD) and must agree
        // with the event-fold oracle.
        let mut d1 = DeltaSet::new();
        for i in 0..50 {
            if i % 2 == 0 {
                d1.apply_insert(tuple![i]);
            } else {
                d1.apply_delete(tuple![i]);
            }
        }
        let mut d2 = DeltaSet::new();
        for i in 25..75 {
            if i % 3 == 0 {
                d2.apply_insert(tuple![i]);
            } else {
                d2.apply_delete(tuple![i]);
            }
        }
        assert!(d1.len() + d2.len() >= super::DELTA_UNION_SORT_THRESHOLD);
        let by_sorted = d1.delta_union(&d2);
        let by_fold = {
            let mut c = d1.clone();
            c.delta_union_assign(d2.clone());
            c
        };
        assert_eq!(by_sorted, by_fold);
        assert!(by_sorted.invariant_holds());
    }

    #[test]
    fn arrangement_exposes_sorted_side() {
        let mut d = DeltaSet::new();
        for i in 0..20 {
            d.apply_insert(tuple![i, i % 4]);
        }
        let a = d.arrangement(Polarity::Plus, &[1]);
        assert_eq!(a.len(), 20);
        assert_eq!(a.equal_range(&[Value::Int(2)]).len(), 5);
        // Cached until mutation, shared with probe's cache.
        assert_eq!(d.index_count(), 1);
        d.apply_insert(tuple![100, 2]);
        assert_eq!(d.index_count(), 0);
        assert_eq!(
            d.arrangement(Polarity::Plus, &[1])
                .equal_range(&[Value::Int(2)])
                .len(),
            6
        );
        assert!(d.arrangement(Polarity::Minus, &[1]).is_empty());
    }

    #[test]
    fn display_is_sorted_and_stable() {
        let d = delta(&[tuple![2], tuple![1]], &[tuple![3]]);
        assert_eq!(d.to_string(), "<+{(1), (2)}, -{(3)}>");
    }
}
