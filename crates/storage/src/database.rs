//! The storage database: base relations + transactions + monitored
//! Δ-set accumulation.
//!
//! The paper (§4.1): "During database transactions, before these physical
//! update events are written to the log, a check is made if a stored base
//! relation was updated that might change the truth value of some
//! activated rule condition. If so, the physical events are accumulated
//! in a Δ-set … Only those functions that are influents of some rule
//! condition need Δ-sets." — i.e. *no overhead on operations that do not
//! affect any rule*.
//!
//! [`Storage`] implements exactly that contract: relations are marked
//! monitored when a rule depending on them is activated; only then do
//! updates pay the Δ-set accumulation cost. The rule layer reads the
//! accumulated Δ-sets at the deferred check phase and clears them.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::path::Path;
use std::sync::Mutex;

use amos_types::{Oid, OidGenerator, Tuple, Value};

use crate::delta::DeltaSet;
use crate::error::StorageError;
use crate::log::{LogOp, UpdateLog};
use crate::oldstate::OldStateView;
use crate::relation::BaseRelation;
use crate::snapshot::{self, Snapshot, SnapshotRelation, SNAPSHOT_FILE};
use crate::txn::TxnVersion;
use crate::wal::{CommitWaiter, WalConfig, WalMetrics, WalRecord, WalWriter};

/// Identifier of a base relation within a [`Storage`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RelId(pub u32);

/// An opaque position in the undo log, for partial rollback
/// ([`Storage::rollback_to`]). A savepoint is only valid within the
/// transaction epoch it was taken in: any `begin`, `commit`, or
/// `rollback` invalidates it (the undo log it indexed into is gone),
/// and [`Storage::rollback_to`] rejects it with
/// [`StorageError::StaleSavepoint`] instead of undoing an unrelated
/// log suffix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Savepoint {
    log_len: usize,
    epoch: u64,
}

/// What [`Storage::attach_wal`] found and replayed from disk.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryInfo {
    /// Whether a snapshot was loaded.
    pub snapshot_loaded: bool,
    /// Sequence number the snapshot covered (0 without one).
    pub snapshot_seq: u64,
    /// WAL batches replayed on top of the snapshot.
    pub batches_replayed: usize,
    /// WAL records replayed on top of the snapshot.
    pub records_replayed: usize,
    /// Bytes of torn tail discarded (crash debris past the last valid
    /// batch).
    pub torn_tail_bytes: u64,
    /// Highest committed sequence number recovered.
    pub last_seq: u64,
}

/// The database of base relations.
#[derive(Debug, Default)]
pub struct Storage {
    relations: Vec<BaseRelation>,
    by_name: HashMap<String, RelId>,
    /// Relations that are influents of some activated rule condition.
    monitored: HashSet<RelId>,
    /// Accumulated logical events for monitored relations, keyed by
    /// relation. Present only while non-empty.
    deltas: HashMap<RelId, DeltaSet>,
    log: UpdateLog,
    txn_open: bool,
    /// Bumped whenever the undo log's identity changes (`begin`,
    /// `commit`, `rollback`); savepoints record it so stale ones are
    /// rejected rather than silently undoing an unrelated log suffix.
    epoch: u64,
    oids: OidGenerator,
    /// Durable log of committed batches, when attached.
    wal: Option<WalWriter>,
    /// Names of relations materialized by recovery that no DDL has
    /// claimed yet: the next `create_relation` with a matching name and
    /// arity *adopts* the recovered data instead of erroring, so
    /// re-running the schema script after a restart just works.
    recovered: HashSet<String>,
    /// Relations declared append-only by the caller. Advisory schema
    /// metadata: the network builder prunes Δ₋ differentials on these
    /// relations, which is sound only while the caller honours the
    /// no-deletes contract.
    append_only: HashSet<RelId>,
    /// Seal-threshold override applied to every relation (existing and
    /// future). `None` keeps the per-relation default. A physical
    /// layout knob only — logical content is identical at any setting
    /// (the sorted-run ≡ hash-map proptests pin this).
    seal_threshold: Option<usize>,
    /// Commit sequence number: bumped by every successful [`commit`]
    /// (never by `begin`/`rollback`, unlike `epoch`). Snapshot pins and
    /// [`TxnVersion`]s are keyed by it.
    commit_seq: u64,
    /// Net write-sets of committed transactions, oldest first, published
    /// by [`commit`] *only while at least one snapshot pin is
    /// registered* — the single-session fast path never pays for
    /// version retention. Garbage-collected up to the oldest pin.
    versions: Vec<TxnVersion>,
    /// Refcounted snapshot pins keyed by the `commit_seq` they hold.
    /// Interior mutability: sessions pin/unpin through `&Storage` while
    /// holding only the engine's read lock (commits, which mutate
    /// `versions`, hold the write lock and therefore never race).
    pins: Mutex<BTreeMap<u64, usize>>,
}

impl Storage {
    /// An empty database.
    pub fn new() -> Self {
        Storage {
            oids: OidGenerator::new(),
            ..Storage::default()
        }
    }

    // ------------------------------------------------------------------
    // Schema
    // ------------------------------------------------------------------

    /// Register a new base relation.
    pub fn create_relation(
        &mut self,
        name: impl Into<String>,
        arity: usize,
    ) -> Result<RelId, StorageError> {
        let name = name.into();
        // The WAL and snapshot codecs frame names with a u16 length;
        // a longer name would encode a wrong length and decode as
        // corruption at recovery.
        if name.len() > u16::MAX as usize {
            return Err(StorageError::RelationNameTooLong { len: name.len() });
        }
        if let Some(&id) = self.by_name.get(&name) {
            // Recovery may have materialized this relation from the WAL
            // before the schema script re-ran; adopt it.
            if self.recovered.remove(&name) {
                let existing = self.relation(id).arity();
                if existing == arity {
                    return Ok(id);
                }
                return Err(StorageError::ArityMismatch {
                    relation: name,
                    expected: existing,
                    found: arity,
                });
            }
            return Err(StorageError::DuplicateRelation(name));
        }
        let id = RelId(self.relations.len() as u32);
        let mut rel = BaseRelation::new(name.clone(), arity);
        if let Some(t) = self.seal_threshold {
            rel.set_seal_threshold(t);
        }
        self.relations.push(rel);
        self.by_name.insert(name, id);
        Ok(id)
    }

    /// Override the sorted-run seal threshold on every relation,
    /// existing and future (`usize::MAX` effectively restores pure
    /// hash-set behaviour; small values exercise runs aggressively).
    pub fn set_seal_threshold(&mut self, threshold: usize) {
        self.seal_threshold = Some(threshold);
        for r in &mut self.relations {
            r.set_seal_threshold(threshold);
        }
    }

    /// Look up a relation id by name.
    pub fn relation_id(&self, name: &str) -> Result<RelId, StorageError> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| StorageError::UnknownRelation(name.to_string()))
    }

    /// Immutable access to a relation.
    pub fn relation(&self, id: RelId) -> &BaseRelation {
        &self.relations[id.0 as usize]
    }

    /// Ensure an index on a relation (done by the plan compiler at rule
    /// activation time).
    pub fn ensure_index(&mut self, id: RelId, cols: &[usize]) {
        self.relations[id.0 as usize].ensure_index(cols);
    }

    /// Allocate a fresh surrogate object id.
    pub fn fresh_oid(&mut self) -> Oid {
        self.oids.fresh()
    }

    /// All relation ids, in creation order.
    pub fn relation_ids(&self) -> impl Iterator<Item = RelId> {
        (0..self.relations.len() as u32).map(RelId)
    }

    /// Total index-less probes across all relations that silently
    /// degraded to full scans (see [`BaseRelation::fallback_scans`]).
    /// Monotonically increasing; callers diff across a pass.
    pub fn fallback_scans_total(&self) -> u64 {
        self.relations.iter().map(|r| r.fallback_scans()).sum()
    }

    /// Drain the `(relation name, column set)` pairs that triggered a
    /// fallback scan since the previous drain — the once-per-pass log of
    /// missing indexes.
    pub fn take_fallback_sites(&self) -> Vec<(String, Vec<usize>)> {
        let mut out = Vec::new();
        for r in &self.relations {
            for cols in r.take_fallback_sites() {
                out.push((r.name().to_string(), cols));
            }
        }
        out
    }

    // ------------------------------------------------------------------
    // Monitoring
    // ------------------------------------------------------------------

    /// Mark a relation as an influent of some activated rule: its updates
    /// will accumulate a Δ-set from now on.
    pub fn monitor(&mut self, id: RelId) {
        self.monitored.insert(id);
    }

    /// Stop monitoring a relation (last depending rule deactivated).
    pub fn unmonitor(&mut self, id: RelId) {
        self.monitored.remove(&id);
        self.deltas.remove(&id);
    }

    /// Whether the relation is currently monitored.
    pub fn is_monitored(&self, id: RelId) -> bool {
        self.monitored.contains(&id)
    }

    /// Declare (or retract) a relation as append-only. The minus side of
    /// its Δ-set can then be assumed empty, letting the network builder
    /// drop dead `Δ₋` differentials. The flag is a caller contract —
    /// deletes are *not* rejected here, so marking a relation that does
    /// see deletes makes the pruning unsound.
    pub fn set_append_only(&mut self, id: RelId, on: bool) {
        if on {
            self.append_only.insert(id);
        } else {
            self.append_only.remove(&id);
        }
    }

    /// Whether the relation was declared append-only.
    pub fn is_append_only(&self, id: RelId) -> bool {
        self.append_only.contains(&id)
    }

    /// The accumulated Δ-set of a monitored relation (empty if none).
    pub fn delta(&self, id: RelId) -> Option<&DeltaSet> {
        self.deltas.get(&id)
    }

    /// All relations with non-empty Δ-sets.
    pub fn changed_relations(&self) -> Vec<RelId> {
        let mut v: Vec<RelId> = self
            .deltas
            .iter()
            .filter(|(_, d)| !d.is_empty())
            .map(|(id, _)| *id)
            .collect();
        v.sort();
        v
    }

    /// Whether any monitored relation changed in this transaction.
    pub fn has_changes(&self) -> bool {
        self.deltas.values().any(|d| !d.is_empty())
    }

    /// Clear all accumulated Δ-sets (end of check phase).
    pub fn clear_deltas(&mut self) {
        self.deltas.clear();
    }

    /// An [`OldStateView`] of a relation for the current transaction.
    ///
    /// For unmonitored relations no Δ-set exists, so an empty delta is
    /// used — correct only when the caller knows the relation was not
    /// updated, which holds for every influent of an activated rule
    /// (those are always monitored).
    pub fn old_view(&self, id: RelId) -> OldStateView<'_> {
        static EMPTY: std::sync::OnceLock<DeltaSet> = std::sync::OnceLock::new();
        let delta = self
            .deltas
            .get(&id)
            .unwrap_or_else(|| EMPTY.get_or_init(DeltaSet::new));
        OldStateView::new(self.relation(id), delta)
    }

    // ------------------------------------------------------------------
    // Updates
    // ------------------------------------------------------------------

    fn record(&mut self, id: RelId, op: LogOp, tuple: Tuple) -> Result<(), StorageError> {
        // Outside a transaction each event autocommits: it is durable (its
        // own WAL batch) before the update returns. A WAL failure here
        // aborts the whole event — the caller un-applies the relation
        // change, so memory and disk stay in step.
        if !self.txn_open {
            if let Some(wal) = &mut self.wal {
                wal.append(&[WalRecord {
                    rel: self.relations[id.0 as usize].name().to_string(),
                    op,
                    tuple: tuple.clone(),
                }])?;
            }
        }
        if self.monitored.contains(&id) {
            let d = self.deltas.entry(id).or_default();
            match op {
                LogOp::Insert => d.apply_insert(tuple.clone()),
                LogOp::Delete => d.apply_delete(tuple.clone()),
            }
        }
        self.log.push(id, op, tuple);
        Ok(())
    }

    /// Insert a tuple; returns `true` iff the database changed.
    pub fn insert(&mut self, id: RelId, tuple: Tuple) -> Result<bool, StorageError> {
        let rel = &mut self.relations[id.0 as usize];
        if tuple.arity() != rel.arity() {
            return Err(StorageError::ArityMismatch {
                relation: rel.name().to_string(),
                expected: rel.arity(),
                found: tuple.arity(),
            });
        }
        if rel.insert(tuple.clone()) {
            if let Err(e) = self.record(id, LogOp::Insert, tuple.clone()) {
                self.relations[id.0 as usize].delete(&tuple);
                return Err(e);
            }
            Ok(true)
        } else {
            Ok(false)
        }
    }

    /// Delete a tuple; returns `true` iff the database changed.
    pub fn delete(&mut self, id: RelId, tuple: &Tuple) -> Result<bool, StorageError> {
        let rel = &mut self.relations[id.0 as usize];
        if rel.delete(tuple) {
            if let Err(e) = self.record(id, LogOp::Delete, tuple.clone()) {
                self.relations[id.0 as usize].insert(tuple.clone());
                return Err(e);
            }
            Ok(true)
        } else {
            Ok(false)
        }
    }

    /// Functional update for stored functions: `set f(key…) = rest…`.
    ///
    /// Removes any existing tuples whose first `key.len()` columns equal
    /// `key`, then inserts `key ++ rest` — producing exactly the
    /// `−(f,k,old), +(f,k,new)` physical event sequence of §4.1.
    pub fn set_functional(
        &mut self,
        id: RelId,
        key: &[Value],
        rest: &[Value],
    ) -> Result<(), StorageError> {
        let key_cols: Vec<usize> = (0..key.len()).collect();
        let old: Vec<Tuple> = self.relation(id).probe(&key_cols, key);
        for t in old {
            self.delete(id, &t)?;
        }
        let mut vals = key.to_vec();
        vals.extend_from_slice(rest);
        self.insert(id, Tuple::new(vals))?;
        Ok(())
    }

    /// Multi-valued add for stored functions: `add f(key…) = rest…`.
    pub fn add_functional(
        &mut self,
        id: RelId,
        key: &[Value],
        rest: &[Value],
    ) -> Result<bool, StorageError> {
        let mut vals = key.to_vec();
        vals.extend_from_slice(rest);
        self.insert(id, Tuple::new(vals))
    }

    /// Multi-valued remove for stored functions: `remove f(key…) = rest…`.
    pub fn remove_functional(
        &mut self,
        id: RelId,
        key: &[Value],
        rest: &[Value],
    ) -> Result<bool, StorageError> {
        let mut vals = key.to_vec();
        vals.extend_from_slice(rest);
        self.delete(id, &Tuple::new(vals))
    }

    // ------------------------------------------------------------------
    // Transactions
    // ------------------------------------------------------------------

    /// Open a transaction.
    pub fn begin(&mut self) -> Result<(), StorageError> {
        if self.txn_open {
            return Err(StorageError::TransactionAlreadyOpen);
        }
        // Updates outside a transaction autocommit; their events are not
        // part of the new transaction's undo scope or Δ-sets.
        self.log.clear();
        self.clear_deltas();
        self.txn_open = true;
        self.epoch += 1;
        Ok(())
    }

    /// Whether a transaction is open.
    pub fn in_transaction(&self) -> bool {
        self.txn_open
    }

    /// Commit: make the transaction's surviving events durable (one WAL
    /// batch, if a WAL is attached), then discard the undo log and
    /// Δ-sets. The *rule check phase* must run before this (the engine
    /// layer orchestrates it).
    ///
    /// On a WAL write failure the transaction stays open and nothing is
    /// discarded — the caller may retry the commit or roll back.
    pub fn commit(&mut self) -> Result<(), StorageError> {
        self.commit_inner(false).map(|_| ())
    }

    /// Commit with *deferred durability*: the WAL batch is framed into
    /// the group-commit buffer but not written or synced. Returns a
    /// [`CommitWaiter`] (when a WAL is attached and the transaction
    /// wrote anything) for the caller to block on **after** releasing
    /// whatever lock serializes commits — that off-lock wait is the
    /// commit pipeline's point.
    pub fn commit_buffered(&mut self) -> Result<Option<CommitWaiter>, StorageError> {
        self.commit_inner(true)
    }

    fn commit_inner(&mut self, buffered: bool) -> Result<Option<CommitWaiter>, StorageError> {
        if !self.txn_open {
            return Err(StorageError::NoOpenTransaction);
        }
        let mut waiter = None;
        if let Some(wal) = &mut self.wal {
            if !self.log.is_empty() {
                let records: Vec<WalRecord> = self
                    .log
                    .records()
                    .iter()
                    .map(|r| WalRecord {
                        rel: self.relations[r.rel.0 as usize].name().to_string(),
                        op: r.op,
                        tuple: r.tuple.clone(),
                    })
                    .collect();
                if buffered {
                    waiter = Some(wal.append_buffered(&records));
                } else {
                    wal.append(&records)?;
                }
            }
        }
        self.commit_seq += 1;
        if self.has_pins() && !self.log.is_empty() {
            // Fold the physical update log into net per-relation Δ-sets
            // (rule-action writes from the check phase included) so
            // pinned sessions can correct their snapshot reads and
            // validate conflicts against this commit.
            let mut writes: BTreeMap<RelId, DeltaSet> = BTreeMap::new();
            for r in self.log.records() {
                let d = writes.entry(r.rel).or_default();
                match r.op {
                    LogOp::Insert => d.apply_insert(r.tuple.clone()),
                    LogOp::Delete => d.apply_delete(r.tuple.clone()),
                }
            }
            writes.retain(|_, d| !d.is_empty());
            if !writes.is_empty() {
                self.versions.push(TxnVersion {
                    seq: self.commit_seq,
                    writes: writes.into_iter().collect(),
                });
            }
        }
        self.gc_versions();
        self.log.clear();
        self.clear_deltas();
        self.txn_open = false;
        self.epoch += 1;
        Ok(waiter)
    }

    // ------------------------------------------------------------------
    // Snapshot pins and committed versions (multi-session isolation)
    // ------------------------------------------------------------------

    /// The current commit sequence number (bumped by every successful
    /// commit; `begin`/`rollback` leave it unchanged).
    pub fn commit_seq(&self) -> u64 {
        self.commit_seq
    }

    /// Register a snapshot pin at the current commit sequence and return
    /// it. While any pin is registered, commits publish [`TxnVersion`]s
    /// so the pinned reader can reconstruct its snapshot; the caller
    /// must [`unpin_snapshot`](Storage::unpin_snapshot) the returned
    /// sequence exactly once.
    pub fn pin_snapshot(&self) -> u64 {
        let seq = self.commit_seq;
        *self
            .pins
            .lock()
            .expect("snapshot pins lock")
            .entry(seq)
            .or_insert(0) += 1;
        seq
    }

    /// Release one pin taken at `seq`. Retained versions the pin was
    /// holding are collected at the next commit.
    pub fn unpin_snapshot(&self, seq: u64) {
        let mut pins = self.pins.lock().expect("snapshot pins lock");
        if let Some(n) = pins.get_mut(&seq) {
            *n -= 1;
            if *n == 0 {
                pins.remove(&seq);
            }
        }
    }

    /// Committed versions with `seq` strictly greater than `seq` —
    /// exactly the corrections a session pinned at `seq` must undo to
    /// read its snapshot, and the commits it must validate against.
    pub fn versions_since(&self, seq: u64) -> &[TxnVersion] {
        let start = self.versions.partition_point(|v| v.seq <= seq);
        &self.versions[start..]
    }

    fn has_pins(&self) -> bool {
        !self.pins.lock().expect("snapshot pins lock").is_empty()
    }

    /// Drop versions no pinned snapshot can still need (everything at or
    /// below the oldest pin; everything when no pins remain).
    fn gc_versions(&mut self) {
        if self.versions.is_empty() {
            return;
        }
        let min_pin = self
            .pins
            .lock()
            .expect("snapshot pins lock")
            .keys()
            .next()
            .copied();
        match min_pin {
            Some(m) => self.versions.retain(|v| v.seq > m),
            None => self.versions.clear(),
        }
    }

    /// Roll back: undo all physical events in reverse order, restoring
    /// the pre-transaction state, and discard Δ-sets.
    pub fn rollback(&mut self) -> Result<(), StorageError> {
        if !self.txn_open {
            return Err(StorageError::NoOpenTransaction);
        }
        while let Some(rec) = self.log.pop_for_undo() {
            let rel = &mut self.relations[rec.rel.0 as usize];
            match rec.op {
                LogOp::Insert => {
                    rel.delete(&rec.tuple);
                }
                LogOp::Delete => {
                    rel.insert(rec.tuple);
                }
            }
        }
        self.clear_deltas();
        self.txn_open = false;
        self.epoch += 1;
        Ok(())
    }

    /// Take a savepoint: a position in the undo log that
    /// [`Storage::rollback_to`] can rewind to without aborting the
    /// transaction.
    pub fn savepoint(&self) -> Savepoint {
        Savepoint {
            log_len: self.log.len(),
            epoch: self.epoch,
        }
    }

    /// Partial rollback: undo, in reverse order, every event recorded
    /// after `sp`, rewinding both the relations *and* the Δ-sets (each
    /// undone insert re-applies as a delete to the Δ-set and vice versa,
    /// so the Δ-sets stay net-of-surviving-events — the property the
    /// savepoint-algebra proptests pin down). Returns the number of
    /// events undone.
    ///
    /// Undone events never reach the WAL: durability is decided at
    /// commit, which writes only the records still in the log.
    pub fn rollback_to(&mut self, sp: Savepoint) -> Result<usize, StorageError> {
        if sp.epoch != self.epoch {
            return Err(StorageError::StaleSavepoint {
                savepoint_epoch: sp.epoch,
                current_epoch: self.epoch,
            });
        }
        if sp.log_len > self.log.len() {
            return Err(StorageError::InvalidSavepoint {
                savepoint: sp.log_len,
                log_len: self.log.len(),
            });
        }
        let mut undone = 0;
        while self.log.len() > sp.log_len {
            let rec = self.log.pop_for_undo().expect("length checked");
            let rel = &mut self.relations[rec.rel.0 as usize];
            match rec.op {
                LogOp::Insert => {
                    rel.delete(&rec.tuple);
                    if self.monitored.contains(&rec.rel) {
                        self.deltas
                            .entry(rec.rel)
                            .or_default()
                            .apply_delete(rec.tuple);
                    }
                }
                LogOp::Delete => {
                    rel.insert(rec.tuple.clone());
                    if self.monitored.contains(&rec.rel) {
                        self.deltas
                            .entry(rec.rel)
                            .or_default()
                            .apply_insert(rec.tuple);
                    }
                }
            }
            undone += 1;
        }
        Ok(undone)
    }

    /// The current undo log (introspection / tests).
    pub fn log(&self) -> &UpdateLog {
        &self.log
    }

    // ------------------------------------------------------------------
    // Durability (WAL + snapshots)
    // ------------------------------------------------------------------

    /// Attach a durable WAL at `dir`, first recovering whatever committed
    /// state the directory holds: the snapshot (if any) is loaded, then
    /// every WAL batch past the snapshot is replayed, a torn tail is
    /// truncated, and the oid allocator is advanced past every recovered
    /// oid. From here on every committed transaction (and every
    /// autocommitted update) is appended to the WAL.
    ///
    /// Replay bypasses the undo log and Δ-sets — recovered state is
    /// *committed* state; there is nothing to undo and, at commit
    /// boundaries, all Δ-sets are empty by construction. Relations not
    /// yet declared are materialized and later *adopted* by
    /// [`Storage::create_relation`] when the schema script re-runs.
    pub fn attach_wal(
        &mut self,
        dir: impl AsRef<Path>,
        config: WalConfig,
    ) -> Result<RecoveryInfo, StorageError> {
        if self.wal.is_some() {
            return Err(StorageError::Io("a WAL is already attached".into()));
        }
        if self.txn_open {
            return Err(StorageError::TransactionAlreadyOpen);
        }
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;

        let mut info = RecoveryInfo::default();
        if let Some(snap) = snapshot::read_snapshot(&dir.join(SNAPSHOT_FILE))? {
            info.snapshot_loaded = true;
            info.snapshot_seq = snap.last_seq;
            self.oids
                .ensure_above(Oid::from_raw(snap.next_oid.saturating_sub(1)));
            for rel in snap.relations {
                // Adopt the snapshot's sorted runs directly — no
                // tuple-by-tuple rehydration through hash maps; only the
                // oid scan below touches individual tuples.
                let id = self.recovered_relation_from_runs(&rel.name, rel.arity, rel.runs)?;
                let oids: Vec<Oid> = self.relations[id.0 as usize]
                    .scan()
                    .flat_map(|t| t.iter())
                    .filter_map(|v| match v {
                        Value::Oid(o) => Some(*o),
                        _ => None,
                    })
                    .collect();
                for o in oids {
                    self.oids.ensure_above(o);
                }
            }
        }

        let (mut writer, read) = WalWriter::open(dir, config)?;
        // The log was truncated at the last checkpoint, so the writer's
        // scan-derived sequence may restart below the snapshot's: raise
        // it, or this session's commits would be skipped (as already
        // snapshotted) by the next recovery.
        writer.ensure_seq_above(info.snapshot_seq);
        info.torn_tail_bytes = read.total_bytes.saturating_sub(read.valid_bytes);
        for batch in &read.batches {
            if batch.seq <= info.snapshot_seq {
                continue; // already captured by the snapshot
            }
            info.batches_replayed += 1;
            for rec in &batch.records {
                info.records_replayed += 1;
                let id = self.recovered_relation(&rec.rel, rec.tuple.arity())?;
                self.note_recovered_oids(&rec.tuple);
                let rel = &mut self.relations[id.0 as usize];
                match rec.op {
                    LogOp::Insert => {
                        rel.insert(rec.tuple.clone());
                    }
                    LogOp::Delete => {
                        rel.delete(&rec.tuple);
                    }
                }
            }
        }
        info.last_seq = read.last_seq().max(info.snapshot_seq);
        self.wal = Some(writer);
        Ok(info)
    }

    /// Whether a WAL is attached.
    pub fn wal_attached(&self) -> bool {
        self.wal.is_some()
    }

    /// Mutable access to the attached WAL writer (tests, fault plans).
    pub fn wal_mut(&mut self) -> Option<&mut WalWriter> {
        self.wal.as_mut()
    }

    /// Flush any group-commit buffer to disk.
    pub fn wal_flush(&mut self) -> Result<(), StorageError> {
        match &mut self.wal {
            Some(w) => w.flush(),
            None => Ok(()),
        }
    }

    /// Durability counters of the attached WAL (fsyncs, group sizes,
    /// woken commit waiters). `None` when no WAL is attached.
    pub fn wal_metrics(&self) -> Option<WalMetrics> {
        self.wal.as_ref().map(|w| w.metrics())
    }

    /// Checkpoint: atomically write a snapshot of every relation plus
    /// the oid allocator, then truncate the WAL — bounding recovery time
    /// by the work since this call. Requires an attached WAL and no open
    /// transaction.
    pub fn checkpoint(&mut self) -> Result<(), StorageError> {
        if self.txn_open {
            return Err(StorageError::TransactionAlreadyOpen);
        }
        let next_oid = self.oids.allocated() + 1;
        let relations: Vec<SnapshotRelation> = self
            .relations
            .iter()
            .map(|r| SnapshotRelation {
                name: r.name().to_string(),
                arity: r.arity(),
                runs: r.snapshot_runs(),
            })
            .collect();
        let wal = self
            .wal
            .as_mut()
            .ok_or_else(|| StorageError::Io("no WAL attached".into()))?;
        wal.flush()?;
        let snap = Snapshot {
            last_seq: wal.next_seq() - 1,
            next_oid,
            relations,
        };
        let path = wal
            .path()
            .parent()
            .expect("WAL file lives in a directory")
            .join(SNAPSHOT_FILE);
        snapshot::write_snapshot(&path, &snap)?;
        wal.truncate_after_checkpoint()?;
        Ok(())
    }

    /// Materialize a relation from snapshot runs during recovery,
    /// validating arity. The runs are adopted as the relation's
    /// physical layout ([`BaseRelation::from_runs`]); if the relation
    /// already exists (schema declared before `attach_wal`) the runs
    /// fold in through regular inserts instead.
    fn recovered_relation_from_runs(
        &mut self,
        name: &str,
        arity: usize,
        runs: Vec<Vec<Tuple>>,
    ) -> Result<RelId, StorageError> {
        if let Some(&id) = self.by_name.get(name) {
            let existing = self.relation(id).arity();
            if existing != arity {
                return Err(StorageError::Corrupt(format!(
                    "recovered tuple of arity {arity} for relation `{name}` of arity {existing}"
                )));
            }
            for t in runs.into_iter().flatten() {
                self.relations[id.0 as usize].insert(t);
            }
            return Ok(id);
        }
        let id = RelId(self.relations.len() as u32);
        let mut rel = BaseRelation::from_runs(name, arity, runs);
        if let Some(t) = self.seal_threshold {
            rel.set_seal_threshold(t);
        }
        self.relations.push(rel);
        self.by_name.insert(name.to_string(), id);
        self.recovered.insert(name.to_string());
        Ok(id)
    }

    /// Get-or-create a relation during recovery, validating arity.
    fn recovered_relation(&mut self, name: &str, arity: usize) -> Result<RelId, StorageError> {
        if let Some(&id) = self.by_name.get(name) {
            let existing = self.relation(id).arity();
            if existing != arity {
                return Err(StorageError::Corrupt(format!(
                    "recovered tuple of arity {arity} for relation `{name}` of arity {existing}"
                )));
            }
            return Ok(id);
        }
        let id = RelId(self.relations.len() as u32);
        let mut rel = BaseRelation::new(name, arity);
        if let Some(t) = self.seal_threshold {
            rel.set_seal_threshold(t);
        }
        self.relations.push(rel);
        self.by_name.insert(name.to_string(), id);
        self.recovered.insert(name.to_string());
        Ok(id)
    }

    /// Advance the oid allocator past every oid in a recovered tuple.
    fn note_recovered_oids(&mut self, t: &Tuple) {
        for v in t.iter() {
            if let Value::Oid(o) = v {
                self.oids.ensure_above(*o);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amos_types::tuple;

    fn db_with_rel() -> (Storage, RelId) {
        let mut db = Storage::new();
        let q = db.create_relation("q", 2).unwrap();
        (db, q)
    }

    #[test]
    fn unmonitored_updates_accumulate_no_delta() {
        let (mut db, q) = db_with_rel();
        db.begin().unwrap();
        db.insert(q, tuple![1, 2]).unwrap();
        assert!(
            db.delta(q).is_none(),
            "no Δ-set overhead without monitoring"
        );
        assert!(!db.has_changes());
    }

    #[test]
    fn monitored_updates_accumulate_net_delta() {
        let (mut db, q) = db_with_rel();
        db.monitor(q);
        db.begin().unwrap();
        db.insert(q, tuple![1, 2]).unwrap();
        db.delete(q, &tuple![1, 2]).unwrap();
        assert!(db.delta(q).unwrap().is_empty(), "net effect is zero");
        db.insert(q, tuple![3, 4]).unwrap();
        assert_eq!(db.delta(q).unwrap().plus().len(), 1);
        assert_eq!(db.changed_relations(), vec![q]);
    }

    #[test]
    fn set_functional_produces_delete_then_insert() {
        let (mut db, q) = db_with_rel();
        db.monitor(q);
        db.begin().unwrap();
        db.insert(q, tuple![1, 100]).unwrap();
        db.commit().unwrap();

        db.begin().unwrap();
        db.set_functional(q, &[Value::Int(1)], &[Value::Int(150)])
            .unwrap();
        let d = db.delta(q).unwrap();
        assert!(d.plus().contains(&tuple![1, 150]));
        assert!(d.minus().contains(&tuple![1, 100]));
        // restore → no net effect (the §4.1 example at database level)
        db.set_functional(q, &[Value::Int(1)], &[Value::Int(100)])
            .unwrap();
        assert!(db.delta(q).unwrap().is_empty());
    }

    #[test]
    fn rollback_restores_state() {
        let (mut db, q) = db_with_rel();
        db.begin().unwrap();
        db.insert(q, tuple![1, 2]).unwrap();
        db.commit().unwrap();

        db.begin().unwrap();
        db.insert(q, tuple![3, 4]).unwrap();
        db.delete(q, &tuple![1, 2]).unwrap();
        db.rollback().unwrap();
        assert!(db.relation(q).contains(&tuple![1, 2]));
        assert!(!db.relation(q).contains(&tuple![3, 4]));
        assert_eq!(db.relation(q).len(), 1);
    }

    #[test]
    fn old_view_reflects_pre_transaction_state() {
        let (mut db, q) = db_with_rel();
        db.monitor(q);
        db.begin().unwrap();
        db.insert(q, tuple![1, 2]).unwrap();
        db.commit().unwrap();

        db.begin().unwrap();
        db.set_functional(q, &[Value::Int(1)], &[Value::Int(9)])
            .unwrap();
        let old = db.old_view(q);
        assert!(old.contains(&tuple![1, 2]));
        assert!(!old.contains(&tuple![1, 9]));
        assert!(db.relation(q).contains(&tuple![1, 9]));
    }

    #[test]
    fn transaction_state_errors() {
        let (mut db, _) = db_with_rel();
        assert_eq!(db.commit(), Err(StorageError::NoOpenTransaction));
        db.begin().unwrap();
        assert_eq!(db.begin(), Err(StorageError::TransactionAlreadyOpen));
        db.commit().unwrap();
        assert_eq!(db.rollback(), Err(StorageError::NoOpenTransaction));
    }

    #[test]
    fn duplicate_relation_rejected() {
        let (mut db, _) = db_with_rel();
        assert!(matches!(
            db.create_relation("q", 2),
            Err(StorageError::DuplicateRelation(_))
        ));
    }

    #[test]
    fn arity_mismatch_reported() {
        let (mut db, q) = db_with_rel();
        db.begin().unwrap();
        assert!(matches!(
            db.insert(q, tuple![1]),
            Err(StorageError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn stale_savepoint_from_earlier_transaction_is_rejected() {
        let (mut db, q) = db_with_rel();
        db.begin().unwrap();
        db.insert(q, tuple![1, 2]).unwrap();
        let sp = db.savepoint();
        db.insert(q, tuple![3, 4]).unwrap();
        db.commit().unwrap();

        // The next transaction can reach the same log length, so the
        // position check alone would undo an unrelated suffix.
        db.begin().unwrap();
        db.insert(q, tuple![5, 6]).unwrap();
        db.insert(q, tuple![7, 8]).unwrap();
        assert!(matches!(
            db.rollback_to(sp),
            Err(StorageError::StaleSavepoint { .. })
        ));
        assert!(db.relation(q).contains(&tuple![5, 6]), "nothing undone");
        assert!(db.relation(q).contains(&tuple![7, 8]));

        // A savepoint from the live transaction still works.
        let sp2 = db.savepoint();
        db.insert(q, tuple![9, 9]).unwrap();
        assert_eq!(db.rollback_to(sp2).unwrap(), 1);
        assert!(!db.relation(q).contains(&tuple![9, 9]));
    }

    #[test]
    fn savepoint_does_not_survive_rollback() {
        let (mut db, q) = db_with_rel();
        db.begin().unwrap();
        let sp = db.savepoint();
        db.insert(q, tuple![1, 2]).unwrap();
        db.rollback().unwrap();

        db.begin().unwrap();
        assert!(matches!(
            db.rollback_to(sp),
            Err(StorageError::StaleSavepoint { .. })
        ));
    }

    #[test]
    fn overlong_relation_name_rejected() {
        let mut db = Storage::new();
        // The WAL codec frames names with a u16 length; anything longer
        // would encode a wrong length and fail decode at recovery.
        assert!(matches!(
            db.create_relation("x".repeat(u16::MAX as usize + 1), 1),
            Err(StorageError::RelationNameTooLong { len }) if len == u16::MAX as usize + 1
        ));
        // Exactly at the limit is fine.
        db.create_relation("y".repeat(u16::MAX as usize), 1)
            .unwrap();
    }

    #[test]
    fn unmonitor_drops_delta() {
        let (mut db, q) = db_with_rel();
        db.monitor(q);
        db.begin().unwrap();
        db.insert(q, tuple![1, 2]).unwrap();
        assert!(db.has_changes());
        db.unmonitor(q);
        assert!(!db.has_changes());
    }
}
