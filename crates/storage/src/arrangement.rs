//! Sorted runs and arrangements: the LSM-lite substrate behind
//! [`BaseRelation`](crate::BaseRelation) and [`DeltaSet`](crate::DeltaSet).
//!
//! A **sorted run** is an immutable, duplicate-free `Vec<Tuple>` in the
//! tuples' value order ([`Tuple`]'s `Ord` compares values only, so run
//! order is deterministic and independent of hashing). Relations hold a
//! small mutable head plus a stack of runs compacted size-tiered; the
//! paper's Δ-application `S_old = (S_new ∪ Δ₋S) − Δ₊S` and the
//! delta-union's ±cancellation then become linear merge passes instead
//! of hash-map churn.
//!
//! An **arrangement** is the same idea keyed by a column subset: tuples
//! sorted by their projection onto `cols` (ties broken by full tuple
//! order). Equal-key blocks are contiguous, so a point probe is a
//! `partition_point` pair and a join of two arrangements on aligned key
//! columns is a sorted zipper — no per-tuple key allocation, no hash
//! table. Tuples are `Arc`-interned, so building either structure moves
//! pointers, never copies values.

use std::cmp::Ordering;

use amos_types::{FxHashSet, Tuple, Value};

/// Compare two tuples on aligned column lists (`a` on `acols` vs `b` on
/// `bcols`), position by position. The lists must have equal length —
/// they are the two sides of one join key.
pub fn cmp_on_cols(a: &Tuple, acols: &[usize], b: &Tuple, bcols: &[usize]) -> Ordering {
    debug_assert_eq!(acols.len(), bcols.len());
    for (&ca, &cb) in acols.iter().zip(bcols) {
        match a[ca].cmp(&b[cb]) {
            Ordering::Equal => {}
            other => return other,
        }
    }
    Ordering::Equal
}

/// Compare a tuple's projection onto `cols` against a literal key.
pub fn cmp_to_key(t: &Tuple, cols: &[usize], key: &[Value]) -> Ordering {
    debug_assert_eq!(cols.len(), key.len());
    for (&c, v) in cols.iter().zip(key) {
        match t[c].cmp(v) {
            Ordering::Equal => {}
            other => return other,
        }
    }
    Ordering::Equal
}

/// An immutable, duplicate-free batch of tuples in full value order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SortedRun {
    tuples: Vec<Tuple>,
}

impl SortedRun {
    /// Sort (and deduplicate) an arbitrary batch into a run.
    pub fn from_unsorted(mut tuples: Vec<Tuple>) -> Self {
        tuples.sort_unstable();
        tuples.dedup();
        SortedRun { tuples }
    }

    /// Adopt a batch that is already strictly sorted; falls back to a
    /// sort+dedup when it is not (defensive — recovery paths hand us
    /// runs we wrote ourselves, but a v1 snapshot or a corrupted file
    /// may not be ordered).
    pub fn from_maybe_sorted(tuples: Vec<Tuple>) -> Self {
        if tuples.windows(2).all(|w| w[0] < w[1]) {
            SortedRun { tuples }
        } else {
            SortedRun::from_unsorted(tuples)
        }
    }

    /// Number of tuples in the run.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the run is empty.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Membership by binary search.
    pub fn contains(&self, t: &Tuple) -> bool {
        self.tuples.binary_search(t).is_ok()
    }

    /// Iterate in value order.
    pub fn iter(&self) -> std::slice::Iter<'_, Tuple> {
        self.tuples.iter()
    }

    /// The run's tuples as a sorted slice.
    pub fn as_slice(&self) -> &[Tuple] {
        &self.tuples
    }

    /// Linear two-way merge of `a` and `b`, dropping every tuple found
    /// in `tombstones` (and consuming the matching tombstone, so the
    /// caller's tombstone set shrinks to exactly the deletions still
    /// hiding in unmerged runs). Runs are disjoint by the relation
    /// invariant, but equal tuples are deduplicated anyway.
    pub fn merge_dropping(a: &SortedRun, b: &SortedRun, tombstones: &mut FxHashSet<Tuple>) -> Self {
        let mut out = Vec::with_capacity(a.len() + b.len());
        let (mut i, mut j) = (0, 0);
        let mut push = |t: &Tuple, tombstones: &mut FxHashSet<Tuple>| {
            if !tombstones.remove(t) {
                out.push(t.clone());
            }
        };
        while i < a.tuples.len() && j < b.tuples.len() {
            match a.tuples[i].cmp(&b.tuples[j]) {
                Ordering::Less => {
                    push(&a.tuples[i], tombstones);
                    i += 1;
                }
                Ordering::Greater => {
                    push(&b.tuples[j], tombstones);
                    j += 1;
                }
                Ordering::Equal => {
                    push(&a.tuples[i], tombstones);
                    i += 1;
                    j += 1;
                }
            }
        }
        for t in &a.tuples[i..] {
            push(t, tombstones);
        }
        for t in &b.tuples[j..] {
            push(t, tombstones);
        }
        SortedRun { tuples: out }
    }
}

impl<'a> IntoIterator for &'a SortedRun {
    type Item = &'a Tuple;
    type IntoIter = std::slice::Iter<'a, Tuple>;
    fn into_iter(self) -> Self::IntoIter {
        self.tuples.iter()
    }
}

/// Tuples sorted by their projection onto a column subset, ties broken
/// by full tuple order. Equal-key blocks are contiguous; probes are
/// binary searches and arrangement–arrangement joins are zippers.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Arrangement {
    cols: Vec<usize>,
    tuples: Vec<Tuple>,
}

impl Arrangement {
    /// Arrange a batch by `cols`.
    pub fn build(mut tuples: Vec<Tuple>, cols: &[usize]) -> Self {
        tuples.sort_unstable_by(|a, b| cmp_on_cols(a, cols, b, cols).then_with(|| a.cmp(b)));
        Arrangement {
            cols: cols.to_vec(),
            tuples,
        }
    }

    /// The key columns this arrangement is sorted by.
    pub fn cols(&self) -> &[usize] {
        &self.cols
    }

    /// All tuples, in key order.
    pub fn tuples(&self) -> &[Tuple] {
        &self.tuples
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the arrangement is empty.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// The contiguous block of tuples whose projection onto the key
    /// columns equals `key` (empty when absent).
    pub fn equal_range(&self, key: &[Value]) -> &[Tuple] {
        let lo = self
            .tuples
            .partition_point(|t| cmp_to_key(t, &self.cols, key) == Ordering::Less);
        let n = self.tuples[lo..]
            .partition_point(|t| cmp_to_key(t, &self.cols, key) == Ordering::Equal);
        &self.tuples[lo..lo + n]
    }

    /// The contiguous block of tuples whose key equals `probe`'s
    /// projection onto `probe_cols` — [`equal_range`](Self::equal_range)
    /// without materializing the key. The lookup-join fast path probes
    /// with another relation's tuples directly, so no per-probe key
    /// allocation happens.
    pub fn equal_range_on(&self, probe: &Tuple, probe_cols: &[usize]) -> &[Tuple] {
        let lo = self
            .tuples
            .partition_point(|t| cmp_on_cols(t, &self.cols, probe, probe_cols) == Ordering::Less);
        let n = self.tuples[lo..]
            .partition_point(|t| cmp_on_cols(t, &self.cols, probe, probe_cols) == Ordering::Equal);
        &self.tuples[lo..lo + n]
    }

    /// One past the last index sharing `tuples[i]`'s key — the block
    /// boundary a zipper advances to after emitting a match group.
    pub fn block_end(&self, i: usize) -> usize {
        let base = &self.tuples[i];
        i + self.tuples[i..]
            .partition_point(|t| cmp_on_cols(t, &self.cols, base, &self.cols) == Ordering::Equal)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amos_types::tuple;

    #[test]
    fn run_sorts_dedups_and_searches() {
        let r = SortedRun::from_unsorted(vec![tuple![3], tuple![1], tuple![2], tuple![1]]);
        assert_eq!(r.len(), 3);
        assert!(r.contains(&tuple![2]));
        assert!(!r.contains(&tuple![4]));
        let order: Vec<_> = r.iter().cloned().collect();
        assert_eq!(order, vec![tuple![1], tuple![2], tuple![3]]);
    }

    #[test]
    fn from_maybe_sorted_detects_disorder() {
        let sorted = SortedRun::from_maybe_sorted(vec![tuple![1], tuple![2]]);
        assert_eq!(sorted.len(), 2);
        let unsorted = SortedRun::from_maybe_sorted(vec![tuple![2], tuple![1], tuple![1]]);
        assert_eq!(unsorted.as_slice(), &[tuple![1], tuple![2]]);
    }

    #[test]
    fn merge_drops_tombstones_and_consumes_them() {
        let a = SortedRun::from_unsorted(vec![tuple![1], tuple![3], tuple![5]]);
        let b = SortedRun::from_unsorted(vec![tuple![2], tuple![3], tuple![6]]);
        let mut tombs: FxHashSet<Tuple> = [tuple![3], tuple![9]].into_iter().collect();
        let m = SortedRun::merge_dropping(&a, &b, &mut tombs);
        assert_eq!(
            m.as_slice(),
            &[tuple![1], tuple![2], tuple![5], tuple![6]],
            "3 dropped by its tombstone, duplicates collapsed"
        );
        assert!(!tombs.contains(&tuple![3]), "consumed");
        assert!(tombs.contains(&tuple![9]), "unrelated tombstone survives");
    }

    #[test]
    fn arrangement_groups_equal_keys_contiguously() {
        let a = Arrangement::build(
            vec![tuple![1, 30], tuple![2, 10], tuple![1, 20], tuple![3, 10]],
            &[0],
        );
        assert_eq!(a.equal_range(&[Value::Int(1)]).len(), 2);
        assert_eq!(a.equal_range(&[Value::Int(3)]).len(), 1);
        assert!(a.equal_range(&[Value::Int(9)]).is_empty());
        // Block structure: index 0 starts key 1's block of size 2.
        assert_eq!(a.block_end(0), 2);
        assert_eq!(a.block_end(2), 3);
    }

    #[test]
    fn arrangement_on_non_prefix_column() {
        let a = Arrangement::build(vec![tuple![7, 2], tuple![8, 1], tuple![9, 2]], &[1]);
        let hits = a.equal_range(&[Value::Int(2)]);
        assert_eq!(hits, &[tuple![7, 2], tuple![9, 2]], "ties in full order");
    }

    #[test]
    fn equal_range_on_probes_with_foreign_tuples() {
        let a = Arrangement::build(
            vec![tuple![1, 30], tuple![2, 10], tuple![1, 20], tuple![3, 10]],
            &[0],
        );
        // Probe with a tuple whose key lives in a different column.
        assert_eq!(a.equal_range_on(&tuple![99, 1], &[1]).len(), 2);
        assert_eq!(a.equal_range_on(&tuple![99, 3], &[1]).len(), 1);
        assert!(a.equal_range_on(&tuple![99, 7], &[1]).is_empty());
    }

    #[test]
    fn cross_arrangement_comparison() {
        let d = tuple![100, 5]; // key col 1
        let s = tuple![5]; // key col 0
        assert_eq!(cmp_on_cols(&d, &[1], &s, &[0]), Ordering::Equal);
        assert_eq!(cmp_on_cols(&d, &[0], &s, &[0]), Ordering::Greater);
    }
}
