//! Multi-version snapshot views for concurrent sessions.
//!
//! The paper's logical-rollback identity `S_old = (S_new ∪ Δ₋S) − Δ₊S`
//! (§4.2) reconstructs a *past* state from the present one plus a Δ-set.
//! A snapshot read is the same algebra applied per committed transaction:
//! a session that began at commit sequence `B` sees, for every relation,
//!
//! ```text
//! view(S_now) = (S_now − hide) ∪ add
//! ```
//!
//! where `hide`/`add` are the composition of the *undo* overlays of every
//! transaction that committed after `B` (newest applied first), with the
//! session's own buffered write-set composed on top as a *redo* overlay.
//! [`Storage::commit`](crate::Storage::commit) publishes one
//! [`TxnVersion`] per commit — the net per-relation Δ-sets folded from
//! the update log — whenever at least one snapshot pin is registered, so
//! the single-session fast path pays nothing (the paper's "no overhead
//! on operations that do not affect any rule" ethos, applied to MVCC).

use amos_types::{FxHashMap, FxHashSet, Tuple, Value};

use crate::database::RelId;
use crate::delta::DeltaSet;
use crate::relation::BaseRelation;

/// The net per-relation write-sets of one committed transaction,
/// published by [`Storage::commit`](crate::Storage::commit) while any
/// snapshot pin is registered. `seq` is the commit sequence number the
/// transaction established (strictly increasing, starting at 1).
#[derive(Debug, Clone)]
pub struct TxnVersion {
    /// Commit sequence number of this transaction.
    pub seq: u64,
    /// Net `<Δ₊, Δ₋>` per relation touched, folded from the update log
    /// (rule-action writes performed during the check phase included).
    pub writes: Vec<(RelId, DeltaSet)>,
}

/// A correction overlay for one relation: `view(S) = (S − hide) ∪ add`,
/// with `hide ∩ add = ∅` maintained as an invariant.
#[derive(Debug, Clone, Default)]
pub struct RelOverlay {
    hide: FxHashSet<Tuple>,
    add: FxHashSet<Tuple>,
}

impl RelOverlay {
    /// Compose a later overlay `K` *on top of* this one:
    /// `(K ∘ self)(S) = K(self(S))`.
    ///
    /// ```text
    /// add'  = K.add ∪ (add − K.hide)
    /// hide' = (hide ∪ K.hide) − add'
    /// ```
    ///
    /// Subtracting `add'` from the union keeps the disjointness
    /// invariant: a tuple hidden by an earlier overlay but re-added by a
    /// later one is visible.
    fn compose_after(&mut self, k_add: &FxHashSet<Tuple>, k_hide: &FxHashSet<Tuple>) {
        self.add.retain(|t| !k_hide.contains(t));
        self.add.extend(k_add.iter().cloned());
        self.hide.extend(k_hide.iter().cloned());
        self.hide.retain(|t| !self.add.contains(t));
    }

    /// Membership through the overlay.
    pub fn contains(&self, base: &BaseRelation, t: &Tuple) -> bool {
        if self.add.contains(t) {
            return true;
        }
        if self.hide.contains(t) {
            return false;
        }
        base.contains(t)
    }

    /// Full scan through the overlay. Tuples in `add` are filtered from
    /// the base scan before being chained so that a tuple present both
    /// in `S_now` and in `add` (deleted and re-inserted across the
    /// composed versions) is emitted exactly once.
    pub fn scan(&self, base: &BaseRelation) -> Vec<Tuple> {
        let mut out: Vec<Tuple> = base
            .scan()
            .filter(|t| !self.hide.contains(*t) && !self.add.contains(*t))
            .cloned()
            .collect();
        out.extend(self.add.iter().cloned());
        out
    }

    /// Probe `cols = key` through the overlay.
    pub fn probe(&self, base: &BaseRelation, cols: &[usize], key: &[Value]) -> Vec<Tuple> {
        let mut out: Vec<Tuple> = base
            .probe(cols, key)
            .into_iter()
            .filter(|t| !self.hide.contains(t) && !self.add.contains(t))
            .collect();
        out.extend(
            self.add
                .iter()
                .filter(|t| cols.iter().zip(key).all(|(&c, k)| &t[c] == k))
                .cloned(),
        );
        out
    }

    /// Number of visible tuples.
    pub fn len(&self, base: &BaseRelation) -> usize {
        // `hide ⊆ S_now` does not hold in general (a concurrent delete
        // may already be undone), so count hidden tuples actually
        // present.
        let hidden = self.hide.iter().filter(|t| base.contains(t)).count();
        let shadowed = self.add.iter().filter(|t| base.contains(t)).count();
        base.len() - hidden - shadowed + self.add.len()
    }

    /// True when the overlay corrects nothing.
    pub fn is_empty(&self) -> bool {
        self.hide.is_empty() && self.add.is_empty()
    }
}

/// A composed snapshot view over every relation touched since the
/// session's begin sequence: committed-version *undo* overlays plus the
/// session's own write-set *redo* overlay. Relations absent from the map
/// are unchanged since the snapshot and read straight from the base.
#[derive(Debug, Clone, Default)]
pub struct ReadOverlay {
    rels: FxHashMap<RelId, RelOverlay>,
}

impl ReadOverlay {
    /// Build the view for a session that began at the snapshot preceding
    /// `versions[0]`: fold the committed versions' undo overlays newest
    /// → oldest (`k_hide = Δ₊`, `k_add = Δ₋`), then compose the
    /// session's local write-set on top as a redo overlay (`k_add = Δ₊`,
    /// `k_hide = Δ₋`).
    pub fn build<'a>(
        versions: &[TxnVersion],
        local: impl Iterator<Item = (&'a RelId, &'a DeltaSet)>,
    ) -> ReadOverlay {
        let mut rels: FxHashMap<RelId, RelOverlay> = FxHashMap::default();
        for v in versions.iter().rev() {
            for (rel, d) in &v.writes {
                rels.entry(*rel)
                    .or_default()
                    .compose_after(d.minus(), d.plus());
            }
        }
        for (rel, d) in local {
            if d.is_empty() {
                continue;
            }
            rels.entry(*rel)
                .or_default()
                .compose_after(d.plus(), d.minus());
        }
        rels.retain(|_, ov| !ov.is_empty());
        ReadOverlay { rels }
    }

    /// Does this view correct reads of `rel`?
    pub fn overlays(&self, rel: RelId) -> bool {
        self.rels.contains_key(&rel)
    }

    /// The correction overlay for `rel`, if any.
    pub fn overlay(&self, rel: RelId) -> Option<&RelOverlay> {
        self.rels.get(&rel)
    }

    /// Membership through the view.
    pub fn contains(&self, rel: RelId, base: &BaseRelation, t: &Tuple) -> bool {
        match self.rels.get(&rel) {
            Some(ov) => ov.contains(base, t),
            None => base.contains(t),
        }
    }

    /// Full scan through the view.
    pub fn scan(&self, rel: RelId, base: &BaseRelation) -> Vec<Tuple> {
        match self.rels.get(&rel) {
            Some(ov) => ov.scan(base),
            None => base.scan().cloned().collect(),
        }
    }

    /// Probe through the view.
    pub fn probe(
        &self,
        rel: RelId,
        base: &BaseRelation,
        cols: &[usize],
        key: &[Value],
    ) -> Vec<Tuple> {
        match self.rels.get(&rel) {
            Some(ov) => ov.probe(base, cols, key),
            None => base.probe(cols, key),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ds(plus: &[&[i64]], minus: &[&[i64]]) -> DeltaSet {
        let mut d = DeltaSet::new();
        for t in plus {
            d.apply_insert(Tuple::new(
                t.iter().map(|&v| Value::Int(v)).collect::<Vec<_>>(),
            ));
        }
        for t in minus {
            d.apply_delete(Tuple::new(
                t.iter().map(|&v| Value::Int(v)).collect::<Vec<_>>(),
            ));
        }
        d
    }

    fn t(vals: &[i64]) -> Tuple {
        Tuple::new(vals.iter().map(|&v| Value::Int(v)).collect::<Vec<_>>())
    }

    fn base(tuples: &[&[i64]]) -> BaseRelation {
        let mut r = BaseRelation::new("r", 2);
        for tu in tuples {
            r.insert(t(tu));
        }
        r
    }

    #[test]
    fn undo_of_later_commits_reconstructs_snapshot() {
        // Snapshot at B: {(1,1),(2,2)}. V1 deletes (2,2), V2 inserts
        // (3,3). Base now: {(1,1),(3,3)}.
        let b = base(&[&[1, 1], &[3, 3]]);
        let versions = vec![
            TxnVersion {
                seq: 1,
                writes: vec![(RelId(0), ds(&[], &[&[2, 2]]))],
            },
            TxnVersion {
                seq: 2,
                writes: vec![(RelId(0), ds(&[&[3, 3]], &[]))],
            },
        ];
        let none: Vec<(RelId, DeltaSet)> = Vec::new();
        let view = ReadOverlay::build(&versions, none.iter().map(|(r, d)| (r, d)));
        let mut got = view.scan(RelId(0), &b);
        got.sort();
        assert_eq!(got, vec![t(&[1, 1]), t(&[2, 2])]);
        assert!(view.contains(RelId(0), &b, &t(&[2, 2])));
        assert!(!view.contains(RelId(0), &b, &t(&[3, 3])));
        let ov = view.overlay(RelId(0)).unwrap();
        assert_eq!(ov.len(&b), 2);
    }

    #[test]
    fn delete_then_reinsert_across_versions_emits_once() {
        // Snapshot holds (1,1). V1 deletes it, V2 re-inserts it: the
        // undo composition puts (1,1) in `add` while it is also present
        // in the base — scan must not emit it twice.
        let b = base(&[&[1, 1]]);
        let versions = vec![
            TxnVersion {
                seq: 1,
                writes: vec![(RelId(0), ds(&[], &[&[1, 1]]))],
            },
            TxnVersion {
                seq: 2,
                writes: vec![(RelId(0), ds(&[&[1, 1]], &[]))],
            },
        ];
        let none: Vec<(RelId, DeltaSet)> = Vec::new();
        let view = ReadOverlay::build(&versions, none.iter().map(|(r, d)| (r, d)));
        assert_eq!(view.scan(RelId(0), &b), vec![t(&[1, 1])]);
        assert_eq!(
            view.probe(RelId(0), &b, &[0], &[Value::Int(1)]),
            vec![t(&[1, 1])]
        );
    }

    #[test]
    fn local_writes_compose_on_top_of_the_snapshot() {
        // Base now: {(1,10)}; a later commit changed it to (1,20); the
        // session (snapshotted before that) sets it to (1,30) locally.
        let b = base(&[&[1, 20]]);
        let versions = vec![TxnVersion {
            seq: 3,
            writes: vec![(RelId(0), ds(&[&[1, 20]], &[&[1, 10]]))],
        }];
        let local = [(RelId(0), ds(&[&[1, 30]], &[&[1, 10]]))];
        let view = ReadOverlay::build(&versions, local.iter().map(|(r, d)| (r, d)));
        assert_eq!(view.scan(RelId(0), &b), vec![t(&[1, 30])]);
        assert_eq!(
            view.probe(RelId(0), &b, &[0], &[Value::Int(1)]),
            vec![t(&[1, 30])]
        );
        assert!(!view.contains(RelId(0), &b, &t(&[1, 10])));
        assert!(!view.contains(RelId(0), &b, &t(&[1, 20])));
    }

    #[test]
    fn unoverlaid_relations_read_through() {
        let b = base(&[&[7, 7]]);
        let view = ReadOverlay::default();
        assert!(!view.overlays(RelId(0)));
        assert!(view.contains(RelId(0), &b, &t(&[7, 7])));
        assert_eq!(view.scan(RelId(0), &b), vec![t(&[7, 7])]);
    }
}
