//! Checkpoint snapshots: a full image of the base relations, so the WAL
//! can be truncated and recovery time stays bounded by the work since the
//! last checkpoint rather than the life of the database.
//!
//! ```text
//! file := magic "AMOSSNP1" body crc:u32      (crc over body)
//! body := last_seq:u64 next_oid:u64 n_rels:u32 relation*
//! relation := name_len:u16 name:utf8 arity:u16 count:u64 tuple*
//! ```
//!
//! Snapshots are written to a temporary file and atomically renamed into
//! place, so a crash mid-checkpoint leaves the previous snapshot (or
//! none) intact — there is no torn-snapshot state to repair, and a CRC
//! mismatch is reported as [`StorageError::Corrupt`] rather than
//! silently ignored.

use std::io::Write as _;
use std::path::Path;

use amos_types::Tuple;

use crate::error::StorageError;
use crate::wal::{crc32, encode_tuple, Cursor};

/// File name of the snapshot inside a WAL directory.
pub const SNAPSHOT_FILE: &str = "snapshot.bin";
/// Magic bytes opening a snapshot file.
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"AMOSSNP1";

/// One relation's image inside a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotRelation {
    /// Relation name (ids are per-process; names are durable).
    pub name: String,
    /// Declared arity (kept even when the relation is empty).
    pub arity: usize,
    /// The tuples, in unspecified order.
    pub tuples: Vec<Tuple>,
}

/// A decoded snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// WAL sequence number up to which this snapshot is complete;
    /// recovery replays only batches with larger sequence numbers.
    pub last_seq: u64,
    /// The oid allocator's next value at checkpoint time.
    pub next_oid: u64,
    /// Every base relation.
    pub relations: Vec<SnapshotRelation>,
}

/// Serialize and atomically install a snapshot at `path`.
pub fn write_snapshot(path: &Path, snap: &Snapshot) -> Result<(), StorageError> {
    let mut body = Vec::new();
    body.extend_from_slice(&snap.last_seq.to_le_bytes());
    body.extend_from_slice(&snap.next_oid.to_le_bytes());
    body.extend_from_slice(&(snap.relations.len() as u32).to_le_bytes());
    for rel in &snap.relations {
        body.extend_from_slice(&(rel.name.len() as u16).to_le_bytes());
        body.extend_from_slice(rel.name.as_bytes());
        body.extend_from_slice(&(rel.arity as u16).to_le_bytes());
        body.extend_from_slice(&(rel.tuples.len() as u64).to_le_bytes());
        for t in &rel.tuples {
            encode_tuple(&mut body, t);
        }
    }
    let crc = crc32(&body);

    let tmp = path.with_extension("tmp");
    {
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(SNAPSHOT_MAGIC)?;
        file.write_all(&body)?;
        file.write_all(&crc.to_le_bytes())?;
        file.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// Load the snapshot at `path`; `Ok(None)` if none exists.
pub fn read_snapshot(path: &Path) -> Result<Option<Snapshot>, StorageError> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e.into()),
    };
    let corrupt = |what: &str| StorageError::Corrupt(format!("snapshot: {what}"));
    if bytes.len() < SNAPSHOT_MAGIC.len() + 4 || &bytes[..SNAPSHOT_MAGIC.len()] != SNAPSHOT_MAGIC {
        return Err(corrupt("bad magic or truncated"));
    }
    let body = &bytes[SNAPSHOT_MAGIC.len()..bytes.len() - 4];
    let stored_crc = u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().unwrap());
    if crc32(body) != stored_crc {
        return Err(corrupt("CRC mismatch"));
    }
    let mut cur = Cursor::new(body);
    let last_seq = cur.u64()?;
    let next_oid = cur.u64()?;
    let n_rels = cur.u32()? as usize;
    let mut relations = Vec::with_capacity(n_rels);
    for _ in 0..n_rels {
        let name_len = cur.u16()? as usize;
        let name = cur.str(name_len)?.to_string();
        let arity = cur.u16()? as usize;
        let count = cur.u64()? as usize;
        let mut tuples = Vec::with_capacity(count);
        for _ in 0..count {
            let t = cur.tuple()?;
            if t.arity() != arity {
                return Err(corrupt("tuple arity disagrees with relation header"));
            }
            tuples.push(t);
        }
        relations.push(SnapshotRelation {
            name,
            arity,
            tuples,
        });
    }
    if !cur.is_at_end() {
        return Err(corrupt("trailing bytes"));
    }
    Ok(Some(Snapshot {
        last_seq,
        next_oid,
        relations,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use amos_types::tuple;

    fn sample() -> Snapshot {
        Snapshot {
            last_seq: 42,
            next_oid: 17,
            relations: vec![
                SnapshotRelation {
                    name: "q".into(),
                    arity: 2,
                    tuples: vec![tuple![1, "a"], tuple![2, "b"]],
                },
                SnapshotRelation {
                    name: "empty".into(),
                    arity: 3,
                    tuples: vec![],
                },
            ],
        }
    }

    #[test]
    fn roundtrip() {
        let dir = std::env::temp_dir().join(format!("amos-snap-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(SNAPSHOT_FILE);
        assert_eq!(read_snapshot(&path).unwrap(), None);
        let snap = sample();
        write_snapshot(&path, &snap).unwrap();
        assert_eq!(read_snapshot(&path).unwrap(), Some(snap));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corruption_is_detected() {
        let dir = std::env::temp_dir().join(format!("amos-snapc-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(SNAPSHOT_FILE);
        write_snapshot(&path, &sample()).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            read_snapshot(&path),
            Err(StorageError::Corrupt(_))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
