//! Checkpoint snapshots: a full image of the base relations, so the WAL
//! can be truncated and recovery time stays bounded by the work since the
//! last checkpoint rather than the life of the database.
//!
//! ```text
//! file := magic "AMOSSNP2" body crc:u32      (crc over body)
//! body := last_seq:u64 next_oid:u64 n_rels:u32 relation*
//! relation := name_len:u16 name:utf8 arity:u16 n_runs:u32 run*
//! run := count:u64 tuple*                    (tuples in value order)
//! ```
//!
//! A relation's image is its **sorted runs** as they sit in memory
//! (tombstones already reconciled, the mutable head sealed as a final
//! run) — checkpointing streams runs out and recovery adopts them back
//! verbatim, with no rehydration through hash maps on either side. The
//! previous `AMOSSNP1` format (one flat, unordered tuple list per
//! relation) is still read, as a single run that gets defensively
//! sorted on load.
//!
//! Snapshots are written to a temporary file and atomically renamed into
//! place, so a crash mid-checkpoint leaves the previous snapshot (or
//! none) intact — there is no torn-snapshot state to repair, and a CRC
//! mismatch is reported as [`StorageError::Corrupt`] rather than
//! silently ignored.

use std::io::Write as _;
use std::path::Path;

use amos_types::Tuple;

use crate::error::StorageError;
use crate::wal::{crc32, encode_tuple, Cursor};

/// File name of the snapshot inside a WAL directory.
pub const SNAPSHOT_FILE: &str = "snapshot.bin";
/// Magic bytes opening a snapshot file (run-structured format).
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"AMOSSNP2";
/// Magic of the legacy flat-tuple-list format, still readable.
pub const SNAPSHOT_MAGIC_V1: &[u8; 8] = b"AMOSSNP1";

/// One relation's image inside a snapshot: its sorted runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotRelation {
    /// Relation name (ids are per-process; names are durable).
    pub name: String,
    /// Declared arity (kept even when the relation is empty).
    pub arity: usize,
    /// The tombstone-free sorted runs (a v1 snapshot decodes as one
    /// possibly-unordered run).
    pub runs: Vec<Vec<Tuple>>,
}

impl SnapshotRelation {
    /// Total tuples across all runs.
    pub fn tuple_count(&self) -> usize {
        self.runs.iter().map(Vec::len).sum()
    }
}

/// A decoded snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// WAL sequence number up to which this snapshot is complete;
    /// recovery replays only batches with larger sequence numbers.
    pub last_seq: u64,
    /// The oid allocator's next value at checkpoint time.
    pub next_oid: u64,
    /// Every base relation.
    pub relations: Vec<SnapshotRelation>,
}

/// Serialize and atomically install a snapshot at `path`.
pub fn write_snapshot(path: &Path, snap: &Snapshot) -> Result<(), StorageError> {
    let mut body = Vec::new();
    body.extend_from_slice(&snap.last_seq.to_le_bytes());
    body.extend_from_slice(&snap.next_oid.to_le_bytes());
    body.extend_from_slice(&(snap.relations.len() as u32).to_le_bytes());
    for rel in &snap.relations {
        body.extend_from_slice(&(rel.name.len() as u16).to_le_bytes());
        body.extend_from_slice(rel.name.as_bytes());
        body.extend_from_slice(&(rel.arity as u16).to_le_bytes());
        body.extend_from_slice(&(rel.runs.len() as u32).to_le_bytes());
        for run in &rel.runs {
            body.extend_from_slice(&(run.len() as u64).to_le_bytes());
            for t in run {
                encode_tuple(&mut body, t);
            }
        }
    }
    let crc = crc32(&body);

    let tmp = path.with_extension("tmp");
    {
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(SNAPSHOT_MAGIC)?;
        file.write_all(&body)?;
        file.write_all(&crc.to_le_bytes())?;
        file.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// Load the snapshot at `path`; `Ok(None)` if none exists.
pub fn read_snapshot(path: &Path) -> Result<Option<Snapshot>, StorageError> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e.into()),
    };
    let corrupt = |what: &str| StorageError::Corrupt(format!("snapshot: {what}"));
    if bytes.len() < SNAPSHOT_MAGIC.len() + 4 {
        return Err(corrupt("bad magic or truncated"));
    }
    let magic = &bytes[..SNAPSHOT_MAGIC.len()];
    let v1 = magic == SNAPSHOT_MAGIC_V1;
    if !v1 && magic != SNAPSHOT_MAGIC {
        return Err(corrupt("bad magic or truncated"));
    }
    let body = &bytes[SNAPSHOT_MAGIC.len()..bytes.len() - 4];
    let stored_crc = u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().unwrap());
    if crc32(body) != stored_crc {
        return Err(corrupt("CRC mismatch"));
    }
    let mut cur = Cursor::new(body);
    let last_seq = cur.u64()?;
    let next_oid = cur.u64()?;
    let n_rels = cur.u32()? as usize;
    let mut relations = Vec::with_capacity(n_rels);
    for _ in 0..n_rels {
        let name_len = cur.u16()? as usize;
        let name = cur.str(name_len)?.to_string();
        let arity = cur.u16()? as usize;
        let n_runs = if v1 { 1 } else { cur.u32()? as usize };
        let mut runs = Vec::with_capacity(n_runs);
        for _ in 0..n_runs {
            let count = cur.u64()? as usize;
            let mut tuples = Vec::with_capacity(count);
            for _ in 0..count {
                let t = cur.tuple()?;
                if t.arity() != arity {
                    return Err(corrupt("tuple arity disagrees with relation header"));
                }
                tuples.push(t);
            }
            runs.push(tuples);
        }
        if v1 && runs.len() == 1 && runs[0].is_empty() {
            runs.clear(); // empty v1 relation: no runs, not one empty run
        }
        relations.push(SnapshotRelation { name, arity, runs });
    }
    if !cur.is_at_end() {
        return Err(corrupt("trailing bytes"));
    }
    Ok(Some(Snapshot {
        last_seq,
        next_oid,
        relations,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use amos_types::tuple;

    fn sample() -> Snapshot {
        Snapshot {
            last_seq: 42,
            next_oid: 17,
            relations: vec![
                SnapshotRelation {
                    name: "q".into(),
                    arity: 2,
                    runs: vec![vec![tuple![1, "a"], tuple![2, "b"]], vec![tuple![3, "c"]]],
                },
                SnapshotRelation {
                    name: "empty".into(),
                    arity: 3,
                    runs: vec![],
                },
            ],
        }
    }

    #[test]
    fn roundtrip() {
        let dir = std::env::temp_dir().join(format!("amos-snap-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(SNAPSHOT_FILE);
        assert_eq!(read_snapshot(&path).unwrap(), None);
        let snap = sample();
        write_snapshot(&path, &snap).unwrap();
        assert_eq!(read_snapshot(&path).unwrap(), Some(snap));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corruption_is_detected() {
        let dir = std::env::temp_dir().join(format!("amos-snapc-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(SNAPSHOT_FILE);
        write_snapshot(&path, &sample()).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            read_snapshot(&path),
            Err(StorageError::Corrupt(_))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// A legacy `AMOSSNP1` file (flat tuple list per relation) still
    /// decodes, as one run per relation.
    #[test]
    fn v1_snapshot_still_readable() {
        use crate::wal::{crc32, encode_tuple};
        let mut body = Vec::new();
        body.extend_from_slice(&7u64.to_le_bytes()); // last_seq
        body.extend_from_slice(&3u64.to_le_bytes()); // next_oid
        body.extend_from_slice(&1u32.to_le_bytes()); // n_rels
        body.extend_from_slice(&1u16.to_le_bytes());
        body.extend_from_slice(b"q");
        body.extend_from_slice(&2u16.to_le_bytes()); // arity
        body.extend_from_slice(&2u64.to_le_bytes()); // count (v1: no n_runs)
        encode_tuple(&mut body, &tuple![2, "b"]);
        encode_tuple(&mut body, &tuple![1, "a"]);
        let crc = crc32(&body);

        let dir = std::env::temp_dir().join(format!("amos-snapv1-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(SNAPSHOT_FILE);
        let mut bytes = Vec::new();
        bytes.extend_from_slice(SNAPSHOT_MAGIC_V1);
        bytes.extend_from_slice(&body);
        bytes.extend_from_slice(&crc.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();

        let snap = read_snapshot(&path).unwrap().unwrap();
        assert_eq!(snap.last_seq, 7);
        assert_eq!(snap.relations.len(), 1);
        assert_eq!(
            snap.relations[0].runs,
            vec![vec![tuple![2, "b"], tuple![1, "a"]]],
            "v1 decodes as one (possibly unordered) run"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
