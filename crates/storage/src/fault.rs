//! Deterministic fault injection for durability and rule-failure tests.
//!
//! A [`FaultPlan`] describes *one* scheduled fault — a WAL crash, a short
//! (torn) write, a transient I/O error, or a failing/panicking rule
//! action — plus the shared counters the hooks consult to decide when it
//! fires. Plans are either built explicitly or derived deterministically
//! from a seed with [`FaultPlan::from_seed`], so every CI run injects the
//! same faults and every failure reproduces locally from the seed alone.
//!
//! The whole module is compiled only under the `fault-injection` feature;
//! production builds carry none of the hooks. Hooks live in three places,
//! mirroring where real systems fail:
//!
//! * the WAL writer ([`crate::wal::WalWriter`]) — crash-after-record-N,
//!   short writes, injected I/O errors;
//! * `amos-core`'s `propagate.rs` — a propagation pass that errors out;
//! * `amos-core`'s `rules.rs` — a rule action that errors or panics.
//!
//! Counters use atomics so one `Arc<FaultPlan>` can be shared between the
//! storage layer and the rule layer of the same engine.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// A fault targeting the WAL write path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalFault {
    /// Simulate a process crash once `n` records have been durably
    /// written: the record containing the crash point is torn mid-batch
    /// and every later write is silently dropped (the process is "dead"
    /// as far as the disk is concerned; the in-memory engine keeps
    /// going until the test discards it and recovers from disk).
    CrashAfterRecords(u64),
    /// Write only the first `keep` bytes of the batch with sequence
    /// number `batch`, then behave as crashed.
    ShortWrite {
        /// Sequence number of the batch to tear.
        batch: u64,
        /// Bytes of the framed batch that reach the disk.
        keep: usize,
    },
    /// Fail the write of batch `batch` with an I/O error, without
    /// touching the file (a transient `EIO`; the engine sees a failed
    /// commit and may roll back and retry).
    IoErrorAtBatch(u64),
    /// Partially write batch `batch` — only `keep` of its frame bytes
    /// land — then fail with an I/O error (a torn `write_all`, e.g.
    /// ENOSPC). Unlike [`WalFault::ShortWrite`] the process lives on:
    /// the writer must truncate the torn bytes so a retried append
    /// yields a readable log.
    TornWriteError {
        /// Sequence number of the batch whose write tears.
        batch: u64,
        /// Frame bytes that reach the disk before the failure.
        keep: usize,
    },
}

/// How an injected rule-action failure manifests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActionFailureKind {
    /// The action returns `Err(..)`.
    Error,
    /// The action panics (a buggy foreign function).
    Panic,
}

/// A fault targeting rule execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ActionFault {
    /// Name of the rule whose action fails.
    pub rule: String,
    /// Error or panic.
    pub kind: ActionFailureKind,
}

/// One scheduled, deterministic fault plus its firing state.
#[derive(Debug, Default)]
pub struct FaultPlan {
    /// Seed the plan was derived from (0 for hand-built plans).
    seed: u64,
    wal: Option<WalFault>,
    action: Option<ActionFault>,
    /// Fail the n-th propagation pass (1-based) with an injected error.
    fail_propagation_pass: Option<u64>,
    // -- shared firing state --
    records_written: AtomicU64,
    passes_started: AtomicU64,
    crashed: AtomicBool,
    action_fired: AtomicBool,
    propagation_fired: AtomicBool,
    io_error_fired: AtomicBool,
    torn_write_fired: AtomicBool,
}

impl FaultPlan {
    /// An empty plan (injects nothing). Useful as a baseline control.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// A plan with a single WAL fault.
    pub fn wal(fault: WalFault) -> Self {
        FaultPlan {
            wal: Some(fault),
            ..FaultPlan::default()
        }
    }

    /// A plan that fails the named rule's action.
    pub fn action(rule: impl Into<String>, kind: ActionFailureKind) -> Self {
        FaultPlan {
            action: Some(ActionFault {
                rule: rule.into(),
                kind,
            }),
            ..FaultPlan::default()
        }
    }

    /// A plan that fails the n-th propagation pass (1-based).
    pub fn propagation(pass: u64) -> Self {
        FaultPlan {
            fail_propagation_pass: Some(pass),
            ..FaultPlan::default()
        }
    }

    /// Derive a plan deterministically from `seed`, scaled to a workload
    /// of roughly `expected_records` WAL records. The same seed always
    /// yields the same plan, so a failing CI run reproduces locally.
    pub fn from_seed(seed: u64, expected_records: u64) -> Self {
        let mut s = Splitmix(seed);
        let span = expected_records.max(1);
        let wal = match s.next() % 3 {
            0 => WalFault::CrashAfterRecords(s.next() % span),
            1 => WalFault::ShortWrite {
                batch: 1 + s.next() % span,
                keep: (s.next() % 64) as usize,
            },
            _ => WalFault::IoErrorAtBatch(1 + s.next() % span),
        };
        FaultPlan {
            seed,
            wal: Some(wal),
            ..FaultPlan::default()
        }
    }

    /// The seed this plan was derived from (0 for hand-built plans).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The scheduled WAL fault, if any.
    pub fn wal_fault(&self) -> Option<&WalFault> {
        self.wal.as_ref()
    }

    /// Whether the simulated process has crashed: every later WAL write
    /// must be dropped without touching the file.
    pub fn is_crashed(&self) -> bool {
        self.crashed.load(Ordering::SeqCst)
    }

    /// Mark the simulated crash as having happened.
    pub fn mark_crashed(&self) {
        self.crashed.store(true, Ordering::SeqCst);
    }

    /// Total records the WAL writer has (fully) persisted so far.
    pub fn records_written(&self) -> u64 {
        self.records_written.load(Ordering::SeqCst)
    }

    /// Account `n` fully persisted records.
    pub fn note_records_written(&self, n: u64) {
        self.records_written.fetch_add(n, Ordering::SeqCst);
    }

    /// One-shot: should the batch with sequence `seq` fail with an I/O
    /// error? (Transient — firing once lets a retry succeed.)
    pub fn take_io_error(&self, seq: u64) -> bool {
        matches!(self.wal, Some(WalFault::IoErrorAtBatch(b)) if b == seq)
            && !self.io_error_fired.swap(true, Ordering::SeqCst)
    }

    /// One-shot: should the batch with sequence `seq` suffer a torn
    /// `write_all`? Returns how many frame bytes land before the error.
    /// (Transient — firing once lets a retry succeed.)
    pub fn take_torn_write(&self, seq: u64) -> Option<usize> {
        match self.wal {
            Some(WalFault::TornWriteError { batch, keep }) if batch == seq => {
                if self.torn_write_fired.swap(true, Ordering::SeqCst) {
                    None
                } else {
                    Some(keep)
                }
            }
            _ => None,
        }
    }

    /// One-shot: how should the action of rule `rule` fail right now, if
    /// at all?
    pub fn take_action_fault(&self, rule: &str) -> Option<ActionFailureKind> {
        let fault = self.action.as_ref()?;
        if fault.rule != rule || self.action_fired.swap(true, Ordering::SeqCst) {
            return None;
        }
        Some(fault.kind)
    }

    /// One-shot: should the propagation pass starting now fail? Counts
    /// passes internally; call exactly once per pass.
    pub fn take_propagation_fault(&self) -> bool {
        let pass = self.passes_started.fetch_add(1, Ordering::SeqCst) + 1;
        matches!(self.fail_propagation_pass, Some(p) if p == pass)
            && !self.propagation_fired.swap(true, Ordering::SeqCst)
    }
}

/// Minimal splitmix64 — enough determinism for plan derivation without
/// dragging a rand dependency into the storage crate.
struct Splitmix(u64);

impl Splitmix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_seed_is_deterministic() {
        let a = FaultPlan::from_seed(7, 100);
        let b = FaultPlan::from_seed(7, 100);
        assert_eq!(a.wal_fault(), b.wal_fault());
        let c = FaultPlan::from_seed(8, 100);
        // Different seeds disagree somewhere across a small sample.
        let differs = (0..16).any(|s| {
            FaultPlan::from_seed(s, 100).wal_fault()
                != FaultPlan::from_seed(s + 100, 100).wal_fault()
        });
        assert!(differs || a.wal_fault() != c.wal_fault());
    }

    #[test]
    fn action_fault_fires_once_for_matching_rule() {
        let plan = FaultPlan::action("r1", ActionFailureKind::Panic);
        assert_eq!(plan.take_action_fault("r2"), None);
        assert_eq!(plan.take_action_fault("r1"), Some(ActionFailureKind::Panic));
        assert_eq!(plan.take_action_fault("r1"), None, "one-shot");
    }

    #[test]
    fn propagation_fault_fires_on_scheduled_pass() {
        let plan = FaultPlan::propagation(2);
        assert!(!plan.take_propagation_fault()); // pass 1
        assert!(plan.take_propagation_fault()); // pass 2
        assert!(!plan.take_propagation_fault()); // pass 3
    }

    #[test]
    fn crash_state_is_sticky() {
        let plan = FaultPlan::wal(WalFault::CrashAfterRecords(3));
        assert!(!plan.is_crashed());
        plan.mark_crashed();
        assert!(plan.is_crashed());
    }
}
