//! Logical rollback: evaluating against the *old* database state without
//! materializing it (paper §4, fig. 3).
//!
//! Negative partial differentials are "historical queries that must be
//! executed in the database state when the deleted data were present".
//! Rather than materializing monitored relations, the paper computes the
//! old state from the new one: `S_old = (S_new ∪ Δ₋S) − Δ₊S`.
//!
//! [`OldStateView`] implements that identity lazily over a
//! [`BaseRelation`] and its transaction Δ-set: membership, scans, and
//! index probes all answer as of the start of the transaction. Because
//! Δ-sets are small in the common case, the overlay costs O(|Δ|) extra
//! work per operation.

use amos_types::{Tuple, Value};

use crate::delta::DeltaSet;
use crate::relation::BaseRelation;

/// Which database state to evaluate a relation access against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StateEpoch {
    /// The current database state ("the current database always reflects
    /// the new state").
    New,
    /// The pre-transaction state, reconstructed by logical rollback.
    Old,
}

/// A read-only view of a base relation as of the start of the current
/// transaction: `S_old = (S_new ∪ Δ₋S) − Δ₊S`.
#[derive(Debug, Clone, Copy)]
pub struct OldStateView<'a> {
    rel: &'a BaseRelation,
    delta: &'a DeltaSet,
}

impl<'a> OldStateView<'a> {
    /// Wrap a relation and its accumulated transaction Δ-set.
    pub fn new(rel: &'a BaseRelation, delta: &'a DeltaSet) -> Self {
        OldStateView { rel, delta }
    }

    /// Total size of the overlay Δ-set (`|Δ₊| + |Δ₋|`) — lets callers
    /// pick between per-probe overlay filtering (cheap for small
    /// transactions) and building a temporary old-state index.
    pub fn delta_len(&self) -> usize {
        self.delta.len()
    }

    /// Old-state membership.
    pub fn contains(&self, t: &Tuple) -> bool {
        (self.rel.contains(t) || self.delta.minus().contains(t)) && !self.delta.plus().contains(t)
    }

    /// Old-state cardinality.
    pub fn len(&self) -> usize {
        // |S_old| = |S_new| + |Δ₋| − |Δ₊| because Δ₊ ⊆ S_new and
        // Δ₋ ∩ S_new = ∅ hold whenever the Δ-set was accumulated from the
        // physical events of this relation.
        self.rel.len() + self.delta.minus().len() - self.delta.plus().len()
    }

    /// Whether the old state was empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Scan the old state: `(S_new − Δ₊) ∪ Δ₋`.
    pub fn scan(&self) -> impl Iterator<Item = &'a Tuple> + '_ {
        self.rel
            .scan()
            .filter(move |t| !self.delta.plus().contains(*t))
            .chain(self.delta.minus().iter())
    }

    /// Probe by key columns in the old state: the new-state probe minus
    /// inserted tuples, plus matching deleted tuples. Owned tuples —
    /// interning makes the clones reference bumps.
    pub fn probe(&self, cols: &[usize], key: &[Value]) -> Vec<Tuple> {
        let mut out: Vec<Tuple> = self
            .rel
            .probe(cols, key)
            .into_iter()
            .filter(|t| !self.delta.plus().contains(t))
            .collect();
        out.extend(
            self.delta
                .minus()
                .iter()
                .filter(|t| cols.iter().zip(key).all(|(&c, v)| &t[c] == v))
                .cloned(),
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amos_types::tuple;
    use std::collections::HashSet;

    /// Build a relation + delta pair by replaying events through both.
    fn apply(rel: &mut BaseRelation, delta: &mut DeltaSet, inserts: &[Tuple], deletes: &[Tuple]) {
        for t in inserts {
            if rel.insert(t.clone()) {
                delta.apply_insert(t.clone());
            }
        }
        for t in deletes {
            if rel.delete(t) {
                delta.apply_delete(t.clone());
            }
        }
    }

    #[test]
    fn rollback_identity() {
        let mut rel = BaseRelation::new("r", 2);
        for t in [tuple![1, 2], tuple![2, 3]] {
            rel.insert(t);
        }
        let old_snapshot: HashSet<Tuple> = rel.scan().cloned().collect();

        let mut delta = DeltaSet::new();
        apply(
            &mut rel,
            &mut delta,
            &[tuple![1, 4]],
            &[tuple![1, 2], tuple![2, 3]],
        );

        let view = OldStateView::new(&rel, &delta);
        let reconstructed: HashSet<Tuple> = view.scan().cloned().collect();
        assert_eq!(reconstructed, old_snapshot);
        assert_eq!(view.len(), old_snapshot.len());
        for t in &old_snapshot {
            assert!(view.contains(t));
        }
        assert!(
            !view.contains(&tuple![1, 4]),
            "inserted tuple not in old state"
        );
    }

    #[test]
    fn old_probe_sees_deleted_and_hides_inserted() {
        let mut rel = BaseRelation::new("r", 2);
        rel.ensure_index(&[0]);
        rel.insert(tuple![1, 10]);
        let mut delta = DeltaSet::new();
        apply(&mut rel, &mut delta, &[tuple![1, 11]], &[tuple![1, 10]]);

        let view = OldStateView::new(&rel, &delta);
        let hits = view.probe(&[0], &[Value::Int(1)]);
        assert_eq!(hits, vec![tuple![1, 10]]);
    }

    #[test]
    fn empty_delta_view_equals_relation() {
        let mut rel = BaseRelation::new("r", 1);
        rel.insert(tuple![1]);
        rel.insert(tuple![2]);
        let delta = DeltaSet::new();
        let view = OldStateView::new(&rel, &delta);
        assert_eq!(view.len(), 2);
        assert!(view.contains(&tuple![1]));
        assert_eq!(view.scan().count(), 2);
    }

    #[test]
    fn no_net_change_view_equals_relation() {
        let mut rel = BaseRelation::new("r", 1);
        rel.insert(tuple![1]);
        let mut delta = DeltaSet::new();
        // insert 2, delete 2 — cancels logically
        apply(&mut rel, &mut delta, &[tuple![2]], &[tuple![2]]);
        assert!(delta.is_empty());
        let view = OldStateView::new(&rel, &delta);
        assert_eq!(view.scan().count(), 1);
    }
}
