//! Storage-level errors.

use std::fmt;

/// Errors raised by the storage layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// No relation registered under this name.
    UnknownRelation(String),
    /// A relation with this name already exists.
    DuplicateRelation(String),
    /// Tuple arity did not match the relation's arity.
    ArityMismatch {
        /// Relation name.
        relation: String,
        /// Declared arity.
        expected: usize,
        /// Arity of the offending tuple.
        found: usize,
    },
    /// `begin` while a transaction is already open.
    TransactionAlreadyOpen,
    /// `commit`/`rollback` without an open transaction.
    NoOpenTransaction,
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::UnknownRelation(n) => write!(f, "unknown relation `{n}`"),
            StorageError::DuplicateRelation(n) => write!(f, "relation `{n}` already exists"),
            StorageError::ArityMismatch {
                relation,
                expected,
                found,
            } => write!(
                f,
                "arity mismatch on `{relation}`: expected {expected}, found {found}"
            ),
            StorageError::TransactionAlreadyOpen => write!(f, "a transaction is already open"),
            StorageError::NoOpenTransaction => write!(f, "no open transaction"),
        }
    }
}

impl std::error::Error for StorageError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert_eq!(
            StorageError::UnknownRelation("q".into()).to_string(),
            "unknown relation `q`"
        );
        assert_eq!(
            StorageError::ArityMismatch {
                relation: "q".into(),
                expected: 2,
                found: 3
            }
            .to_string(),
            "arity mismatch on `q`: expected 2, found 3"
        );
    }
}
