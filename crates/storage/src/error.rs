//! Storage-level errors.

use std::fmt;

/// Errors raised by the storage layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// No relation registered under this name.
    UnknownRelation(String),
    /// A relation with this name already exists.
    DuplicateRelation(String),
    /// Tuple arity did not match the relation's arity.
    ArityMismatch {
        /// Relation name.
        relation: String,
        /// Declared arity.
        expected: usize,
        /// Arity of the offending tuple.
        found: usize,
    },
    /// `begin` while a transaction is already open.
    TransactionAlreadyOpen,
    /// `commit`/`rollback` without an open transaction.
    NoOpenTransaction,
    /// `rollback_to` with a savepoint that does not lie within the
    /// current undo log (stale, or taken in another transaction).
    InvalidSavepoint {
        /// Log position recorded in the savepoint.
        savepoint: usize,
        /// Current log length.
        log_len: usize,
    },
    /// `rollback_to` with a savepoint from a different transaction
    /// epoch: a `begin`, `commit`, or `rollback` has reset the undo log
    /// since the savepoint was taken, so its log position no longer
    /// addresses the events it was taken over.
    StaleSavepoint {
        /// Epoch recorded in the savepoint.
        savepoint_epoch: u64,
        /// The storage's current epoch.
        current_epoch: u64,
    },
    /// A relation name too long for the WAL / snapshot codec, which
    /// frames names with a u16 byte length.
    RelationNameTooLong {
        /// Byte length of the offending name.
        len: usize,
    },
    /// An operating-system I/O failure while reading or writing the WAL
    /// or a snapshot. Carries the rendered `io::Error` (kept as a string
    /// so `StorageError` stays `Clone + Eq`).
    Io(String),
    /// The WAL or snapshot file failed structural validation (bad magic,
    /// CRC mismatch past the torn tail, non-monotonic sequence numbers).
    Corrupt(String),
}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e.to_string())
    }
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::UnknownRelation(n) => write!(f, "unknown relation `{n}`"),
            StorageError::DuplicateRelation(n) => write!(f, "relation `{n}` already exists"),
            StorageError::ArityMismatch {
                relation,
                expected,
                found,
            } => write!(
                f,
                "arity mismatch on `{relation}`: expected {expected}, found {found}"
            ),
            StorageError::TransactionAlreadyOpen => write!(f, "a transaction is already open"),
            StorageError::NoOpenTransaction => write!(f, "no open transaction"),
            StorageError::InvalidSavepoint { savepoint, log_len } => write!(
                f,
                "invalid savepoint {savepoint} (log has {log_len} records)"
            ),
            StorageError::StaleSavepoint {
                savepoint_epoch,
                current_epoch,
            } => write!(
                f,
                "stale savepoint from transaction epoch {savepoint_epoch} \
                 (current epoch is {current_epoch})"
            ),
            StorageError::RelationNameTooLong { len } => write!(
                f,
                "relation name of {len} bytes exceeds the {}-byte limit",
                u16::MAX
            ),
            StorageError::Io(e) => write!(f, "I/O error: {e}"),
            StorageError::Corrupt(what) => write!(f, "corrupt durable state: {what}"),
        }
    }
}

impl std::error::Error for StorageError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert_eq!(
            StorageError::UnknownRelation("q".into()).to_string(),
            "unknown relation `q`"
        );
        assert_eq!(
            StorageError::ArityMismatch {
                relation: "q".into(),
                expected: 2,
                found: 3
            }
            .to_string(),
            "arity mismatch on `q`: expected 2, found 3"
        );
    }
}
