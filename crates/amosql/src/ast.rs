//! Abstract syntax for the AMOSQL subset.

use amos_types::{ArithOp, CmpOp};

/// A typed variable declaration `item i`.
#[derive(Debug, Clone, PartialEq)]
pub struct TypedVar {
    /// The type name.
    pub type_name: String,
    /// The variable name.
    pub var: String,
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A query/rule variable (`i`, `s`).
    Var(String),
    /// An interface variable (`:item1`) resolved from the session
    /// environment.
    IfaceVar(String),
    /// Integer literal.
    Int(i64),
    /// Real literal.
    Real(f64),
    /// String literal.
    Str(String),
    /// Boolean literal (`true`/`false`).
    Bool(bool),
    /// A function call `quantity(i)`.
    Call {
        /// Function name.
        func: String,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// Arithmetic `lhs op rhs`.
    Arith {
        /// Operator.
        op: ArithOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Unary negation `-e`.
    Neg(Box<Expr>),
    /// Comparison `lhs op rhs` (boolean-valued).
    Cmp {
        /// Operator.
        op: CmpOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Conjunction.
    And(Box<Expr>, Box<Expr>),
    /// Disjunction.
    Or(Box<Expr>, Box<Expr>),
    /// Logical negation.
    Not(Box<Expr>),
}

/// A `select` query:
/// `select e₁, …  [for each T₁ v₁, …]  [where pred]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Select {
    /// The select list.
    pub exprs: Vec<Expr>,
    /// `for each` declarations.
    pub for_each: Vec<TypedVar>,
    /// `where` predicate.
    pub where_clause: Option<Expr>,
}

/// A statement in a rule action body.
#[derive(Debug, Clone, PartialEq)]
pub enum ProcStmt {
    /// A procedure call `order(i, max_stock(i) - quantity(i))`.
    Call {
        /// Procedure name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// An update `set f(args…) = value`.
    Set {
        /// Stored function name.
        func: String,
        /// Key arguments.
        args: Vec<Expr>,
        /// New value.
        value: Expr,
    },
    /// `add f(args…) = value` (multi-valued insert).
    Add {
        /// Stored function name.
        func: String,
        /// Key arguments.
        args: Vec<Expr>,
        /// Added value.
        value: Expr,
    },
    /// `remove f(args…) = value` (multi-valued delete).
    Remove {
        /// Stored function name.
        func: String,
        /// Key arguments.
        args: Vec<Expr>,
        /// Removed value.
        value: Expr,
    },
}

/// The `when` part of a rule.
#[derive(Debug, Clone, PartialEq)]
pub struct RuleCondition {
    /// `for each` declarations (empty for parameter-only conditions).
    pub for_each: Vec<TypedVar>,
    /// The predicate expression.
    pub predicate: Expr,
}

/// A node paired with the source position of its first token, so
/// downstream diagnostics (compiler errors, lint findings) can print
/// `file:line:col` even though the node itself carries no spans.
#[derive(Debug, Clone, PartialEq)]
pub struct Located<T> {
    /// The wrapped node.
    pub node: T,
    /// 1-based line of the node's first token.
    pub line: usize,
    /// 1-based column of the node's first token.
    pub col: usize,
}

/// A top-level statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `create type item [under thing];`
    CreateType {
        /// New type name.
        name: String,
        /// Optional supertype.
        under: Option<String>,
    },
    /// `create function name(T a, …) -> T [append only] [as select …];`
    CreateFunction {
        /// Function name.
        name: String,
        /// Parameters.
        params: Vec<TypedVar>,
        /// Result type names (usually one).
        results: Vec<String>,
        /// `append only` — the stored function promises to never see
        /// deletes, letting the engine prune Δ₋ differentials (L004).
        append_only: bool,
        /// Body: `None` for stored functions, `Some` for derived.
        body: Option<Select>,
    },
    /// `create rule name(T a, …) as [on f₁, …] when … do …;`
    CreateRule {
        /// Rule name.
        name: String,
        /// Parameters.
        params: Vec<TypedVar>,
        /// ECA event restriction: only test the condition when one of
        /// these stored functions changed (empty = pure CA rule).
        events: Vec<String>,
        /// Condition.
        condition: RuleCondition,
        /// Action statements.
        action: Vec<ProcStmt>,
        /// `priority N` (default 0).
        priority: i32,
    },
    /// `create item instances :item1, :item2;`
    CreateInstances {
        /// Type name.
        type_name: String,
        /// Interface-variable names receiving the new oids.
        names: Vec<String>,
    },
    /// `set f(args…) = value;`
    Update(ProcStmt),
    /// A standalone query.
    Select(Select),
    /// `activate rule_name(args…);`
    Activate {
        /// Rule name.
        rule: String,
        /// Parameter arguments.
        args: Vec<Expr>,
    },
    /// `deactivate rule_name(args…);`
    Deactivate {
        /// Rule name.
        rule: String,
        /// Parameter arguments.
        args: Vec<Expr>,
    },
    /// `begin;`
    Begin,
    /// `commit;`
    Commit,
    /// `rollback;`
    Rollback,
    /// A standalone procedure call `order(:item1, 5);`
    CallProc {
        /// Procedure name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// `drop rule name;` — deactivate everywhere and remove the rule.
    DropRule(String),
    /// `explain select …;` — show the compiled clauses and plans.
    ExplainSelect(Select),
    /// `explain rule name;` — show the rule's condition, differentials,
    /// and its slice of the propagation network.
    ExplainRule(String),
    /// `monitor rule name naive|incremental|auto;` — pin (or, with
    /// `auto`, unpin) the rule's monitoring strategy, overriding the
    /// hybrid cost model.
    MonitorRule {
        /// The rule to pin.
        rule: String,
        /// The strategy: `"naive"`, `"incremental"`, or `"auto"`.
        pin: String,
    },
}

impl Expr {
    /// All free variable names in the expression, in first-use order.
    pub fn free_vars(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars(&self, out: &mut Vec<String>) {
        match self {
            Expr::Var(v) if !out.iter().any(|x| x == v) => {
                out.push(v.clone());
            }
            Expr::Call { args, .. } => {
                for a in args {
                    a.collect_vars(out);
                }
            }
            Expr::Arith { lhs, rhs, .. } | Expr::Cmp { lhs, rhs, .. } => {
                lhs.collect_vars(out);
                rhs.collect_vars(out);
            }
            Expr::And(a, b) | Expr::Or(a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
            Expr::Not(e) | Expr::Neg(e) => e.collect_vars(out),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_vars_deduplicated_in_order() {
        // quantity(i) < threshold(i) + x
        let e = Expr::Cmp {
            op: CmpOp::Lt,
            lhs: Box::new(Expr::Call {
                func: "quantity".into(),
                args: vec![Expr::Var("i".into())],
            }),
            rhs: Box::new(Expr::Arith {
                op: ArithOp::Add,
                lhs: Box::new(Expr::Call {
                    func: "threshold".into(),
                    args: vec![Expr::Var("i".into())],
                }),
                rhs: Box::new(Expr::Var("x".into())),
            }),
        };
        assert_eq!(e.free_vars(), vec!["i".to_string(), "x".to_string()]);
    }
}
