//! The AMOSQL query compiler: flattening select expressions into
//! ObjectLog clauses.
//!
//! This reproduces §3.2/§4.3 of the paper: nested function calls become
//! body literals with generated `_G` variables, arithmetic becomes
//! `Arith` goals, comparisons become `Cmp` goals, `for each T v` becomes
//! a literal over the type's *extent* predicate, disjunction lifts to
//! multiple clauses (DNF), and negation becomes negated literals /
//! negated comparisons.
//!
//! For example the paper's
//!
//! ```text
//! select i for each item i where quantity(i) < threshold(i)
//! ```
//!
//! compiles to
//!
//! ```text
//! cnd(I) ← item_extent(I) ∧ quantity(I,_G1) ∧ threshold(I,_G2) ∧ _G1 < _G2
//! ```

use std::collections::HashMap;

use amos_objectlog::catalog::{Catalog, PredId};
use amos_objectlog::clause::{Clause, Literal, Term, Var};
use amos_storage::StateEpoch;
use amos_types::{CmpOp, TypeRegistry, Value};

use crate::ast::{Expr, Select, TypedVar};
use crate::error::ParseError;

/// Everything the compiler needs to resolve names.
pub struct QueryEnv<'a> {
    /// Predicate definitions (functions).
    pub catalog: &'a Catalog,
    /// The type lattice.
    pub types: &'a TypeRegistry,
    /// Extent predicate per user type name.
    pub extents: &'a HashMap<String, PredId>,
    /// Session interface variables (`:item1`), resolved to constants at
    /// compile time.
    pub iface: &'a HashMap<String, Value>,
}

impl QueryEnv<'_> {
    fn resolve_iface(&self, name: &str) -> Result<Value, ParseError> {
        self.iface.get(name).cloned().ok_or_else(|| {
            ParseError::unpositioned(format!("unbound interface variable `:{name}`"))
        })
    }

    fn lookup_fn(&self, name: &str) -> Result<PredId, ParseError> {
        self.catalog
            .lookup(name)
            .map_err(|_| ParseError::unpositioned(format!("unknown function `{name}`")))
    }

    /// Whether a type has an extent (user types do; scalars don't).
    fn extent_of(&self, type_name: &str) -> Result<Option<PredId>, ParseError> {
        let id = self
            .types
            .lookup(type_name)
            .map_err(|e| ParseError::unpositioned(e.to_string()))?;
        if self.types.def(id).builtin {
            Ok(None)
        } else {
            Ok(Some(*self.extents.get(type_name).ok_or_else(|| {
                ParseError::unpositioned(format!("type `{type_name}` has no extent"))
            })?))
        }
    }
}

/// The result of compiling a select: one or more clauses (disjunction),
/// all with the same head layout.
#[derive(Debug, Clone)]
pub struct CompiledQuery {
    /// The clauses.
    pub clauses: Vec<Clause>,
    /// Head arity (outer params + select expressions).
    pub head_arity: usize,
}

/// An atom of the predicate after boolean normalization.
#[derive(Debug, Clone)]
enum Atom {
    Cmp {
        op: CmpOp,
        lhs: Expr,
        rhs: Expr,
    },
    BoolCall {
        func: String,
        args: Vec<Expr>,
        negated: bool,
    },
}

/// Normalize a boolean expression to DNF over atoms, pushing `not`
/// inward (De Morgan; comparisons negate their operator; boolean calls
/// toggle their negation flag).
fn dnf(expr: &Expr, negated: bool) -> Result<Vec<Vec<Atom>>, ParseError> {
    match expr {
        Expr::And(a, b) => {
            if negated {
                // ¬(a ∧ b) = ¬a ∨ ¬b
                let mut out = dnf(a, true)?;
                out.extend(dnf(b, true)?);
                Ok(out)
            } else {
                let left = dnf(a, false)?;
                let right = dnf(b, false)?;
                let mut out = Vec::with_capacity(left.len() * right.len());
                for l in &left {
                    for r in &right {
                        let mut c = l.clone();
                        c.extend(r.clone());
                        out.push(c);
                    }
                }
                Ok(out)
            }
        }
        Expr::Or(a, b) => {
            if negated {
                // ¬(a ∨ b) = ¬a ∧ ¬b
                let left = dnf(a, true)?;
                let right = dnf(b, true)?;
                let mut out = Vec::with_capacity(left.len() * right.len());
                for l in &left {
                    for r in &right {
                        let mut c = l.clone();
                        c.extend(r.clone());
                        out.push(c);
                    }
                }
                Ok(out)
            } else {
                let mut out = dnf(a, false)?;
                out.extend(dnf(b, false)?);
                Ok(out)
            }
        }
        Expr::Not(e) => dnf(e, !negated),
        Expr::Cmp { op, lhs, rhs } => {
            let op = if negated { op.negated() } else { *op };
            Ok(vec![vec![Atom::Cmp {
                op,
                lhs: (**lhs).clone(),
                rhs: (**rhs).clone(),
            }]])
        }
        Expr::Call { func, args } => Ok(vec![vec![Atom::BoolCall {
            func: func.clone(),
            args: args.clone(),
            negated,
        }]]),
        Expr::Bool(true) => {
            if negated {
                Ok(vec![]) // false: no disjuncts
            } else {
                Ok(vec![vec![]]) // true: one empty conjunct
            }
        }
        Expr::Bool(false) => {
            if negated {
                Ok(vec![vec![]])
            } else {
                Ok(vec![])
            }
        }
        other => Err(ParseError::unpositioned(format!(
            "expected boolean expression, found {other:?}"
        ))),
    }
}

/// Per-clause compilation state.
struct ClauseCtx<'e, 'a> {
    env: &'e QueryEnv<'a>,
    vars: HashMap<String, Var>,
    n_vars: u32,
    body: Vec<Literal>,
}

impl<'e, 'a> ClauseCtx<'e, 'a> {
    fn new(env: &'e QueryEnv<'a>) -> Self {
        ClauseCtx {
            env,
            vars: HashMap::new(),
            n_vars: 0,
            body: Vec::new(),
        }
    }

    fn fresh(&mut self) -> Var {
        let v = Var(self.n_vars);
        self.n_vars += 1;
        v
    }

    fn declare(&mut self, name: &str) -> Result<Var, ParseError> {
        if self.vars.contains_key(name) {
            return Err(ParseError::unpositioned(format!(
                "variable `{name}` declared twice"
            )));
        }
        let v = self.fresh();
        self.vars.insert(name.to_string(), v);
        Ok(v)
    }

    fn lookup_var(&self, name: &str) -> Result<Var, ParseError> {
        self.vars
            .get(name)
            .copied()
            .ok_or_else(|| ParseError::unpositioned(format!("undeclared variable `{name}`")))
    }

    /// Emit the extent literal for a typed variable (user types only).
    fn emit_extent(&mut self, tv: &TypedVar, var: Var) -> Result<(), ParseError> {
        if let Some(extent) = self.env.extent_of(&tv.type_name)? {
            self.body.push(Literal::Pred {
                pred: extent,
                args: vec![Term::Var(var)],
                negated: false,
                epoch: StateEpoch::New,
            });
        }
        Ok(())
    }

    /// Flatten a value expression to a term, emitting body literals for
    /// calls and arithmetic.
    fn flatten(&mut self, expr: &Expr) -> Result<Term, ParseError> {
        match expr {
            Expr::Var(name) => Ok(Term::Var(self.lookup_var(name)?)),
            Expr::IfaceVar(name) => Ok(Term::Const(self.env.resolve_iface(name)?)),
            Expr::Int(i) => Ok(Term::Const(Value::Int(*i))),
            Expr::Real(r) => Ok(Term::Const(
                Value::real(*r).map_err(|e| ParseError::unpositioned(e.to_string()))?,
            )),
            Expr::Str(s) => Ok(Term::Const(Value::str(s.as_str()))),
            Expr::Bool(b) => Ok(Term::Const(Value::Bool(*b))),
            Expr::Call { func, args } => {
                let result = self.fresh();
                self.emit_call(func, args, Term::Var(result), false)?;
                Ok(Term::Var(result))
            }
            Expr::Arith { op, lhs, rhs } => {
                let l = self.flatten(lhs)?;
                let r = self.flatten(rhs)?;
                let result = self.fresh();
                self.body.push(Literal::Arith {
                    op: *op,
                    result: Term::Var(result),
                    lhs: l,
                    rhs: r,
                });
                Ok(Term::Var(result))
            }
            Expr::Neg(e) => {
                let inner = self.flatten(e)?;
                let result = self.fresh();
                self.body.push(Literal::Arith {
                    op: amos_types::ArithOp::Sub,
                    result: Term::Var(result),
                    lhs: Term::Const(Value::Int(0)),
                    rhs: inner,
                });
                Ok(Term::Var(result))
            }
            Expr::Cmp { .. } | Expr::And(..) | Expr::Or(..) | Expr::Not(_) => Err(
                ParseError::unpositioned("boolean expression used as a value".to_string()),
            ),
        }
    }

    /// Emit a function-call literal with an explicit result term.
    fn emit_call(
        &mut self,
        func: &str,
        args: &[Expr],
        result: Term,
        negated: bool,
    ) -> Result<(), ParseError> {
        let pred = self.env.lookup_fn(func)?;
        let arity = self.env.catalog.def(pred).arity;
        if args.len() + 1 != arity {
            return Err(ParseError::unpositioned(format!(
                "function `{func}` takes {} arguments, {} supplied",
                arity - 1,
                args.len()
            )));
        }
        let mut terms = Vec::with_capacity(arity);
        for a in args {
            terms.push(self.flatten(a)?);
        }
        terms.push(result);
        self.body.push(Literal::Pred {
            pred,
            args: terms,
            negated,
            epoch: StateEpoch::New,
        });
        Ok(())
    }

    /// Compile one atom into body literals.
    fn emit_atom(&mut self, atom: &Atom) -> Result<(), ParseError> {
        match atom {
            Atom::BoolCall {
                func,
                args,
                negated,
            } => {
                // A call in boolean position: result column = true.
                self.emit_call(func, args, Term::Const(Value::Bool(true)), *negated)
            }
            Atom::Cmp { op, lhs, rhs } => {
                // Equality with a call on one side folds the other side
                // into the call's result column — `supplies(s) = i`
                // becomes `supplies(S, I)` exactly as in the paper.
                if *op == CmpOp::Eq {
                    if let Expr::Call { func, args } = lhs {
                        let r = self.flatten(rhs)?;
                        return self.emit_call(func, args, r, false);
                    }
                    if let Expr::Call { func, args } = rhs {
                        let l = self.flatten(lhs)?;
                        return self.emit_call(func, args, l, false);
                    }
                }
                // Inequality with a call on one side: `f(x) != v` means
                // "the stored value differs", not negation-as-failure.
                let l = self.flatten(lhs)?;
                let r = self.flatten(rhs)?;
                self.body.push(Literal::Cmp {
                    op: *op,
                    lhs: l,
                    rhs: r,
                });
                Ok(())
            }
        }
    }
}

/// Compile a select with outer parameters: the produced clauses have
/// head = `outer_params ++ select expressions`.
pub fn compile_select(
    env: &QueryEnv<'_>,
    select: &Select,
    outer_params: &[TypedVar],
) -> Result<CompiledQuery, ParseError> {
    let disjuncts = match &select.where_clause {
        Some(pred) => dnf(pred, false)?,
        None => vec![vec![]],
    };
    if disjuncts.is_empty() {
        return Err(ParseError::unpositioned(
            "condition is constant false".to_string(),
        ));
    }

    let head_arity = outer_params.len() + select.exprs.len();
    let mut clauses = Vec::with_capacity(disjuncts.len());
    for conjunct in &disjuncts {
        let mut ctx = ClauseCtx::new(env);
        let mut head: Vec<Term> = Vec::with_capacity(head_arity);
        // Declare params and for-each vars first so heads align across
        // clauses.
        for tv in outer_params {
            let v = ctx.declare(&tv.var)?;
            ctx.emit_extent(tv, v)?;
            head.push(Term::Var(v));
        }
        for tv in &select.for_each {
            let v = ctx.declare(&tv.var)?;
            ctx.emit_extent(tv, v)?;
        }
        for atom in conjunct {
            ctx.emit_atom(atom)?;
        }
        for e in &select.exprs {
            let t = ctx.flatten(e)?;
            head.push(t);
        }
        clauses.push(Clause {
            n_vars: ctx.n_vars,
            head,
            body: ctx.body,
        });
    }
    Ok(CompiledQuery {
        clauses,
        head_arity,
    })
}

/// Compile a rule condition: head = `params ++ for-each vars`, which is
/// exactly the data flow from condition to action (shared query
/// variables, §1 "set-oriented action execution").
pub fn compile_predicate(
    env: &QueryEnv<'_>,
    for_each: &[TypedVar],
    predicate: &Expr,
    params: &[TypedVar],
) -> Result<CompiledQuery, ParseError> {
    let select = Select {
        exprs: for_each
            .iter()
            .map(|tv| Expr::Var(tv.var.clone()))
            .collect(),
        for_each: for_each.to_vec(),
        where_clause: Some(predicate.clone()),
    };
    compile_select(env, &select, params)
}

/// [`compile_select`] anchoring otherwise unpositioned semantic errors
/// (unknown function, duplicate variable, constant-false condition, …)
/// at `at` — the span of the enclosing statement's first token. Errors
/// that already carry a position keep it.
pub fn compile_select_at(
    env: &QueryEnv<'_>,
    select: &Select,
    outer_params: &[TypedVar],
    at: Option<(usize, usize)>,
) -> Result<CompiledQuery, ParseError> {
    compile_select(env, select, outer_params).map_err(|e| locate(e, at))
}

/// [`compile_predicate`] with statement-span anchoring; see
/// [`compile_select_at`].
pub fn compile_predicate_at(
    env: &QueryEnv<'_>,
    for_each: &[TypedVar],
    predicate: &Expr,
    params: &[TypedVar],
    at: Option<(usize, usize)>,
) -> Result<CompiledQuery, ParseError> {
    compile_predicate(env, for_each, predicate, params).map_err(|e| locate(e, at))
}

fn locate(e: ParseError, at: Option<(usize, usize)>) -> ParseError {
    match at {
        Some((line, col)) if e.line == 0 => ParseError::new(line, col, e.message),
        _ => e,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amos_objectlog::catalog::Catalog;
    use amos_storage::Storage;
    use amos_types::TypeId;

    fn sig(n: usize) -> Vec<TypeId> {
        vec![TypeId(0); n]
    }

    struct Env {
        catalog: Catalog,
        types: TypeRegistry,
        extents: HashMap<String, PredId>,
        iface: HashMap<String, Value>,
    }

    /// The paper's inventory schema.
    fn setup() -> Env {
        let mut storage = Storage::new();
        let mut catalog = Catalog::new();
        let mut types = TypeRegistry::new();
        let mut extents = HashMap::new();

        for ty in ["item", "supplier"] {
            types.create(ty, None).unwrap();
            let rel = storage.create_relation(format!("{ty}_extent"), 1).unwrap();
            let pred = catalog
                .define_stored(&format!("{ty}_extent"), sig(1), rel, 1)
                .unwrap();
            extents.insert(ty.to_string(), pred);
        }
        for (name, arity) in [
            ("quantity", 2),
            ("max_stock", 2),
            ("min_stock", 2),
            ("consume_freq", 2),
            ("supplies", 2),
            ("delivery_time", 3),
            ("threshold", 2),
            ("in_stock", 2), // boolean-valued
        ] {
            let rel = storage.create_relation(name, arity).unwrap();
            catalog
                .define_stored(name, sig(arity), rel, arity - 1)
                .unwrap();
        }
        Env {
            catalog,
            types,
            extents,
            iface: HashMap::new(),
        }
    }

    fn env<'a>(e: &'a Env) -> QueryEnv<'a> {
        QueryEnv {
            catalog: &e.catalog,
            types: &e.types,
            extents: &e.extents,
            iface: &e.iface,
        }
    }

    fn parse_select(src: &str) -> Select {
        match crate::parser::parse(src).unwrap().remove(0) {
            crate::ast::Statement::Select(s) => s,
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn flattens_the_paper_condition() {
        let e = setup();
        let sel = parse_select("select i for each item i where quantity(i) < threshold(i);");
        let q = compile_select(&env(&e), &sel, &[]).unwrap();
        assert_eq!(q.clauses.len(), 1);
        assert_eq!(q.head_arity, 1);
        let c = &q.clauses[0];
        // extent + quantity + threshold + cmp
        assert_eq!(c.body.len(), 4);
        assert!(c.unsafe_var().is_none());
        assert!(matches!(c.body[3], Literal::Cmp { op: CmpOp::Lt, .. }));
    }

    #[test]
    fn threshold_body_matches_section_3_2() {
        let e = setup();
        // threshold(item i) -> integer as
        //   select consume_freq(i) * delivery_time(i,s) + min_stock(i)
        //   for each supplier s where supplies(s) = i
        let sel = parse_select(
            "select consume_freq(i) * delivery_time(i, s) + min_stock(i) \
             for each supplier s where supplies(s) = i;",
        );
        let params = vec![TypedVar {
            type_name: "item".into(),
            var: "i".into(),
        }];
        let q = compile_select(&env(&e), &sel, &params).unwrap();
        let c = &q.clauses[0];
        assert_eq!(q.head_arity, 2, "i plus the result expression");
        // `supplies(s) = i` folded into supplies(S, I) — no Unify goal.
        let supplies = e.catalog.lookup("supplies").unwrap();
        let lit = c
            .body
            .iter()
            .find(|l| l.pred() == Some(supplies))
            .expect("supplies literal present");
        match lit {
            Literal::Pred { args, .. } => {
                assert_eq!(args.len(), 2);
                assert!(matches!(args[1], Term::Var(_)));
            }
            other => panic!("{other:?}"),
        }
        // Two arith goals: mul then add.
        let ariths = c
            .body
            .iter()
            .filter(|l| matches!(l, Literal::Arith { .. }))
            .count();
        assert_eq!(ariths, 2);
        assert!(c.unsafe_var().is_none());
    }

    #[test]
    fn disjunction_lifts_to_clauses() {
        let e = setup();
        let sel =
            parse_select("select i for each item i where quantity(i) < 10 or quantity(i) > 100;");
        let q = compile_select(&env(&e), &sel, &[]).unwrap();
        assert_eq!(q.clauses.len(), 2);
        for c in &q.clauses {
            assert_eq!(c.head.len(), 1);
            assert!(c.unsafe_var().is_none());
        }
    }

    #[test]
    fn negation_forms() {
        let e = setup();
        // not of comparison → negated operator
        let sel = parse_select("select i for each item i where not (quantity(i) < 10);");
        let q = compile_select(&env(&e), &sel, &[]).unwrap();
        assert!(q.clauses[0]
            .body
            .iter()
            .any(|l| matches!(l, Literal::Cmp { op: CmpOp::Ge, .. })));

        // not of boolean call → negated literal
        let sel = parse_select("select i for each item i where not in_stock(i);");
        let q = compile_select(&env(&e), &sel, &[]).unwrap();
        assert!(q.clauses[0]
            .body
            .iter()
            .any(|l| matches!(l, Literal::Pred { negated: true, .. })));

        // De Morgan over and
        let sel =
            parse_select("select i for each item i where not (quantity(i) < 10 and in_stock(i));");
        let q = compile_select(&env(&e), &sel, &[]).unwrap();
        assert_eq!(q.clauses.len(), 2);
    }

    #[test]
    fn interface_vars_resolve_to_constants() {
        let mut e = setup();
        e.iface.insert(
            "item1".to_string(),
            Value::Oid(amos_types::Oid::from_raw(7)),
        );
        let sel = parse_select("select quantity(:item1);");
        let q = compile_select(&env(&e), &sel, &[]).unwrap();
        let c = &q.clauses[0];
        match &c.body[0] {
            Literal::Pred { args, .. } => {
                assert_eq!(
                    args[0],
                    Term::Const(Value::Oid(amos_types::Oid::from_raw(7)))
                );
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn errors_reported() {
        let e = setup();
        let sel = parse_select("select i for each item i where nosuch(i) < 1;");
        assert!(compile_select(&env(&e), &sel, &[])
            .unwrap_err()
            .message
            .contains("unknown function"));

        let sel = parse_select("select j for each item i where quantity(i) < 10;");
        assert!(compile_select(&env(&e), &sel, &[])
            .unwrap_err()
            .message
            .contains("undeclared variable"));

        let sel = parse_select("select i for each item i where quantity(i, i) < 10;");
        assert!(compile_select(&env(&e), &sel, &[])
            .unwrap_err()
            .message
            .contains("takes 1 arguments"));

        let sel = parse_select("select quantity(:missing);");
        assert!(compile_select(&env(&e), &sel, &[])
            .unwrap_err()
            .message
            .contains("unbound interface variable"));
    }

    #[test]
    fn rule_condition_head_is_params_then_foreach() {
        let e = setup();
        let stmts = crate::parser::parse(
            "create rule r(item i) as when for each supplier s \
             where supplies(s) = i and quantity(i) < 10 do order(i);",
        )
        .unwrap();
        let crate::ast::Statement::CreateRule {
            params, condition, ..
        } = &stmts[0]
        else {
            panic!()
        };
        let q =
            compile_predicate(&env(&e), &condition.for_each, &condition.predicate, params).unwrap();
        assert_eq!(q.head_arity, 2, "param i + for-each s");
        assert!(q.clauses[0].unsafe_var().is_none());
    }

    #[test]
    fn constant_conditions() {
        let e = setup();
        let sel = parse_select("select i for each item i where true;");
        let q = compile_select(&env(&e), &sel, &[]).unwrap();
        assert_eq!(q.clauses.len(), 1);
        assert_eq!(q.clauses[0].body.len(), 1, "just the extent literal");

        let sel = parse_select("select i for each item i where false;");
        assert!(compile_select(&env(&e), &sel, &[]).is_err());
    }
}
