//! Parse and compile errors with source positions.

use std::fmt;

/// A positioned syntax or compilation error.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
    /// Human-readable message.
    pub message: String,
}

impl ParseError {
    /// Construct an error.
    pub fn new(line: usize, col: usize, message: impl Into<String>) -> Self {
        ParseError {
            line,
            col,
            message: message.into(),
        }
    }

    /// An error without a useful position (end of input, semantic
    /// errors during compilation).
    pub fn unpositioned(message: impl Into<String>) -> Self {
        ParseError::new(0, 0, message)
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "{}", self.message)
        } else {
            write!(f, "{}:{}: {}", self.line, self.col, self.message)
        }
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert_eq!(ParseError::new(3, 7, "boom").to_string(), "3:7: boom");
        assert_eq!(ParseError::unpositioned("boom").to_string(), "boom");
    }
}
