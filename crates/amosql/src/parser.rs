//! Recursive-descent parser for the AMOSQL subset.
//!
//! Grammar (informal):
//!
//! ```text
//! script      := statement* ;
//! statement   := create_type | create_function | create_rule
//!              | create_instances | update | select | activate
//!              | deactivate | begin | commit | rollback | call ';'
//! create_type := 'create' 'type' IDENT ['under' IDENT] ';'
//! create_fn   := 'create' 'function' IDENT '(' [typed_var,*] ')'
//!                '->' IDENT ['as' select] ';'
//! create_rule := 'create' 'rule' IDENT '(' [typed_var,*] ')' 'as'
//!                'when' [for_each] expr
//!                'do' proc_stmt (',' proc_stmt)* ['priority' INT] ';'
//! for_each    := 'for' 'each' typed_var (',' typed_var)* 'where'
//! select      := 'select' expr (',' expr)*
//!                ['for' 'each' typed_var (',' typed_var)*]
//!                ['where' expr]
//! expr        := or_expr  (standard precedence: or < and < not < cmp
//!                < add/sub < mul/div < unary < atom)
//! ```

use amos_types::{ArithOp, CmpOp};

use crate::ast::*;
use crate::error::ParseError;
use crate::lexer::{tokenize, Spanned, Token};

/// Parse an AMOSQL script into statements.
pub fn parse(src: &str) -> Result<Vec<Statement>, ParseError> {
    Ok(parse_spanned(src)?.into_iter().map(|l| l.node).collect())
}

/// Parse an AMOSQL script into statements, each tagged with the source
/// position of its first token — the anchor for compiler and lint
/// diagnostics about that statement.
pub fn parse_spanned(src: &str) -> Result<Vec<Located<Statement>>, ParseError> {
    let tokens = tokenize(src)?;
    let mut p = Parser { tokens, pos: 0 };
    let mut out = Vec::new();
    while !p.at_end() {
        let (line, col) = p
            .tokens
            .get(p.pos)
            .map(|s| (s.line, s.col))
            .unwrap_or((0, 0));
        out.push(Located {
            node: p.statement()?,
            line,
            col,
        });
    }
    Ok(out)
}

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|s| &s.token)
    }

    fn peek2(&self) -> Option<&Token> {
        self.tokens.get(self.pos + 1).map(|s| &s.token)
    }

    fn err_here(&self, msg: impl Into<String>) -> ParseError {
        match self.tokens.get(self.pos) {
            Some(s) => ParseError::new(s.line, s.col, msg),
            None => ParseError::unpositioned(format!("{} (at end of input)", msg.into())),
        }
    }

    fn advance(&mut self) -> Result<Token, ParseError> {
        let t = self
            .tokens
            .get(self.pos)
            .map(|s| s.token.clone())
            .ok_or_else(|| self.err_here("unexpected end of input"))?;
        self.pos += 1;
        Ok(t)
    }

    fn expect(&mut self, tok: &Token) -> Result<(), ParseError> {
        if self.peek() == Some(tok) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err_here(format!(
                "expected `{tok}`, found {}",
                self.peek()
                    .map(|t| format!("`{t}`"))
                    .unwrap_or_else(|| "end of input".into())
            )))
        }
    }

    fn keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        match self.peek() {
            Some(Token::Ident(s)) if s == kw => {
                self.pos += 1;
                Ok(())
            }
            _ => Err(self.err_here(format!("expected `{kw}`"))),
        }
    }

    fn at_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Ident(s)) if s == kw)
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.at_keyword(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.peek() {
            Some(Token::Ident(s)) => {
                let s = s.clone();
                self.pos += 1;
                Ok(s)
            }
            _ => Err(self.err_here("expected identifier")),
        }
    }

    // ------------------------------------------------------------------
    // Statements
    // ------------------------------------------------------------------

    fn statement(&mut self) -> Result<Statement, ParseError> {
        let stmt = if self.at_keyword("create") {
            self.create()?
        } else if self.at_keyword("set") || self.at_keyword("add") || self.at_keyword("remove") {
            Statement::Update(self.update_stmt()?)
        } else if self.at_keyword("select") {
            Statement::Select(self.select()?)
        } else if self.eat_keyword("activate") {
            let (rule, args) = self.name_and_args()?;
            Statement::Activate { rule, args }
        } else if self.eat_keyword("deactivate") {
            let (rule, args) = self.name_and_args()?;
            Statement::Deactivate { rule, args }
        } else if self.eat_keyword("drop") {
            self.keyword("rule")?;
            Statement::DropRule(self.ident()?)
        } else if self.eat_keyword("explain") {
            if self.eat_keyword("rule") {
                Statement::ExplainRule(self.ident()?)
            } else {
                Statement::ExplainSelect(self.select()?)
            }
        } else if self.at_keyword("monitor")
            && matches!(self.peek2(), Some(Token::Ident(s)) if s == "rule")
        {
            self.keyword("monitor")?;
            self.keyword("rule")?;
            let rule = self.ident()?;
            let pin = match self.peek() {
                Some(Token::Ident(s)) if matches!(s.as_str(), "naive" | "incremental" | "auto") => {
                    self.ident()?
                }
                _ => return Err(self.err_here("expected `naive`, `incremental`, or `auto`")),
            };
            Statement::MonitorRule { rule, pin }
        } else if self.eat_keyword("begin") {
            Statement::Begin
        } else if self.eat_keyword("commit") {
            Statement::Commit
        } else if self.eat_keyword("rollback") {
            Statement::Rollback
        } else if matches!(self.peek(), Some(Token::Ident(_)))
            && self.peek2() == Some(&Token::LParen)
        {
            let (name, args) = self.name_and_args()?;
            Statement::CallProc { name, args }
        } else {
            return Err(self.err_here("expected a statement"));
        };
        self.expect(&Token::Semi)?;
        Ok(stmt)
    }

    fn name_and_args(&mut self) -> Result<(String, Vec<Expr>), ParseError> {
        let name = self.ident()?;
        self.expect(&Token::LParen)?;
        let mut args = Vec::new();
        if self.peek() != Some(&Token::RParen) {
            loop {
                args.push(self.expr()?);
                if !self.eat_token(&Token::Comma) {
                    break;
                }
            }
        }
        self.expect(&Token::RParen)?;
        Ok((name, args))
    }

    fn eat_token(&mut self, tok: &Token) -> bool {
        if self.peek() == Some(tok) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn create(&mut self) -> Result<Statement, ParseError> {
        self.keyword("create")?;
        if self.eat_keyword("type") {
            let name = self.ident()?;
            let under = if self.eat_keyword("under") {
                Some(self.ident()?)
            } else {
                None
            };
            return Ok(Statement::CreateType { name, under });
        }
        if self.eat_keyword("function") {
            return self.create_function();
        }
        if self.eat_keyword("rule") {
            return self.create_rule();
        }
        // create <type> instances :a, :b
        let type_name = self.ident()?;
        self.keyword("instances")?;
        let mut names = Vec::new();
        loop {
            match self.advance()? {
                Token::IfaceVar(n) => names.push(n),
                _ => return Err(self.err_here("expected interface variable (`:name`)")),
            }
            if !self.eat_token(&Token::Comma) {
                break;
            }
        }
        Ok(Statement::CreateInstances { type_name, names })
    }

    fn typed_var(&mut self) -> Result<TypedVar, ParseError> {
        let type_name = self.ident()?;
        let var = self.ident()?;
        Ok(TypedVar { type_name, var })
    }

    fn typed_var_list(&mut self) -> Result<Vec<TypedVar>, ParseError> {
        let mut out = Vec::new();
        if self.peek() == Some(&Token::RParen) {
            return Ok(out);
        }
        loop {
            out.push(self.typed_var()?);
            if !self.eat_token(&Token::Comma) {
                break;
            }
        }
        Ok(out)
    }

    fn create_function(&mut self) -> Result<Statement, ParseError> {
        let name = self.ident()?;
        self.expect(&Token::LParen)?;
        let params = self.typed_var_list()?;
        self.expect(&Token::RParen)?;
        self.expect(&Token::Arrow)?;
        let mut results = vec![self.ident()?];
        while self.eat_token(&Token::Comma) {
            results.push(self.ident()?);
        }
        let append_only = if self.eat_keyword("append") {
            self.keyword("only")?;
            true
        } else {
            false
        };
        let body = if self.eat_keyword("as") {
            Some(self.select()?)
        } else {
            None
        };
        if append_only && body.is_some() {
            return Err(self.err_here(format!(
                "`append only` applies to stored functions; `{name}` is derived"
            )));
        }
        Ok(Statement::CreateFunction {
            name,
            params,
            results,
            append_only,
            body,
        })
    }

    fn create_rule(&mut self) -> Result<Statement, ParseError> {
        let name = self.ident()?;
        self.expect(&Token::LParen)?;
        let params = self.typed_var_list()?;
        self.expect(&Token::RParen)?;
        self.keyword("as")?;
        let mut events = Vec::new();
        if self.eat_keyword("on") {
            loop {
                events.push(self.ident()?);
                if !self.eat_token(&Token::Comma) {
                    break;
                }
            }
        }
        self.keyword("when")?;
        let mut for_each = Vec::new();
        if self.eat_keyword("for") {
            self.keyword("each")?;
            loop {
                for_each.push(self.typed_var()?);
                if !self.eat_token(&Token::Comma) {
                    break;
                }
            }
            self.keyword("where")?;
        }
        let predicate = self.expr()?;
        self.keyword("do")?;
        let mut action = vec![self.proc_stmt()?];
        while self.eat_token(&Token::Comma) {
            action.push(self.proc_stmt()?);
        }
        let priority = if self.eat_keyword("priority") {
            match self.advance()? {
                Token::Int(i) => i as i32,
                Token::Minus => match self.advance()? {
                    Token::Int(i) => -(i as i32),
                    _ => return Err(self.err_here("expected integer priority")),
                },
                _ => return Err(self.err_here("expected integer priority")),
            }
        } else {
            0
        };
        Ok(Statement::CreateRule {
            name,
            params,
            events,
            condition: RuleCondition {
                for_each,
                predicate,
            },
            action,
            priority,
        })
    }

    fn proc_stmt(&mut self) -> Result<ProcStmt, ParseError> {
        if self.at_keyword("set") || self.at_keyword("add") || self.at_keyword("remove") {
            return self.update_stmt();
        }
        let (name, args) = self.name_and_args()?;
        Ok(ProcStmt::Call { name, args })
    }

    fn update_stmt(&mut self) -> Result<ProcStmt, ParseError> {
        let kind = self.ident()?; // set | add | remove
        let (func, args) = self.name_and_args()?;
        self.expect(&Token::Eq)?;
        let value = self.expr()?;
        Ok(match kind.as_str() {
            "set" => ProcStmt::Set { func, args, value },
            "add" => ProcStmt::Add { func, args, value },
            "remove" => ProcStmt::Remove { func, args, value },
            _ => unreachable!("guarded by caller"),
        })
    }

    fn select(&mut self) -> Result<Select, ParseError> {
        self.keyword("select")?;
        let mut exprs = vec![self.expr()?];
        while self.eat_token(&Token::Comma) {
            exprs.push(self.expr()?);
        }
        let mut for_each = Vec::new();
        if self.eat_keyword("for") {
            self.keyword("each")?;
            loop {
                for_each.push(self.typed_var()?);
                if !self.eat_token(&Token::Comma) {
                    break;
                }
            }
        }
        let where_clause = if self.eat_keyword("where") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Select {
            exprs,
            for_each,
            where_clause,
        })
    }

    // ------------------------------------------------------------------
    // Expressions
    // ------------------------------------------------------------------

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.and_expr()?;
        while self.eat_keyword("or") {
            let rhs = self.and_expr()?;
            lhs = Expr::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.not_expr()?;
        while self.eat_keyword("and") {
            let rhs = self.not_expr()?;
            lhs = Expr::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> Result<Expr, ParseError> {
        if self.eat_keyword("not") {
            Ok(Expr::Not(Box::new(self.not_expr()?)))
        } else {
            self.cmp_expr()
        }
    }

    fn cmp_expr(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.add_expr()?;
        let op = match self.peek() {
            Some(Token::Eq) => Some(CmpOp::Eq),
            Some(Token::Ne) => Some(CmpOp::Ne),
            Some(Token::Lt) => Some(CmpOp::Lt),
            Some(Token::Le) => Some(CmpOp::Le),
            Some(Token::Gt) => Some(CmpOp::Gt),
            Some(Token::Ge) => Some(CmpOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let rhs = self.add_expr()?;
            Ok(Expr::Cmp {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            })
        } else {
            Ok(lhs)
        }
    }

    fn add_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => ArithOp::Add,
                Some(Token::Minus) => ArithOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.mul_expr()?;
            lhs = Expr::Arith {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => ArithOp::Mul,
                Some(Token::Slash) => ArithOp::Div,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.unary_expr()?;
            lhs = Expr::Arith {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr, ParseError> {
        if self.eat_token(&Token::Minus) {
            Ok(Expr::Neg(Box::new(self.unary_expr()?)))
        } else {
            self.atom()
        }
    }

    fn atom(&mut self) -> Result<Expr, ParseError> {
        match self.advance()? {
            Token::Int(i) => Ok(Expr::Int(i)),
            Token::Real(r) => Ok(Expr::Real(r)),
            Token::Str(s) => Ok(Expr::Str(s)),
            Token::IfaceVar(n) => Ok(Expr::IfaceVar(n)),
            Token::LParen => {
                let e = self.expr()?;
                self.expect(&Token::RParen)?;
                Ok(e)
            }
            Token::Ident(name) => match name.as_str() {
                "true" => Ok(Expr::Bool(true)),
                "false" => Ok(Expr::Bool(false)),
                _ => {
                    if self.peek() == Some(&Token::LParen) {
                        self.pos += 1;
                        let mut args = Vec::new();
                        if self.peek() != Some(&Token::RParen) {
                            loop {
                                args.push(self.expr()?);
                                if !self.eat_token(&Token::Comma) {
                                    break;
                                }
                            }
                        }
                        self.expect(&Token::RParen)?;
                        Ok(Expr::Call { func: name, args })
                    } else {
                        Ok(Expr::Var(name))
                    }
                }
            },
            other => {
                self.pos -= 1;
                Err(self.err_here(format!("unexpected `{other}` in expression")))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_schema_parses() {
        let src = r#"
            create type item;
            create type supplier;
            create function quantity(item i) -> integer;
            create function threshold(item i) -> integer
                as select consume_freq(i) * delivery_time(i, s) + min_stock(i)
                for each supplier s where supplies(s) = i;
        "#;
        let stmts = parse(src).unwrap();
        assert_eq!(stmts.len(), 4);
        match &stmts[3] {
            Statement::CreateFunction { name, body, .. } => {
                assert_eq!(name, "threshold");
                let sel = body.as_ref().unwrap();
                assert_eq!(sel.for_each.len(), 1);
                assert!(sel.where_clause.is_some());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn paper_rules_parse() {
        let src = r#"
            create rule monitor_item(item i) as
                when quantity(i) < threshold(i)
                do order(i, max_stock(i) - quantity(i));
            create rule monitor_items() as
                when for each item i
                where quantity(i) < threshold(i)
                do order(i, max_stock(i) - quantity(i));
        "#;
        let stmts = parse(src).unwrap();
        match &stmts[0] {
            Statement::CreateRule {
                name,
                params,
                condition,
                action,
                ..
            } => {
                assert_eq!(name, "monitor_item");
                assert_eq!(params.len(), 1);
                assert!(condition.for_each.is_empty());
                assert_eq!(action.len(), 1);
            }
            other => panic!("{other:?}"),
        }
        match &stmts[1] {
            Statement::CreateRule { condition, .. } => {
                assert_eq!(condition.for_each.len(), 1);
                assert_eq!(condition.for_each[0].var, "i");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn instances_updates_and_activation() {
        let src = r#"
            create item instances :item1, :item2;
            set max_stock(:item1) = 5000;
            set delivery_time(:item1, :sup1) = 2;
            add supplies_many(:sup1) = :item1;
            remove supplies_many(:sup1) = :item1;
            activate monitor_items();
            deactivate monitor_item(:item1);
        "#;
        let stmts = parse(src).unwrap();
        assert_eq!(stmts.len(), 7);
        assert!(matches!(&stmts[0], Statement::CreateInstances { names, .. } if names.len() == 2));
        assert!(matches!(&stmts[3], Statement::Update(ProcStmt::Add { .. })));
        assert!(matches!(&stmts[5], Statement::Activate { args, .. } if args.is_empty()));
    }

    #[test]
    fn expression_precedence() {
        let stmts = parse("select a + b * c < d and e or not f;").unwrap();
        let Statement::Select(sel) = &stmts[0] else {
            panic!()
        };
        // ((a + (b*c)) < d and e) or (not f)
        match &sel.exprs[0] {
            Expr::Or(lhs, rhs) => {
                assert!(matches!(**rhs, Expr::Not(_)));
                match &**lhs {
                    Expr::And(l, _) => assert!(matches!(**l, Expr::Cmp { .. })),
                    other => panic!("{other:?}"),
                }
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn rule_with_priority_and_multiple_actions() {
        let src = r#"
            create rule r1() as
                when for each item i where quantity(i) < 10
                do set quantity(i) = 100, log_event(i) priority 5;
        "#;
        let stmts = parse(src).unwrap();
        match &stmts[0] {
            Statement::CreateRule {
                action, priority, ..
            } => {
                assert_eq!(action.len(), 2);
                assert_eq!(*priority, 5);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn transactions_and_calls() {
        let stmts = parse("begin; order(:item1, 5); commit; rollback;").unwrap();
        assert_eq!(stmts.len(), 4);
        assert!(matches!(stmts[0], Statement::Begin));
        assert!(matches!(&stmts[1], Statement::CallProc { .. }));
    }

    #[test]
    fn error_positions() {
        let err = parse("create type ;").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.message.contains("identifier"));
        assert!(parse("select ;").is_err());
        assert!(parse("create rule r() as when do x();").is_err());
    }

    #[test]
    fn spanned_statements_carry_positions() {
        let src = "create type item;\n  create function quantity(item i) -> integer;\n";
        let stmts = parse_spanned(src).unwrap();
        assert_eq!(stmts.len(), 2);
        assert_eq!((stmts[0].line, stmts[0].col), (1, 1));
        assert_eq!((stmts[1].line, stmts[1].col), (2, 3));
        assert!(matches!(stmts[1].node, Statement::CreateFunction { .. }));
    }

    #[test]
    fn append_only_functions() {
        let stmts = parse("create function restocks(item i) -> integer append only;").unwrap();
        match &stmts[0] {
            Statement::CreateFunction {
                append_only, body, ..
            } => {
                assert!(*append_only);
                assert!(body.is_none());
            }
            other => panic!("{other:?}"),
        }
        // Round-trips through the printer.
        assert!(stmts[0].to_string().contains("append only"));
        // `append only` on a derived function is rejected.
        let err = parse("create function f(item i) -> integer append only as select quantity(i);")
            .unwrap_err();
        assert!(err.message.contains("append only"), "{}", err.message);
    }

    #[test]
    fn monitor_rule_pins() {
        let stmts = parse("monitor rule monitor_items naive;").unwrap();
        assert_eq!(
            stmts[0],
            Statement::MonitorRule {
                rule: "monitor_items".into(),
                pin: "naive".into(),
            }
        );
        // A bad mode is rejected with the accepted alternatives.
        let err = parse("monitor rule r sometimes;").unwrap_err();
        assert!(err.message.contains("`naive`"), "{}", err.message);
        // `monitor(...)` remains an ordinary procedure call.
        let stmts = parse("monitor(:a);").unwrap();
        assert!(matches!(
            &stmts[0],
            Statement::CallProc { name, .. } if name == "monitor"
        ));
    }

    #[test]
    fn negative_numbers_and_parens() {
        let stmts = parse("select -3 * (a + 2);").unwrap();
        let Statement::Select(sel) = &stmts[0] else {
            panic!()
        };
        assert!(matches!(
            &sel.exprs[0],
            Expr::Arith {
                op: ArithOp::Mul,
                ..
            }
        ));
    }
}
