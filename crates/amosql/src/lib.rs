//! # amos-amosql
//!
//! A working subset of AMOSQL — the OSQL-derived query language of AMOS
//! (paper §3) — sufficient to run every listing in the paper verbatim
//! (modulo whitespace): types, stored and derived functions, CA rules
//! with `for each`/`where` conditions, instance creation, `set`/`add`/
//! `remove` updates, queries, and rule (de)activation.
//!
//! The crate provides:
//!
//! * [`lexer`] — hand-rolled tokenizer (identifiers, `:interface`
//!   variables, literals, operators, comments).
//! * [`ast`] — statements and expressions.
//! * [`parser`] — recursive-descent parser with positioned errors.
//! * [`compiler`] — the *query compiler*: flattens nested function
//!   calls, arithmetic, comparisons, conjunction/disjunction/negation
//!   into ObjectLog clauses with generated `_G` variables, exactly like
//!   the `cnd_monitor_items` expansion shown in §3.2/§4.3 of the paper.
//!
//! Execution of statements (DDL, updates, rule management) lives in
//! `amos-db`, which drives this crate.

pub mod ast;
pub mod compiler;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod printer;

pub use ast::{Expr, Located, ProcStmt, Select, Statement};
pub use compiler::{
    compile_predicate, compile_predicate_at, compile_select, compile_select_at, CompiledQuery,
    QueryEnv,
};
pub use error::ParseError;
pub use parser::{parse, parse_spanned};
