//! Tokenizer for the AMOSQL subset.

use std::fmt;

use crate::error::ParseError;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier or keyword (keywords are recognized by the parser).
    Ident(String),
    /// Interface variable `:name` (session-scoped, not stored — paper
    /// §3.1 footnote 2).
    IfaceVar(String),
    /// Integer literal.
    Int(i64),
    /// Real literal.
    Real(f64),
    /// String literal (double quotes).
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `->`
    Arrow,
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::IfaceVar(s) => write!(f, ":{s}"),
            Token::Int(i) => write!(f, "{i}"),
            Token::Real(r) => write!(f, "{r}"),
            Token::Str(s) => write!(f, "\"{s}\""),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::Comma => write!(f, ","),
            Token::Semi => write!(f, ";"),
            Token::Arrow => write!(f, "->"),
            Token::Eq => write!(f, "="),
            Token::Ne => write!(f, "!="),
            Token::Lt => write!(f, "<"),
            Token::Le => write!(f, "<="),
            Token::Gt => write!(f, ">"),
            Token::Ge => write!(f, ">="),
            Token::Plus => write!(f, "+"),
            Token::Minus => write!(f, "-"),
            Token::Star => write!(f, "*"),
            Token::Slash => write!(f, "/"),
        }
    }
}

/// A token plus its source position (for error messages).
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    /// The token.
    pub token: Token,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
}

/// Tokenize AMOSQL source. `--` comments run to end of line.
pub fn tokenize(src: &str) -> Result<Vec<Spanned>, ParseError> {
    let mut out = Vec::new();
    let bytes: Vec<char> = src.chars().collect();
    let mut i = 0;
    let mut line = 1usize;
    let mut col = 1usize;

    macro_rules! push {
        ($tok:expr, $len:expr) => {{
            out.push(Spanned {
                token: $tok,
                line,
                col,
            });
            i += $len;
            col += $len;
        }};
    }

    while i < bytes.len() {
        let c = bytes[i];
        match c {
            '\n' => {
                i += 1;
                line += 1;
                col = 1;
            }
            ' ' | '\t' | '\r' => {
                i += 1;
                col += 1;
            }
            '-' if bytes.get(i + 1) == Some(&'-') => {
                while i < bytes.len() && bytes[i] != '\n' {
                    i += 1;
                }
            }
            '-' if bytes.get(i + 1) == Some(&'>') => push!(Token::Arrow, 2),
            '-' => push!(Token::Minus, 1),
            '(' => push!(Token::LParen, 1),
            ')' => push!(Token::RParen, 1),
            ',' => push!(Token::Comma, 1),
            ';' => push!(Token::Semi, 1),
            '=' => push!(Token::Eq, 1),
            '!' if bytes.get(i + 1) == Some(&'=') => push!(Token::Ne, 2),
            '<' if bytes.get(i + 1) == Some(&'=') => push!(Token::Le, 2),
            '<' if bytes.get(i + 1) == Some(&'>') => push!(Token::Ne, 2),
            '<' => push!(Token::Lt, 1),
            '>' if bytes.get(i + 1) == Some(&'=') => push!(Token::Ge, 2),
            '>' => push!(Token::Gt, 1),
            '+' => push!(Token::Plus, 1),
            '*' => push!(Token::Star, 1),
            '/' => push!(Token::Slash, 1),
            '"' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] != '"' {
                    j += 1;
                }
                if j == bytes.len() {
                    return Err(ParseError::new(line, col, "unterminated string literal"));
                }
                let s: String = bytes[start..j].iter().collect();
                let len = j - i + 1;
                push!(Token::Str(s), len);
            }
            ':' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && (bytes[j].is_alphanumeric() || bytes[j] == '_') {
                    j += 1;
                }
                if j == start {
                    return Err(ParseError::new(line, col, "expected name after `:`"));
                }
                let s: String = bytes[start..j].iter().collect();
                let len = j - i;
                push!(Token::IfaceVar(s), len);
            }
            c if c.is_ascii_digit() => {
                let start = i;
                let mut j = i;
                while j < bytes.len() && bytes[j].is_ascii_digit() {
                    j += 1;
                }
                let mut is_real = false;
                if j < bytes.len()
                    && bytes[j] == '.'
                    && bytes
                        .get(j + 1)
                        .map(|c| c.is_ascii_digit())
                        .unwrap_or(false)
                {
                    is_real = true;
                    j += 1;
                    while j < bytes.len() && bytes[j].is_ascii_digit() {
                        j += 1;
                    }
                }
                let text: String = bytes[start..j].iter().collect();
                let len = j - start;
                if is_real {
                    let v: f64 = text
                        .parse()
                        .map_err(|_| ParseError::new(line, col, "invalid real literal"))?;
                    push!(Token::Real(v), len);
                } else {
                    let v: i64 = text
                        .parse()
                        .map_err(|_| ParseError::new(line, col, "integer literal overflow"))?;
                    push!(Token::Int(v), len);
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                let mut j = i;
                while j < bytes.len() && (bytes[j].is_alphanumeric() || bytes[j] == '_') {
                    j += 1;
                }
                let s: String = bytes[start..j].iter().collect();
                let len = j - start;
                push!(Token::Ident(s), len);
            }
            other => {
                return Err(ParseError::new(
                    line,
                    col,
                    format!("unexpected character `{other}`"),
                ));
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Token> {
        tokenize(src)
            .unwrap()
            .into_iter()
            .map(|s| s.token)
            .collect()
    }

    #[test]
    fn basic_tokens() {
        assert_eq!(
            toks("create type item;"),
            vec![
                Token::Ident("create".into()),
                Token::Ident("type".into()),
                Token::Ident("item".into()),
                Token::Semi
            ]
        );
    }

    #[test]
    fn operators_and_arrow() {
        assert_eq!(
            toks("-> = != < <= > >= + - * / <>"),
            vec![
                Token::Arrow,
                Token::Eq,
                Token::Ne,
                Token::Lt,
                Token::Le,
                Token::Gt,
                Token::Ge,
                Token::Plus,
                Token::Minus,
                Token::Star,
                Token::Slash,
                Token::Ne,
            ]
        );
    }

    #[test]
    fn interface_vars_and_literals() {
        assert_eq!(
            toks("set max_stock(:item1) = 5000;"),
            vec![
                Token::Ident("set".into()),
                Token::Ident("max_stock".into()),
                Token::LParen,
                Token::IfaceVar("item1".into()),
                Token::RParen,
                Token::Eq,
                Token::Int(5000),
                Token::Semi
            ]
        );
        assert_eq!(toks("3.25"), vec![Token::Real(3.25)]);
        assert_eq!(toks("\"hello\""), vec![Token::Str("hello".into())]);
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(
            toks("a -- comment\n b"),
            vec![Token::Ident("a".into()), Token::Ident("b".into())]
        );
    }

    #[test]
    fn minus_vs_arrow_vs_comment() {
        assert_eq!(
            toks("a - b"),
            vec![
                Token::Ident("a".into()),
                Token::Minus,
                Token::Ident("b".into())
            ]
        );
    }

    #[test]
    fn positions_tracked() {
        let spanned = tokenize("a\n  b").unwrap();
        assert_eq!((spanned[0].line, spanned[0].col), (1, 1));
        assert_eq!((spanned[1].line, spanned[1].col), (2, 3));
    }

    #[test]
    fn errors() {
        assert!(tokenize("\"unterminated").is_err());
        assert!(tokenize("@").is_err());
        assert!(tokenize(": x").is_err());
    }
}
