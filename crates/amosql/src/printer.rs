//! Pretty-printing of AMOSQL syntax trees back to parseable source.
//!
//! Every AST node renders to text that re-parses to the same tree
//! (verified by round-trip property tests). Expressions are emitted
//! fully parenthesized where precedence could be ambiguous.

use std::fmt;

use crate::ast::{Expr, ProcStmt, RuleCondition, Select, Statement, TypedVar};

impl fmt::Display for TypedVar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.type_name, self.var)
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Var(v) => write!(f, "{v}"),
            Expr::IfaceVar(v) => write!(f, ":{v}"),
            Expr::Int(i) => write!(f, "{i}"),
            Expr::Real(r) => {
                // Keep a decimal point so the literal re-parses as real.
                if r.fract() == 0.0 && r.is_finite() {
                    write!(f, "{r:.1}")
                } else {
                    write!(f, "{r}")
                }
            }
            Expr::Str(s) => write!(f, "\"{s}\""),
            Expr::Bool(b) => write!(f, "{b}"),
            Expr::Call { func, args } => {
                write!(f, "{func}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            Expr::Arith { op, lhs, rhs } => write!(f, "({lhs} {op} {rhs})"),
            Expr::Neg(e) => write!(f, "(-{e})"),
            Expr::Cmp { op, lhs, rhs } => write!(f, "({lhs} {op} {rhs})"),
            Expr::And(a, b) => write!(f, "({a} and {b})"),
            Expr::Or(a, b) => write!(f, "({a} or {b})"),
            Expr::Not(e) => write!(f, "(not {e})"),
        }
    }
}

impl fmt::Display for Select {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "select ")?;
        for (i, e) in self.exprs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{e}")?;
        }
        if !self.for_each.is_empty() {
            write!(f, " for each ")?;
            for (i, tv) in self.for_each.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{tv}")?;
            }
        }
        if let Some(w) = &self.where_clause {
            write!(f, " where {w}")?;
        }
        Ok(())
    }
}

impl fmt::Display for ProcStmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kv =
            |f: &mut fmt::Formatter<'_>, kw: &str, func: &String, args: &[Expr], value: &Expr| {
                write!(f, "{kw} {func}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ") = {value}")
            };
        match self {
            ProcStmt::Call { name, args } => {
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            ProcStmt::Set { func, args, value } => kv(f, "set", func, args, value),
            ProcStmt::Add { func, args, value } => kv(f, "add", func, args, value),
            ProcStmt::Remove { func, args, value } => kv(f, "remove", func, args, value),
        }
    }
}

impl fmt::Display for RuleCondition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.for_each.is_empty() {
            write!(f, "for each ")?;
            for (i, tv) in self.for_each.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{tv}")?;
            }
            write!(f, " where ")?;
        }
        write!(f, "{}", self.predicate)
    }
}

impl fmt::Display for Statement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Statement::CreateType { name, under } => {
                write!(f, "create type {name}")?;
                if let Some(u) = under {
                    write!(f, " under {u}")?;
                }
                write!(f, ";")
            }
            Statement::CreateFunction {
                name,
                params,
                results,
                append_only,
                body,
            } => {
                write!(f, "create function {name}(")?;
                for (i, p) in params.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ") -> {}", results.join(", "))?;
                if *append_only {
                    write!(f, " append only")?;
                }
                if let Some(sel) = body {
                    write!(f, " as {sel}")?;
                }
                write!(f, ";")
            }
            Statement::CreateRule {
                name,
                params,
                events,
                condition,
                action,
                priority,
            } => {
                write!(f, "create rule {name}(")?;
                for (i, p) in params.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ") as ")?;
                if !events.is_empty() {
                    write!(f, "on {} ", events.join(", "))?;
                }
                write!(f, "when ")?;
                if !condition.for_each.is_empty() {
                    write!(f, "for each ")?;
                    for (i, tv) in condition.for_each.iter().enumerate() {
                        if i > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{tv}")?;
                    }
                    write!(f, " where ")?;
                }
                write!(f, "{} do ", condition.predicate)?;
                for (i, a) in action.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                if *priority != 0 {
                    write!(f, " priority {priority}")?;
                }
                write!(f, ";")
            }
            Statement::CreateInstances { type_name, names } => {
                write!(f, "create {type_name} instances ")?;
                for (i, n) in names.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, ":{n}")?;
                }
                write!(f, ";")
            }
            Statement::Update(p) => write!(f, "{p};"),
            Statement::Select(s) => write!(f, "{s};"),
            Statement::Activate { rule, args } => {
                write!(f, "activate {rule}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ");")
            }
            Statement::Deactivate { rule, args } => {
                write!(f, "deactivate {rule}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ");")
            }
            Statement::DropRule(r) => write!(f, "drop rule {r};"),
            Statement::ExplainSelect(s) => write!(f, "explain {s};"),
            Statement::ExplainRule(r) => write!(f, "explain rule {r};"),
            Statement::MonitorRule { rule, pin } => write!(f, "monitor rule {rule} {pin};"),
            Statement::Begin => write!(f, "begin;"),
            Statement::Commit => write!(f, "commit;"),
            Statement::Rollback => write!(f, "rollback;"),
            Statement::CallProc { name, args } => {
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ");")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::parser::parse;

    fn roundtrip(src: &str) {
        let once = parse(src).unwrap();
        let printed: String = once
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .join("\n");
        let twice = parse(&printed)
            .unwrap_or_else(|e| panic!("re-parse failed: {e}\nprinted source:\n{printed}"));
        assert_eq!(once, twice, "printed source:\n{printed}");
    }

    #[test]
    fn statements_roundtrip() {
        roundtrip("create type item;");
        roundtrip("create type special under item;");
        roundtrip("create function quantity(item i) -> integer;");
        roundtrip(
            "create function threshold(item i) -> integer as \
             select consume_freq(i) * delivery_time(i, s) + min_stock(i) \
             for each supplier s where supplies(s) = i;",
        );
        roundtrip(
            "create rule monitor_items() as when for each item i \
             where quantity(i) < threshold(i) \
             do order(i, max_stock(i) - quantity(i));",
        );
        roundtrip("create item instances :a, :b;");
        roundtrip("set f(:a, 3) = 1 + 2 * 3;");
        roundtrip("add g(:a) = \"text\";");
        roundtrip("remove g(:a) = true;");
        roundtrip("select a, b for each item a, item b where a = b or not p(a);");
        roundtrip("activate r(:a);");
        roundtrip("deactivate r();");
        roundtrip("monitor rule r naive;");
        roundtrip("monitor rule r incremental;");
        roundtrip("monitor rule r auto;");
        roundtrip("begin; commit; rollback;");
        roundtrip("order(:a, 2.5);");
        roundtrip(
            "create rule r() as when for each item i where q(i) > 1 \
             do set q(i) = 0, log(i) priority 7;",
        );
    }

    #[test]
    fn expression_shapes_roundtrip() {
        roundtrip("select -x + -(y * 2);");
        roundtrip("select (a + b) * (c - d) / 2;");
        roundtrip("select f(g(h(x)), 1, \"two\", 3.0, true, :iv);");
        roundtrip("select x where a < b and b <= c or not (d != e) and f >= g;");
    }
}
