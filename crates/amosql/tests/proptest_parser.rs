//! Property tests for the AMOSQL front-end:
//!
//! * **print ∘ parse = id** — randomly generated ASTs survive a
//!   pretty-print → re-parse round trip unchanged;
//! * **total lexer/parser** — arbitrary input never panics, it either
//!   parses or returns a positioned error.

use amos_amosql::ast::{Expr, Select, Statement, TypedVar};
use amos_amosql::parser::parse;
use amos_types::{ArithOp, CmpOp};
use proptest::prelude::*;

fn ident() -> impl Strategy<Value = String> {
    // Avoid keywords; prefix makes collision impossible.
    "[a-z][a-z0-9_]{0,6}".prop_map(|s| format!("v_{s}"))
}

fn leaf_expr() -> impl Strategy<Value = Expr> {
    prop_oneof![
        ident().prop_map(Expr::Var),
        ident().prop_map(Expr::IfaceVar),
        (0i64..10_000).prop_map(Expr::Int),
        (0i64..1000, 1i64..100).prop_map(|(a, b)| Expr::Real(a as f64 + (b as f64) / 128.0)),
        "[a-z ]{0,8}".prop_map(Expr::Str),
        any::<bool>().prop_map(Expr::Bool),
    ]
}

fn arith_op() -> impl Strategy<Value = ArithOp> {
    prop_oneof![
        Just(ArithOp::Add),
        Just(ArithOp::Sub),
        Just(ArithOp::Mul),
        Just(ArithOp::Div),
    ]
}

fn cmp_op() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
    ]
}

/// Value-position expressions (no booleans at the top).
fn value_expr() -> impl Strategy<Value = Expr> {
    leaf_expr().prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            (ident(), prop::collection::vec(inner.clone(), 0..3))
                .prop_map(|(func, args)| Expr::Call { func, args }),
            (arith_op(), inner.clone(), inner.clone()).prop_map(|(op, lhs, rhs)| Expr::Arith {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            }),
            inner.clone().prop_map(|e| Expr::Neg(Box::new(e))),
        ]
    })
}

/// Boolean-position expressions.
fn bool_expr() -> impl Strategy<Value = Expr> {
    let atom = prop_oneof![
        (cmp_op(), value_expr(), value_expr()).prop_map(|(op, lhs, rhs)| Expr::Cmp {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        }),
        (ident(), prop::collection::vec(value_expr(), 0..2))
            .prop_map(|(func, args)| Expr::Call { func, args }),
    ];
    atom.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Or(Box::new(a), Box::new(b))),
            inner.clone().prop_map(|e| Expr::Not(Box::new(e))),
        ]
    })
}

fn typed_var() -> impl Strategy<Value = TypedVar> {
    (ident(), ident()).prop_map(|(type_name, var)| TypedVar { type_name, var })
}

fn select_stmt() -> impl Strategy<Value = Statement> {
    (
        prop::collection::vec(value_expr(), 1..3),
        prop::collection::vec(typed_var(), 0..3),
        prop::option::of(bool_expr()),
    )
        .prop_map(|(exprs, for_each, where_clause)| {
            Statement::Select(Select {
                exprs,
                for_each,
                where_clause,
            })
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// print ∘ parse = id on random selects (the richest grammar corner).
    #[test]
    fn select_roundtrip(stmt in select_stmt()) {
        let printed = stmt.to_string();
        let reparsed = parse(&printed)
            .unwrap_or_else(|e| panic!("re-parse failed: {e}\nsource: {printed}"));
        prop_assert_eq!(vec![stmt], reparsed, "source: {}", printed);
    }

    /// The lexer+parser are total: garbage input errors, never panics.
    #[test]
    fn parser_never_panics(input in "\\PC{0,80}") {
        let _ = parse(&input);
    }

    /// Structured-ish garbage (token soup) also never panics.
    #[test]
    fn token_soup_never_panics(
        words in prop::collection::vec(
            prop_oneof![
                Just("select".to_string()),
                Just("create".to_string()),
                Just("rule".to_string()),
                Just("for".to_string()),
                Just("each".to_string()),
                Just("where".to_string()),
                Just("(".to_string()),
                Just(")".to_string()),
                Just(";".to_string()),
                Just(",".to_string()),
                Just("->".to_string()),
                Just("<".to_string()),
                Just("=".to_string()),
                Just(":x".to_string()),
                Just("42".to_string()),
                ident(),
            ],
            0..25,
        )
    ) {
        let _ = parse(&words.join(" "));
    }
}
