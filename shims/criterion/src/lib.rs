//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal harness that is source-compatible with the subset
//! of the `criterion` API the benches use: [`Criterion`],
//! [`BenchmarkId`], `benchmark_group`/`sample_size`/`bench_function`/
//! `bench_with_input`/`finish`, [`Bencher::iter`], [`black_box`], and
//! the [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Instead of criterion's statistical analysis it takes `sample_size`
//! wall-clock samples per benchmark and prints the median, so the
//! benches remain runnable (and CI-smokeable) without the real crate.
//! Absolute numbers are indicative only.

use std::fmt::Display;
use std::hint;
use std::time::Instant;

/// Prevent the optimizer from discarding a benchmarked value.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// A benchmark id from a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }

    fn render(&self) -> String {
        if self.parameter.is_empty() {
            self.function.clone()
        } else {
            format!("{}/{}", self.function, self.parameter)
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(function: &str) -> Self {
        BenchmarkId {
            function: function.to_owned(),
            parameter: String::new(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(function: String) -> Self {
        BenchmarkId {
            function,
            parameter: String::new(),
        }
    }
}

/// Timing context handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    /// Median per-iteration time of the last `iter` call, in seconds.
    last_median_secs: f64,
}

impl Bencher {
    /// Time `routine`, collecting `sample_size` samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warm-up iteration, then timed samples.
        black_box(routine());
        let mut times: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            times.push(start.elapsed().as_secs_f64());
        }
        times.sort_by(|a, b| a.partial_cmp(b).unwrap());
        self.last_median_secs = times[times.len() / 2];
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of samples taken per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run a benchmark with no extra input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: self.sample_size,
            last_median_secs: 0.0,
        };
        f(&mut b);
        self.report(&id, b.last_median_secs);
        self
    }

    /// Run a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: self.sample_size,
            last_median_secs: 0.0,
        };
        f(&mut b, input);
        self.report(&id, b.last_median_secs);
        self
    }

    fn report(&self, id: &BenchmarkId, median_secs: f64) {
        println!(
            "{}/{:<40} median {:>12.3} µs ({} samples)",
            self.name,
            id.render(),
            median_secs * 1e6,
            self.sample_size
        );
    }

    /// Finish the group (the stand-in reports per-benchmark, so this
    /// only prints a separator).
    pub fn finish(self) {
        println!();
    }
}

/// Benchmark driver (stand-in: runs everything, prints medians).
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== bench group: {name} ==");
        BenchmarkGroup {
            name,
            sample_size: 10,
            _criterion: self,
        }
    }

    /// Run a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group(name.to_owned())
            .bench_function(BenchmarkId::from(name), f);
        self
    }
}

/// Bundle benchmark functions under one name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_times() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim_smoke");
        group.sample_size(3);
        let mut runs = 0usize;
        group.bench_function(BenchmarkId::new("count", 1), |b| {
            b.iter(|| runs += 1);
        });
        group.bench_with_input(BenchmarkId::new("input", 2), &21, |b, &x| {
            b.iter(|| black_box(x * 2));
        });
        group.finish();
        // warm-up + 3 samples per bench_function call
        assert_eq!(runs, 4);
    }
}
