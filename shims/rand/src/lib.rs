//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the tiny API subset it actually uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], and [`Rng::gen_range`] over integer
//! ranges. The generator is xorshift64* seeded through SplitMix64 —
//! deterministic, fast, and more than random enough for test-data
//! generation (no cryptographic claims whatsoever).

/// Types that can be sampled uniformly from a range by an RNG.
pub trait SampleRange<T> {
    /// Draw one value using the supplied 64-bit entropy source.
    fn sample_from(self, next: &mut dyn FnMut() -> u64) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from(self, next: &mut dyn FnMut() -> u64) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (next() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from(self, next: &mut dyn FnMut() -> u64) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (next() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

/// The user-facing random-number trait (subset of `rand::Rng`).
pub trait Rng {
    /// The raw 64-bit generator step.
    fn next_u64(&mut self) -> u64;

    /// A uniform sample from `range` (half-open or inclusive).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        let mut f = || self.next_u64();
        range.sample_from(&mut f)
    }

    /// A uniform `bool`.
    fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }
}

/// Seedable construction (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xorshift64* generator (stand-in for `rand`'s
    /// `StdRng`; the algorithm differs, the API contract — a seeded,
    /// deterministic, uniform source — is the same).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 scrambles low-entropy seeds (0, 1, …) into
            // well-distributed initial states.
            let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            StdRng {
                state: (z ^ (z >> 31)) | 1,
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17i64);
            assert!((3..17).contains(&v));
            let u = rng.gen_range(0..5usize);
            assert!(u < 5);
            let w = rng.gen_range(-4..=4i32);
            assert!((-4..=4).contains(&w));
        }
    }

    #[test]
    fn covers_the_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[rng.gen_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
