//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal property-testing engine that is **source-compatible
//! with the subset of the `proptest` API used by this repository**:
//!
//! * the [`proptest!`] macro (with `#![proptest_config(..)]`),
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assume!`],
//!   [`prop_oneof!`],
//! * the [`Strategy`] trait with `prop_map`, `prop_filter`,
//!   `prop_recursive` and `boxed`,
//! * [`strategy::Just`], integer-range strategies, tuple strategies,
//!   regex-subset string strategies,
//! * `prop::collection::vec`, `prop::option::of`, `prop::sample::select`,
//!   `prop::bool::weighted`, and `any::<T>()`.
//!
//! Differences from the real crate: cases are generated from a
//! deterministic per-test seed, there is **no shrinking** (a failing case
//! reports its number and message; re-running reproduces it exactly), and
//! `.proptest-regressions` files are ignored. Case counts honour the
//! `PROPTEST_CASES` environment variable.

pub mod test_runner {
    /// Outcome of one generated test case.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` failed — skip the case without counting it as
        /// a failure.
        Reject,
        /// An assertion failed.
        Fail(String),
    }

    /// Configuration accepted by `#![proptest_config(..)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required per test.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }

        /// Effective case count (`PROPTEST_CASES` overrides the config).
        pub fn resolved_cases(&self) -> u32 {
            match std::env::var("PROPTEST_CASES") {
                Ok(v) => v.parse().unwrap_or(self.cases),
                Err(_) => self.cases,
            }
        }
    }

    /// Deterministic xorshift64* generator seeded from the test path.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator seeded deterministically from `name` (the test's
        /// module path), so every run generates the same cases.
        pub fn for_test(name: &str) -> Self {
            let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                seed ^= b as u64;
                seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: seed | 1 }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }

        /// Uniform value in `0..n` (`n > 0`).
        pub fn usize_below(&mut self, n: usize) -> usize {
            debug_assert!(n > 0);
            (self.next_u64() % n as u64) as usize
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn f64_unit(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;
    use std::rc::Rc;

    /// A generator of values for property tests.
    ///
    /// Unlike the real crate there is no value-tree/shrinking machinery:
    /// a strategy simply produces a value from the RNG.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Discard generated values failing `f` (regenerates, up to a
        /// retry bound, then panics — mirrors proptest's rejection).
        fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                whence,
                f,
            }
        }

        /// Build recursive structures: `recurse` receives the strategy
        /// for the nested level and returns the strategy for the level
        /// above; `depth` levels are stacked on top of `self` (the leaf).
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let mut strat = self.boxed();
            for _ in 0..depth {
                strat = recurse(strat).boxed();
            }
            strat
        }

        /// Type-erase the strategy (cheaply cloneable).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    /// Object-safe generation, used behind [`BoxedStrategy`].
    trait DynStrategy {
        type Value;
        fn generate_dyn(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy> DynStrategy for S {
        type Value = S::Value;
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A cheaply-cloneable type-erased strategy.
    pub struct BoxedStrategy<V>(Rc<dyn DynStrategy<Value = V>>);

    impl<V> Clone for BoxedStrategy<V> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            self.0.generate_dyn(rng)
        }
    }

    /// Always produce a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// [`Strategy::prop_map`] adapter.
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// [`Strategy::prop_filter`] adapter.
    #[derive(Debug, Clone)]
    pub struct Filter<S, F> {
        inner: S,
        whence: &'static str,
        f: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter `{}` rejected 1000 candidates", self.whence);
        }
    }

    /// Uniform choice between type-erased alternatives ([`prop_oneof!`]).
    pub struct Union<V> {
        arms: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// A union of the given arms (must be non-empty).
        pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let i = rng.usize_below(self.arms.len());
            self.arms[i].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let offset = (rng.next_u64() as u128) % span;
                    (self.start as i128 + offset as i128) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as i128 - start as i128) as u128 + 1;
                    let offset = (rng.next_u64() as u128) % span;
                    (start as i128 + offset as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);

    /// String strategies from a pattern literal, supporting the regex
    /// subset this workspace uses: literal characters, `[..]` classes
    /// with ranges, `\PC` (printable ASCII), and `{m}`/`{m,n}`/`?`/`*`/
    /// `+` quantifiers.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            generate_from_pattern(self, rng)
        }
    }

    #[derive(Debug, Clone)]
    struct PatternAtom {
        /// Inclusive character ranges to choose from.
        choices: Vec<(char, char)>,
        min: usize,
        max: usize,
    }

    fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Vec<(char, char)> {
        let mut raw = Vec::new();
        for c in chars.by_ref() {
            if c == ']' {
                break;
            }
            raw.push(c);
        }
        let mut out = Vec::new();
        let mut i = 0;
        while i < raw.len() {
            // `a-z` forms a range; a `-` anywhere else is literal.
            if i + 2 < raw.len() && raw[i + 1] == '-' {
                out.push((raw[i], raw[i + 2]));
                i += 3;
            } else {
                out.push((raw[i], raw[i]));
                i += 1;
            }
        }
        out
    }

    fn parse_quantifier(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> (usize, usize) {
        match chars.peek() {
            Some('{') => {
                chars.next();
                let mut spec = String::new();
                for c in chars.by_ref() {
                    if c == '}' {
                        break;
                    }
                    spec.push(c);
                }
                match spec.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().expect("pattern quantifier"),
                        hi.trim().parse().expect("pattern quantifier"),
                    ),
                    None => {
                        let n = spec.trim().parse().expect("pattern quantifier");
                        (n, n)
                    }
                }
            }
            Some('?') => {
                chars.next();
                (0, 1)
            }
            Some('*') => {
                chars.next();
                (0, 8)
            }
            Some('+') => {
                chars.next();
                (1, 8)
            }
            _ => (1, 1),
        }
    }

    fn parse_pattern(pattern: &str) -> Vec<PatternAtom> {
        let mut chars = pattern.chars().peekable();
        let mut atoms = Vec::new();
        while let Some(c) = chars.next() {
            let choices = match c {
                '[' => parse_class(&mut chars),
                '\\' => match chars.next() {
                    // `\PC`: any printable character (ASCII subset here).
                    Some('P') => {
                        chars.next(); // the property name, e.g. `C`
                        vec![(' ', '~')]
                    }
                    Some(esc) => vec![(esc, esc)],
                    None => panic!("dangling escape in pattern `{pattern}`"),
                },
                '.' => vec![(' ', '~')],
                c => vec![(c, c)],
            };
            let (min, max) = parse_quantifier(&mut chars);
            atoms.push(PatternAtom { choices, min, max });
        }
        atoms
    }

    fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for atom in parse_pattern(pattern) {
            let n = atom.min + rng.usize_below(atom.max - atom.min + 1);
            for _ in 0..n {
                let (lo, hi) = atom.choices[rng.usize_below(atom.choices.len())];
                let span = hi as u32 - lo as u32 + 1;
                let c =
                    char::from_u32(lo as u32 + (rng.next_u64() % span as u64) as u32).unwrap_or(lo);
                out.push(c);
            }
        }
        out
    }
}

pub mod arbitrary {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Types with a canonical strategy (`any::<T>()`).
    pub trait Arbitrary: Sized {
        /// The canonical strategy type.
        type Strategy: Strategy<Value = Self>;
        /// The canonical strategy value.
        fn arbitrary() -> Self::Strategy;
    }

    /// The canonical strategy for `A`.
    pub fn any<A: Arbitrary>() -> A::Strategy {
        A::arbitrary()
    }

    /// Full-domain strategy for primitives.
    #[derive(Debug, Clone, Default)]
    pub struct Any<T>(core::marker::PhantomData<T>);

    macro_rules! arbitrary_prim {
        ($($t:ty => |$rng:ident| $gen:expr),* $(,)?) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn generate(&self, $rng: &mut TestRng) -> $t {
                    $gen
                }
            }
            impl Arbitrary for $t {
                type Strategy = Any<$t>;
                fn arbitrary() -> Any<$t> {
                    Any(core::marker::PhantomData)
                }
            }
        )*};
    }

    arbitrary_prim! {
        bool => |rng| rng.next_u64() & 1 == 1,
        u8 => |rng| rng.next_u64() as u8,
        u16 => |rng| rng.next_u64() as u16,
        u32 => |rng| rng.next_u64() as u32,
        u64 => |rng| rng.next_u64(),
        usize => |rng| rng.next_u64() as usize,
        i8 => |rng| rng.next_u64() as i8,
        i16 => |rng| rng.next_u64() as i16,
        i32 => |rng| rng.next_u64() as i32,
        i64 => |rng| rng.next_u64() as i64,
        isize => |rng| rng.next_u64() as isize,
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Length bounds for collection strategies (both ends inclusive).
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// `Vec` strategy: length drawn from `size`, elements from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy produced by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.min + rng.usize_below(self.size.max - self.size.min + 1);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// `Option` strategy: `Some` three times out of four.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// Strategy produced by [`of`].
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.usize_below(4) < 3 {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }
}

pub mod sample {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Uniform choice from a fixed set of values.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "sample::select of empty set");
        Select { options }
    }

    /// Strategy produced by [`select`].
    #[derive(Debug, Clone)]
    pub struct Select<T> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[rng.usize_below(self.options.len())].clone()
        }
    }
}

pub mod bool {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// `true` with probability `p`.
    pub fn weighted(p: f64) -> Weighted {
        Weighted { p }
    }

    /// Strategy produced by [`weighted`].
    #[derive(Debug, Clone, Copy)]
    pub struct Weighted {
        p: f64,
    }

    impl Strategy for Weighted {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.f64_unit() < self.p
        }
    }
}

/// The glob-import surface mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};

    /// The `prop::` module path used by tests
    /// (`prop::collection::vec`, `prop::option::of`, …).
    pub mod prop {
        pub use crate::{bool, collection, option, sample, strategy};
    }
}

/// Define property tests. See the crate docs for supported syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg); $($rest)*);
    };
    (@impl ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let cases = config.resolved_cases();
            let mut rng = $crate::test_runner::TestRng::for_test(concat!(
                module_path!(),
                "::",
                stringify!($name)
            ));
            let mut passed: u32 = 0;
            let mut attempts: u32 = 0;
            let max_attempts = cases.saturating_mul(10).max(100);
            while passed < cases {
                attempts += 1;
                if attempts > max_attempts {
                    panic!(
                        "proptest `{}`: gave up after {} attempts ({} passed); \
                         too many prop_assume! rejections",
                        stringify!($name),
                        attempts,
                        passed
                    );
                }
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)*
                let outcome = (move || -> ::core::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > {
                    $body
                    #[allow(unreachable_code)]
                    ::core::result::Result::Ok(())
                })();
                match outcome {
                    ::core::result::Result::Ok(()) => passed += 1,
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {}
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest `{}` failed at case {}: {}",
                            stringify!($name),
                            passed,
                            msg
                        );
                    }
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

/// Assert a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!(
                    "assertion failed: {}: {}",
                    stringify!($cond),
                    ::std::format!($($fmt)+)
                ),
            ));
        }
    };
}

/// Assert equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!(
                    "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
                    left,
                    right
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!(
                    "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`: {}",
                    left,
                    right,
                    ::std::format!($($fmt)+)
                ),
            ));
        }
    }};
}

/// Skip the current case unless a precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Uniform choice between alternative strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn pattern_generation_matches_subset() {
        let mut rng = crate::test_runner::TestRng::for_test("pattern");
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-z][a-z0-9_]{0,6}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 7, "{s:?}");
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
            let p = Strategy::generate(&"\\PC{0,80}", &mut rng);
            assert!(p.len() <= 80);
            assert!(p.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn union_and_ranges_generate_all_arms() {
        let strat = prop_oneof![Just(0usize), Just(1usize), 2usize..4];
        let mut rng = crate::test_runner::TestRng::for_test("union");
        let mut seen = [false; 4];
        for _ in 0..400 {
            seen[Strategy::generate(&strat, &mut rng)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug, Clone)]
        enum Tree {
            Leaf(#[allow(dead_code)] i64),
            Node(Vec<Tree>),
        }
        let strat = (0i64..10)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 16, 4, |inner| {
                crate::collection::vec(inner, 0..3).prop_map(Tree::Node)
            });
        let mut rng = crate::test_runner::TestRng::for_test("tree");
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 1,
                Tree::Node(ns) => 1 + ns.iter().map(depth).max().unwrap_or(0),
            }
        }
        for _ in 0..100 {
            assert!(depth(&Strategy::generate(&strat, &mut rng)) <= 4);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro machinery itself: generation, assume, assertions.
        #[test]
        fn macro_roundtrip(a in 0i64..100, b in 1i64..10, flip in any::<bool>()) {
            prop_assume!(a != 13);
            let sum = a + b;
            prop_assert!(sum > a);
            prop_assert_eq!(sum - b, a, "flip was {}", flip);
        }
    }
}
