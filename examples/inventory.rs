//! The paper's running example (§3.1) — the inventory monitor — with
//! the propagation network rendered and trigger explanations printed.
//!
//! Run with: `cargo run --example inventory`

use amos_db::engine::NetworkPrep;
use amos_db::{Amos, EngineOptions};

const SCHEMA: &str = r#"
    create type item;
    create type supplier;
    create function quantity(item i) -> integer;
    create function max_stock(item i) -> integer;
    create function min_stock(item i) -> integer;
    create function consume_freq(item i) -> integer;
    create function supplies(supplier s) -> item;
    create function delivery_time(item i, supplier s) -> integer;
    create function threshold(item i) -> integer
        as
        select consume_freq(i) * delivery_time(i, s) + min_stock(i)
        for each supplier s where supplies(s) = i;

    create rule monitor_items() as
        when for each item i
        where quantity(i) < threshold(i)
        do order(i, max_stock(i) - quantity(i));
"#;

const POPULATE: &str = r#"
    create item instances :item1, :item2;
    set max_stock(:item1) = 5000;
    set max_stock(:item2) = 7500;
    set min_stock(:item1) = 100;
    set min_stock(:item2) = 200;
    set consume_freq(:item1) = 20;
    set consume_freq(:item2) = 30;
    create supplier instances :sup1, :sup2;
    set supplies(:sup1) = :item1;
    set supplies(:sup2) = :item2;
    set delivery_time(:item1, :sup1) = 2;
    set delivery_time(:item2, :sup2) = 3;
    set quantity(:item1) = 5000;
    set quantity(:item2) = 7500;
    activate monitor_items();
"#;

fn run(prep: NetworkPrep) {
    println!("=== network style: {prep:?} ===\n");
    let mut db = Amos::with_options(EngineOptions {
        network_prep: prep,
        ..Default::default()
    });
    db.register_procedure("order", |_ctx, args| {
        println!("  order({}, {})", args[0], args[1]);
        Ok(())
    });
    db.execute(SCHEMA).expect("schema compiles");
    db.execute(POPULATE).expect("population");

    println!(
        "propagation network (fig. {}):",
        match prep {
            NetworkPrep::Flat => "2 — flat, fully expanded",
            NetworkPrep::Bushy => "1 — bushy, threshold shared",
        }
    );
    println!("{}", db.rules().network().render(db.catalog()));

    // Thresholds: item1 = 20*2+100 = 140, item2 = 30*3+200 = 290.
    let rows = db.query("select threshold(:item1);").unwrap();
    println!("threshold(:item1) = {}", rows[0][0]);
    let rows = db.query("select threshold(:item2);").unwrap();
    println!("threshold(:item2) = {}\n", rows[0][0]);

    println!("quantity(:item1) drops to 120 (below 140) — one order placed:");
    db.execute("set quantity(:item1) = 120;").unwrap();

    println!("\nwhy did it trigger?");
    for e in &db.rules().last_trace().explanations {
        println!("  {}", e.render(db.catalog()));
    }

    println!("\nstays low (110) — strict semantics, no second order:");
    db.execute("set quantity(:item1) = 110;").unwrap();

    println!("changing the *threshold side*: min_stock(:item2) = 7500");
    println!(
        "(threshold becomes 90 + 7500 = 7590 > quantity 7500) — triggers through Δ+min_stock:"
    );
    db.execute("set min_stock(:item2) = 7500;").unwrap();
    for e in &db.rules().last_trace().explanations {
        println!("  {}", e.render(db.catalog()));
    }
    println!();
}

fn main() {
    run(NetworkPrep::Flat);
    run(NetworkPrep::Bushy);
}
