//! A second domain: data-center link monitoring, exercising the parts of
//! the calculus the inventory example doesn't — **negation** (a rule that
//! depends on the *absence* of tuples, so deletions trigger it through
//! negative partial differentials) and **rule cascades** (an action that
//! updates relations other rules monitor).
//!
//! Scenario: hosts are connected by links. A host with no working link
//! is *isolated*; the `isolation_alarm` rule pages the operator. A
//! `failover` rule with higher priority re-enables a backup link first —
//! so a host with a backup never pages.
//!
//! Run with: `cargo run --example network_monitor`

use amos_db::{Amos, Value};

fn main() {
    let mut db = Amos::new();
    db.register_procedure("page_operator", |_ctx, args| {
        println!("  PAGE: host {} is isolated!", args[0]);
        Ok(())
    });
    db.register_procedure("log", |_ctx, args| {
        println!("  log: failover engaged for host {}", args[0]);
        Ok(())
    });

    db.execute(
        r#"
        create type host;
        -- link_up(h) = 1 while some link of h is up, stored per link id:
        --   up(h, link_id) -> integer   (1 = up, 0 = down)
        create function up(host h, integer link) -> integer;
        -- backup(h) -> integer: id of a standby link, 0 if none
        create function backup(host h) -> integer;

        -- a host is reachable if ANY of its links is up
        create function reachable(host h) -> boolean
            as select true for each integer l where up(h, l) = 1;

        -- failover: when a host stops being reachable and has a backup,
        -- bring the backup up (priority over paging).
        create rule failover() as
            when for each host h
            where not reachable(h) and backup(h) > 0
            do set up(h, backup(h)) = 1, log(h) priority 10;

        -- isolation alarm: page when a host is unreachable.
        create rule isolation_alarm() as
            when for each host h where not reachable(h)
            do page_operator(h) priority 1;

        create host instances :web, :dbhost;
        set up(:web, 1) = 1;
        set up(:web, 2) = 0;
        set backup(:web) = 2;
        set up(:dbhost, 1) = 1;
        set backup(:dbhost) = 0;

        activate failover();
        activate isolation_alarm();
    "#,
    )
    .expect("schema");

    println!("web loses its primary link — failover engages, no page:");
    db.execute("set up(:web, 1) = 0;").unwrap();
    let rows = db
        .query("select h for each host h where reachable(h);")
        .unwrap();
    println!("  reachable hosts afterwards: {}", rows.len());
    assert_eq!(rows.len(), 2, "failover restored web via its backup link");

    println!("\ndbhost loses its only link (no backup) — the operator is paged:");
    db.execute("set up(:dbhost, 1) = 0;").unwrap();

    println!("\nwhy (which influent, insertion or deletion)?");
    for e in &db.rules().last_trace().explanations {
        println!("  {}", e.render(db.catalog()));
    }

    println!("\na flapping link inside one transaction — net change is zero, nobody is paged:");
    db.execute("set up(:dbhost, 1) = 1;").unwrap(); // repair first
    db.execute("begin; set up(:dbhost, 1) = 0; set up(:dbhost, 1) = 1; commit;")
        .unwrap();

    // Final state sanity.
    let up = db.call_function(
        "up",
        &[db.iface_value("dbhost").cloned().unwrap(), Value::Int(1)],
    );
    assert_eq!(up.unwrap(), Value::Int(1));
    println!("\ndone.");
}
