//! Recursive monitoring: a build-system dependency graph where a rule
//! watches *transitive* dependencies — the §5 note 1 linear-recursion
//! extension end to end.
//!
//! `depends(a, b)` are direct edges; `needs(a, b)` is the transitive
//! closure defined recursively in AMOSQL. A rule pages the release
//! manager whenever any package starts (transitively) depending on a
//! package that is quarantined.
//!
//! Run with: `cargo run --example dependencies`

use amos_db::Amos;

fn main() {
    let mut db = Amos::new();
    db.register_procedure("page", |_ctx, args| {
        println!(
            "  SUPPLY-CHAIN ALERT: {} now depends on quarantined {}",
            args[0], args[1]
        );
        Ok(())
    });

    db.execute(
        r#"
        create type package;
        create function depends(package a, package b) -> boolean;
        create function quarantined(package p) -> boolean;

        -- Transitive closure, defined recursively (linear recursion):
        create function needs(package a, package b) -> boolean
            as select true
            for each package c
            where depends(a, b) or needs(a, c) and depends(c, b);

        create rule supply_chain() as
            when for each package a, package b
            where needs(a, b) and quarantined(b)
            do page(a, b);

        create package instances :app, :web, :json, :ssl, :zlib;
        add depends(:app, :web) = true;
        add depends(:web, :json) = true;
        add depends(:json, :zlib) = true;
        activate supply_chain();
    "#,
    )
    .expect("schema");

    println!("dependency chain: app → web → json → zlib; ssl unused");
    let rows = db
        .query("select a, b for each package a, package b where needs(a, b);")
        .unwrap();
    println!("transitive dependencies: {} pairs", rows.len());
    assert_eq!(rows.len(), 6);

    println!("\nzlib is quarantined — every transitive dependent is paged:");
    db.execute("add quarantined(:zlib) = true;").unwrap();

    println!("\njson switches to ssl (new edge json → ssl) — no new quarantine exposure:");
    db.execute("add depends(:json, :ssl) = true;").unwrap();

    println!("\nssl gets quarantined too — dependents of ssl are paged:");
    db.execute("add quarantined(:ssl) = true;").unwrap();

    println!("\nwhy did the last alert fire?");
    for e in &db.rules().last_trace().explanations {
        println!("  {}", e.render(db.catalog()));
    }

    println!("\nremoving the json → zlib edge (deletion through the fixpoint):");
    db.execute("remove depends(:json, :zlib) = true;").unwrap();
    let rows = db
        .query("select a for each package a where needs(a, :zlib);")
        .unwrap();
    println!("packages still needing zlib: {}", rows.len());
    assert_eq!(rows.len(), 0);
    println!("done.");
}
