//! A trading-desk risk monitor showing the remaining feature surface:
//! ECA event restriction (`on price`), immediate rule processing,
//! hybrid monitoring, and the monitoring statistics counters.
//!
//! Run with: `cargo run --example trading`

use amos_core::MonitorMode;
use amos_db::{Amos, EngineOptions};

fn main() {
    let mut db = Amos::with_options(EngineOptions {
        immediate: true, // checks run after every statement, mid-transaction
        ..Default::default()
    });
    db.set_monitor_mode(MonitorMode::Hybrid);
    db.register_procedure("halt_trading", |_ctx, args| {
        println!("  HALT: instrument {} breached its limit", args[0]);
        Ok(())
    });
    db.register_procedure("rebalance", |_ctx, args| {
        println!("  rebalance: desk exposure via {}", args[0]);
        Ok(())
    });

    db.execute(
        r#"
        create type instrument;
        create function price(instrument x) -> integer;
        create function position(instrument x) -> integer;
        create function limit_of(instrument x) -> integer;
        create function exposure(instrument x) -> integer
            as select price(x) * position(x);

        -- ECA restriction: only *price* events test the halt condition;
        -- position changes are the desk's own doing and must not halt.
        create rule circuit_breaker() as on price
            when for each instrument x where exposure(x) > limit_of(x)
            do halt_trading(x) priority 10;

        -- A plain CA rule reacting to any influent.
        create rule exposure_watch() as
            when for each instrument x where exposure(x) > limit_of(x)
            do rebalance(x) priority 1;

        create instrument instances :bond, :fx;
        set price(:bond) = 100;  set position(:bond) = 10;  set limit_of(:bond) = 5000;
        set price(:fx) = 50;     set position(:fx) = 10;    set limit_of(:fx) = 5000;
        activate circuit_breaker();
        activate exposure_watch();
    "#,
    )
    .expect("schema");
    db.rules_mut().reset_stats();

    println!("position grows past the limit — only the CA rule reacts (no price event):");
    db.execute("set position(:bond) = 60;").unwrap(); // exposure 6000 > 5000

    println!("\nprice spike on fx inside an open transaction — immediate mode fires now:");
    db.execute("begin;").unwrap();
    db.execute("set price(:fx) = 600;").unwrap(); // exposure 6000: price event → both rules
    println!("  (transaction still open; committing…)");
    db.execute("commit;").unwrap();

    let stats = db.rules().stats();
    println!("\nmonitoring statistics:");
    println!("  check phases          {}", stats.check_phases);
    println!("  propagation passes    {}", stats.passes);
    println!("  differentials run     {}", stats.differentials_executed);
    println!("  candidate tuples      {}", stats.tuples_produced);
    println!("  rejected by §7.2      {}", stats.tuples_rejected);
    println!("  naive recomputations  {}", stats.naive_recomputations);
    println!("  actions executed      {}", stats.actions_executed);
    println!("done.");
}
