//! Incremental aggregates (the §8 "future work" extension): a fraud
//! monitor over a per-account running **sum** of transfer amounts.
//!
//! `register_aggregate` turns `sum(amount(account, xfer))` into an
//! ordinary stored function maintained incrementally at every commit —
//! so rules can monitor conditions over aggregates with the same partial
//! differencing machinery, and the min/max multiset state survives
//! deletions without rescans.
//!
//! Run with: `cargo run --example aggregates`

use amos_core::aggregate::AggFn;
use amos_db::{Amos, Value};

fn main() {
    let mut db = Amos::new();
    db.register_procedure("flag_account", |_ctx, args| {
        println!(
            "  FRAUD CHECK: account {} total {} exceeds 10000",
            args[0], args[1]
        );
        Ok(())
    });

    db.execute(
        r#"
        create type account;
        -- transfers: amount(account, transfer_id) -> integer
        create function amount(account a, integer xfer) -> integer;
        create account instances :alice, :bob;
    "#,
    )
    .expect("schema");

    // total(account) -> integer = sum of amounts, grouped by account
    // (source columns: 0 = account, 1 = xfer id, 2 = amount).
    db.register_aggregate("total", "amount", vec![0], 2, AggFn::Sum)
        .expect("aggregate registered");
    // Largest single transfer per account, maintained incrementally.
    db.register_aggregate("largest", "amount", vec![0], 2, AggFn::Max)
        .expect("aggregate registered");

    db.execute(
        r#"
        create rule fraud_watch() as
            when for each account a
            where total(a) > 10000
            do flag_account(a, total(a));
        activate fraud_watch();
    "#,
    )
    .expect("rule");

    println!("small transfers — nothing happens:");
    db.execute("add amount(:alice, 1) = 4000;").unwrap();
    db.execute("add amount(:alice, 2) = 5000;").unwrap();
    db.execute("add amount(:bob, 1) = 100;").unwrap();

    let alice = db.iface_value("alice").cloned().unwrap();
    println!(
        "  total(:alice) = {}",
        db.call_function("total", std::slice::from_ref(&alice))
            .unwrap()
    );

    println!("one more transfer pushes alice over the limit:");
    db.execute("add amount(:alice, 3) = 2000;").unwrap();

    println!("reversing a transfer (deletion through the aggregate):");
    db.execute("remove amount(:alice, 2) = 5000;").unwrap();
    println!(
        "  total(:alice) = {}",
        db.call_function("total", std::slice::from_ref(&alice))
            .unwrap()
    );
    assert_eq!(
        db.call_function("total", std::slice::from_ref(&alice))
            .unwrap(),
        Value::Int(6000)
    );

    // Max survives deleting the maximum (multiset state, no rescan).
    println!(
        "  largest(:alice) = {} (after removing the 5000 transfer)",
        db.call_function("largest", std::slice::from_ref(&alice))
            .unwrap()
    );
    assert_eq!(
        db.call_function("largest", &[alice]).unwrap(),
        Value::Int(4000)
    );

    println!("\nback over the limit — a *new* false→true transition, flags again:");
    db.execute("add amount(:alice, 4) = 9000;").unwrap();
    println!("done.");
}
