//! Quickstart: define a schema, a rule, and watch it trigger on exactly
//! the net changes of a transaction.
//!
//! Run with: `cargo run --example quickstart`

use amos_db::{Amos, Value};

fn main() {
    let mut db = Amos::new();

    // Procedures are the action vocabulary of rules — plain Rust
    // closures (AMOS used Lisp/C foreign functions here).
    db.register_procedure("alert", |_ctx, args| {
        println!("  ALERT: sensor {} read {}", args[0], args[1]);
        Ok(())
    });

    // AMOSQL: everything is an object, data lives in functions.
    db.execute(
        r#"
        create type sensor;
        create function reading(sensor s) -> integer;
        create function limit_of(sensor s) -> integer;

        create rule overheat(sensor s) as
            when reading(s) > limit_of(s)
            do alert(s, reading(s));

        create sensor instances :boiler, :turbine;
        set limit_of(:boiler) = 90;
        set limit_of(:turbine) = 120;
        set reading(:boiler) = 20;
        set reading(:turbine) = 20;

        activate overheat(:boiler);
        activate overheat(:turbine);
    "#,
    )
    .expect("schema");

    println!("normal reading — nothing happens:");
    db.execute("set reading(:boiler) = 50;").unwrap();

    println!("boiler goes over its limit — the rule fires once:");
    db.execute("set reading(:boiler) = 95;").unwrap();

    println!("still hot (no false→true transition) — strict semantics, no re-fire:");
    db.execute("set reading(:boiler) = 99;").unwrap();

    println!("a transaction with no net change — no trigger:");
    db.execute("begin; set reading(:turbine) = 500; set reading(:turbine) = 20; commit;")
        .unwrap();

    println!("querying like a database:");
    let rows = db
        .query("select s for each sensor s where reading(s) > 90;")
        .unwrap();
    for row in &rows {
        println!("  over 90: {row}");
    }

    // Everything is also available programmatically.
    let reading = db.call_function("reading", &[db.iface_value("boiler").cloned().unwrap()]);
    assert_eq!(reading.unwrap(), Value::Int(99));
    println!("done.");
}
