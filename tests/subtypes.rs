//! Subtyping through extents: instances of a subtype participate in
//! `for each <supertype>` queries and rules (the Iris/Daplex "an object
//! is an instance of its type and all supertypes").

use std::sync::{Arc, Mutex};

use amos_db::{Amos, Value};

#[test]
fn subtype_instances_seen_by_supertype_rules() {
    let mut db = Amos::new();
    let fired = Arc::new(Mutex::new(Vec::new()));
    let sink = fired.clone();
    db.register_procedure("notify", move |_ctx, args| {
        sink.lock().unwrap().push(args[0].clone());
        Ok(())
    });
    db.execute(
        r#"
        create type vehicle;
        create type truck under vehicle;
        create function speed(vehicle v) -> integer;

        create rule speeding() as
            when for each vehicle v where speed(v) > 100
            do notify(v);

        create vehicle instances :car1;
        create truck instances :truck1;
        set speed(:car1) = 50;
        set speed(:truck1) = 50;
        activate speeding();
    "#,
    )
    .unwrap();

    // The truck is a vehicle: the supertype rule fires for it.
    db.execute("set speed(:truck1) = 120;").unwrap();
    assert_eq!(fired.lock().unwrap().len(), 1);
    assert_eq!(fired.lock().unwrap()[0], *db.iface_value("truck1").unwrap());

    // Queries over both levels.
    let vehicles = db.query("select v for each vehicle v;").unwrap();
    assert_eq!(vehicles.len(), 2);
    let trucks = db.query("select t for each truck t;").unwrap();
    assert_eq!(trucks.len(), 1);
}

#[test]
fn deep_hierarchy() {
    let mut db = Amos::new();
    db.execute(
        r#"
        create type a;
        create type b under a;
        create type c under b;
        create c instances :x;
    "#,
    )
    .unwrap();
    for ty in ["a", "b", "c"] {
        let rows = db.query(&format!("select v for each {ty} v;")).unwrap();
        assert_eq!(rows.len(), 1, "instance visible at level {ty}");
        assert_eq!(rows[0][0], *db.iface_value("x").unwrap());
    }
}

#[test]
fn builtin_instances_rejected() {
    let mut db = Amos::new();
    let err = db.execute("create integer instances :n;").unwrap_err();
    assert!(err.to_string().contains("builtin"), "{err}");
    assert!(db.execute("create missing instances :n;").is_err());
}

#[test]
fn rule_on_subtype_only_ignores_supertype_instances() {
    let mut db = Amos::new();
    let fired = Arc::new(Mutex::new(Vec::<Value>::new()));
    let sink = fired.clone();
    db.register_procedure("notify", move |_ctx, args| {
        sink.lock().unwrap().push(args[0].clone());
        Ok(())
    });
    db.execute(
        r#"
        create type vehicle;
        create type truck under vehicle;
        create function speed(vehicle v) -> integer;
        create rule truck_speeding() as
            when for each truck t where speed(t) > 100
            do notify(t);
        create vehicle instances :car1;
        create truck instances :truck1;
        set speed(:car1) = 0; set speed(:truck1) = 0;
        activate truck_speeding();
    "#,
    )
    .unwrap();
    db.execute("set speed(:car1) = 200;").unwrap();
    assert!(fired.lock().unwrap().is_empty(), "cars are not trucks");
    db.execute("set speed(:truck1) = 200;").unwrap();
    assert_eq!(fired.lock().unwrap().len(), 1);
}
