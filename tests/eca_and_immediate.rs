//! Tests for the two §1 variations: ECA event restriction ("the event
//! part just further restricts when the condition is tested") and
//! immediate rule processing (checks after each statement instead of
//! deferred to commit).

use std::sync::{Arc, Mutex};

use amos_db::{Amos, EngineOptions, Value};

fn counting(db: &mut Amos, name: &'static str, log: Arc<Mutex<Vec<Value>>>) {
    db.register_procedure(name, move |_ctx, args| {
        log.lock().unwrap().push(args[0].clone());
        Ok(())
    });
}

const SCHEMA: &str = r#"
    create type item;
    create function price(item i) -> integer;
    create function cost(item i) -> integer;
"#;

#[test]
fn eca_event_restricts_condition_testing() {
    let mut db = Amos::new();
    let fired = Arc::new(Mutex::new(Vec::new()));
    counting(&mut db, "losing", fired.clone());
    db.execute(SCHEMA).unwrap();
    // Condition depends on BOTH price and cost, but the event part only
    // names price: cost-driven transitions must be ignored.
    db.execute(
        r#"
        create rule loss_watch() as on price
            when for each item i where price(i) < cost(i)
            do losing(i);
        create item instances :x;
        set price(:x) = 100; set cost(:x) = 50;
        activate loss_watch();
    "#,
    )
    .unwrap();

    // Condition becomes true via cost — but the event is price: the
    // condition is never even tested, so no fire.
    db.execute("set cost(:x) = 200;").unwrap();
    assert!(fired.lock().unwrap().is_empty(), "cost event filtered out");

    // A price event while the condition stays true: strict semantics
    // sees no false→true transition (the state was already true), so
    // the missed cost-driven transition is *not* caught up — exactly the
    // under-reaction an event restriction trades for fewer tests.
    db.execute("set price(:x) = 90;").unwrap();
    assert!(fired.lock().unwrap().is_empty());

    // Reset below, then a genuine transition through a price event.
    db.execute("set cost(:x) = 50;").unwrap(); // condition false again (unobserved)
    db.execute("set price(:x) = 40;").unwrap(); // price event, 40 < 50 → fires
    assert_eq!(fired.lock().unwrap().len(), 1);

    // Price event with condition still true: no re-fire (strict).
    db.execute("set price(:x) = 30;").unwrap();
    assert_eq!(fired.lock().unwrap().len(), 1);
}

#[test]
fn eca_roundtrip_through_printer() {
    let src = "create rule r() as on price, cost when for each item i \
               where price(i) < cost(i) do losing(i);";
    let parsed = amos_amosql::parser::parse(src).unwrap();
    let printed = parsed[0].to_string();
    assert!(printed.contains("on price, cost when"));
    let reparsed = amos_amosql::parser::parse(&printed).unwrap();
    assert_eq!(parsed, reparsed);
}

#[test]
fn unknown_event_function_rejected() {
    let mut db = Amos::new();
    db.execute(SCHEMA).unwrap();
    let err = db
        .execute("create rule r() as on nosuch when for each item i where price(i) < 1 do f(i);")
        .unwrap_err();
    assert!(err.to_string().contains("unknown event function"));
}

#[test]
fn immediate_mode_fires_mid_transaction() {
    let mut db = Amos::with_options(EngineOptions {
        immediate: true,
        ..Default::default()
    });
    let fired = Arc::new(Mutex::new(Vec::new()));
    counting(&mut db, "losing", fired.clone());
    db.execute(SCHEMA).unwrap();
    db.execute(
        r#"
        create rule loss_watch() as
            when for each item i where price(i) < cost(i)
            do losing(i);
        create item instances :x;
        set price(:x) = 100; set cost(:x) = 50;
        activate loss_watch();
    "#,
    )
    .unwrap();

    db.execute("begin;").unwrap();
    db.execute("set price(:x) = 10;").unwrap();
    // Deferred semantics would wait for commit; immediate fires now.
    assert_eq!(fired.lock().unwrap().len(), 1, "fired before commit");
    // Restoring the price within the same transaction does NOT cancel
    // the already-executed action — the defining difference from the
    // deferred net-change semantics.
    db.execute("set price(:x) = 100;").unwrap();
    db.execute("commit;").unwrap();
    assert_eq!(fired.lock().unwrap().len(), 1);
}

#[test]
fn deferred_mode_cancels_what_immediate_does_not() {
    let mut db = Amos::new(); // deferred (default)
    let fired = Arc::new(Mutex::new(Vec::new()));
    counting(&mut db, "losing", fired.clone());
    db.execute(SCHEMA).unwrap();
    db.execute(
        r#"
        create rule loss_watch() as
            when for each item i where price(i) < cost(i)
            do losing(i);
        create item instances :x;
        set price(:x) = 100; set cost(:x) = 50;
        activate loss_watch();
    "#,
    )
    .unwrap();
    db.execute("begin; set price(:x) = 10; set price(:x) = 100; commit;")
        .unwrap();
    assert!(
        fired.lock().unwrap().is_empty(),
        "deferred semantics: no net change, no action"
    );
}

#[test]
fn check_now_inside_transaction() {
    let mut db = Amos::new();
    let fired = Arc::new(Mutex::new(Vec::new()));
    counting(&mut db, "losing", fired.clone());
    db.execute(SCHEMA).unwrap();
    db.execute(
        r#"
        create rule loss_watch() as
            when for each item i where price(i) < cost(i)
            do losing(i);
        create item instances :x;
        set price(:x) = 100; set cost(:x) = 50;
        activate loss_watch();
    "#,
    )
    .unwrap();

    db.begin().unwrap();
    db.execute("set price(:x) = 10;").unwrap();
    assert!(fired.lock().unwrap().is_empty(), "deferred: nothing yet");
    let summary = db.check_now().unwrap();
    assert_eq!(summary.executed.len(), 1);
    assert_eq!(fired.lock().unwrap().len(), 1);
    // The transaction is still open; more updates and a final commit.
    db.execute("set cost(:x) = 5;").unwrap(); // condition now false
    db.execute("commit;").unwrap();
    assert_eq!(fired.lock().unwrap().len(), 1);
}

#[test]
fn monitor_stats_expose_cost_profile() {
    let mut db = Amos::new();
    let fired = Arc::new(Mutex::new(Vec::new()));
    counting(&mut db, "losing", fired.clone());
    db.execute(SCHEMA).unwrap();
    db.execute(
        r#"
        create rule loss_watch() as
            when for each item i where price(i) < cost(i)
            do losing(i);
        create item instances :x, :y;
        set price(:x) = 100; set cost(:x) = 50;
        set price(:y) = 100; set cost(:y) = 50;
        activate loss_watch();
    "#,
    )
    .unwrap();
    db.rules_mut().reset_stats();

    db.execute("set price(:x) = 10;").unwrap();
    db.execute("set price(:y) = 10;").unwrap();
    let stats = db.rules().stats();
    assert_eq!(stats.check_phases, 2);
    assert!(stats.differentials_executed >= 2);
    assert!(stats.tuples_produced >= 2);
    assert_eq!(stats.actions_executed, 2);
    assert_eq!(stats.naive_recomputations, 0);

    // Naive mode counts recomputations instead.
    db.set_monitor_mode(amos_core::MonitorMode::Naive);
    db.execute("deactivate loss_watch(); activate loss_watch();")
        .unwrap();
    db.rules_mut().reset_stats();
    db.execute("set price(:x) = 5;").unwrap();
    let stats = db.rules().stats();
    assert!(stats.naive_recomputations >= 1);
    assert_eq!(stats.differentials_executed, 0);
}
