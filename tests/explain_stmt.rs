//! The `explain` statement: query plans and rule monitoring setups
//! rendered from AMOSQL.

use amos_db::{Amos, ExecResult};

fn text(results: Vec<ExecResult>) -> String {
    for r in results {
        if let ExecResult::Text(t) = r {
            return t;
        }
    }
    panic!("no explain output");
}

const SCHEMA: &str = r#"
    create type item;
    create function quantity(item i) -> integer;
    create function threshold(item i) -> integer;
    create rule low() as
        when for each item i where quantity(i) < threshold(i)
        do order(i);
"#;

#[test]
fn explain_select_shows_plan() {
    let mut db = Amos::new();
    db.execute(SCHEMA).unwrap();
    let out = text(
        db.execute("explain select i for each item i where quantity(i) < threshold(i);")
            .unwrap(),
    );
    assert!(out.contains("clause 0"), "{out}");
    assert!(out.contains("scan item_extent"), "{out}");
    assert!(out.contains("probe quantity[0]"), "{out}");
    assert!(out.contains("test"), "{out}");
}

#[test]
fn explain_rule_inactive_and_active() {
    let mut db = Amos::new();
    db.register_procedure("order", |_ctx, _| Ok(()));
    db.execute(SCHEMA).unwrap();

    let out = text(db.execute("explain rule low;").unwrap());
    assert!(out.contains("inactive"), "{out}");

    db.execute("activate low();").unwrap();
    let out = text(db.execute("explain rule low;").unwrap());
    assert!(out.contains("propagation network"), "{out}");
    assert!(out.contains("Δcnd_low/Δ+quantity"), "{out}");
    assert!(out.contains("delta-scan Δ+quantity"), "{out}");
    assert!(out.contains("Δcnd_low/Δ-threshold"), "{out}");
}

/// After a commit runs the check phase, `explain rule` includes the
/// metrics of the last propagation pass (timings and counters).
#[test]
fn explain_rule_reports_pass_metrics() {
    let mut db = Amos::new();
    db.register_procedure("order", |_ctx, _| Ok(()));
    db.execute(SCHEMA).unwrap();
    db.execute("activate low();").unwrap();
    db.execute(
        "begin;
         create item instances :i1;
         set quantity(:i1) = 2;
         set threshold(:i1) = 5;
         commit;",
    )
    .unwrap();

    let out = text(db.execute("explain rule low;").unwrap());
    assert!(out.contains("last propagation pass:"), "{out}");
    assert!(out.contains("strategy=parallel check=nervous"), "{out}");
    assert!(out.contains("candidates="), "{out}");
    assert!(out.contains("Δcnd_low/Δ+quantity"), "{out}");

    let metrics = db.last_pass_metrics().expect("a pass ran at commit");
    assert!(!metrics.differentials.is_empty());
    assert!(metrics.to_json().to_compact().contains("\"levels\""));
}

#[test]
fn explain_unknown_rule_errors() {
    let mut db = Amos::new();
    assert!(db.execute("explain rule nosuch;").is_err());
}

#[test]
fn explain_roundtrips_through_printer() {
    let parsed = amos_amosql::parser::parse("explain rule low; explain select 1;").unwrap();
    let printed: Vec<String> = parsed.iter().map(|s| s.to_string()).collect();
    assert_eq!(printed[0], "explain rule low;");
    assert_eq!(printed[1], "explain select 1;");
    let reparsed = amos_amosql::parser::parse(&printed.join(" ")).unwrap();
    assert_eq!(parsed, reparsed);
}

#[test]
fn drop_rule_removes_everything() {
    let mut db = Amos::new();
    db.register_procedure("order", |_ctx, _| Ok(()));
    db.execute(SCHEMA).unwrap();
    db.execute("activate low();").unwrap();
    // Influents monitored while active.
    let quantity_rel = {
        let cat = db.catalog();
        cat.def(cat.lookup("quantity").unwrap())
            .stored_rel()
            .unwrap()
    };
    assert!(db.storage().is_monitored(quantity_rel));

    db.execute("drop rule low;").unwrap();
    assert!(!db.storage().is_monitored(quantity_rel));
    // The name is gone: re-activation fails, re-creation... the cnd_
    // predicate name persists in the catalog, so a same-named rule needs
    // a fresh name (documented limitation).
    assert!(db.execute("activate low();").is_err());
    assert!(db.execute("drop rule low;").is_err());
    // Printer roundtrip.
    let parsed = amos_amosql::parser::parse("drop rule low;").unwrap();
    assert_eq!(parsed[0].to_string(), "drop rule low;");
}
