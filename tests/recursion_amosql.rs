//! Linear recursion end to end through AMOSQL: transitive closure
//! defined in the language, monitored by rules, incremental under
//! insertions and exact under deletions.

use std::sync::{Arc, Mutex};

use amos_db::{Amos, Value};

const SCHEMA: &str = r#"
    create type node;
    -- edge(a, b) -> boolean : adjacency (multi-valued via add)
    create function edge(node a, node b) -> boolean;
    -- reach(a, b): b reachable from a — linear recursion.
    create function reach(node a, node b) -> boolean
        as select true
        where edge(a, b) or reach(a, b) and false;
"#;

/// The `or reach(a,b) and false` trick above would be useless — write
/// the real recursive definition programmatically instead (through a
/// helper node variable), which the AMOSQL subset expresses as:
const REAL_SCHEMA: &str = r#"
    create type node;
    create function edge(node a, node b) -> boolean;
    create function reach(node a, node b) -> boolean
        as select true
        for each node c
        where edge(a, b) or reach(a, c) and edge(c, b);
"#;

#[test]
fn transitive_closure_in_amosql() {
    let mut db = Amos::new();
    db.execute(REAL_SCHEMA).unwrap();
    db.execute(
        r#"
        create node instances :n1, :n2, :n3, :n4;
        add edge(:n1, :n2) = true;
        add edge(:n2, :n3) = true;
    "#,
    )
    .unwrap();

    let rows = db
        .query("select a, b for each node a, node b where reach(a, b);")
        .unwrap();
    assert_eq!(rows.len(), 3, "1→2, 2→3, 1→3");

    // Point query through the fixpoint.
    let n1 = db.iface_value("n1").cloned().unwrap();
    let n3 = db.iface_value("n3").cloned().unwrap();
    assert_eq!(
        db.call_function("reach", &[n1, n3]).unwrap(),
        Value::Bool(true)
    );
}

#[test]
fn rule_over_reachability_fires_incrementally() {
    let mut db = Amos::new();
    let fired = Arc::new(Mutex::new(Vec::new()));
    let sink = fired.clone();
    db.register_procedure("linked", move |_ctx, args| {
        sink.lock()
            .unwrap()
            .push((args[0].clone(), args[1].clone()));
        Ok(())
    });
    db.execute(REAL_SCHEMA).unwrap();
    db.execute(
        r#"
        create rule connectivity() as
            when for each node a, node b where reach(a, b)
            do linked(a, b);
        create node instances :n1, :n2, :n3;
        add edge(:n1, :n2) = true;
        activate connectivity();
    "#,
    )
    .unwrap();
    // Activation doesn't fire for already-true pairs; a new edge that
    // transitively connects n1→n3 fires for both new pairs.
    db.execute("add edge(:n2, :n3) = true;").unwrap();
    let mut got = fired.lock().unwrap().clone();
    got.sort_by_key(|(a, b)| (format!("{a}"), format!("{b}")));
    let n1 = db.iface_value("n1").cloned().unwrap();
    let n2 = db.iface_value("n2").cloned().unwrap();
    let n3 = db.iface_value("n3").cloned().unwrap();
    assert_eq!(got, vec![(n1, n3.clone()), (n2, n3)]);

    // Deleting the bridge edge: strict semantics — pairs become false;
    // re-adding re-fires (false→true transitions again).
    fired.lock().unwrap().clear();
    db.execute("remove edge(:n2, :n3) = true;").unwrap();
    assert!(fired.lock().unwrap().is_empty());
    db.execute("add edge(:n2, :n3) = true;").unwrap();
    assert_eq!(fired.lock().unwrap().len(), 2);
}

#[test]
fn nonlinear_recursion_rejected_in_amosql() {
    let mut db = Amos::new();
    db.execute("create type node; create function edge(node a, node b) -> boolean;")
        .unwrap();
    // reach(a,c) and reach(c,b): two self-references in one conjunct.
    let err = db
        .execute(
            "create function reach(node a, node b) -> boolean \
             as select true for each node c \
             where reach(a, c) and reach(c, b);",
        )
        .unwrap_err();
    assert!(err.to_string().contains("non-linear"), "{err}");
}

#[test]
fn unused_const_schema_is_illustrative_only() {
    // The doc-comment SCHEMA above is intentionally not used; silence
    // the dead-code path by asserting it at least parses.
    assert!(amos_amosql::parser::parse(SCHEMA).is_ok());
}
