//! Cross-crate integration tests: full AMOSQL sessions driving the
//! complete stack (parser → compiler → ObjectLog → differencing →
//! propagation → rules → actions).

use std::sync::{Arc, Mutex};

use amos_core::MonitorMode;
use amos_db::{Amos, Tuple, Value};

type CallLog = Arc<Mutex<Vec<(String, Vec<Value>)>>>;

fn counting_db() -> (Amos, CallLog) {
    let mut db = Amos::new();
    let log: CallLog = Arc::new(Mutex::new(Vec::new()));
    for proc_name in ["notify", "escalate", "archive"] {
        let sink = log.clone();
        let name = proc_name.to_string();
        db.register_procedure(proc_name, move |_ctx, args| {
            sink.lock().unwrap().push((name.clone(), args.to_vec()));
            Ok(())
        });
    }
    (db, log)
}

#[test]
fn multiple_rules_over_shared_influents() {
    let (mut db, log) = counting_db();
    db.execute(
        r#"
        create type job;
        create function runtime(job j) -> integer;
        create function deadline(job j) -> integer;

        create rule slow_job() as
            when for each job j where runtime(j) > 100
            do notify(j) priority 1;
        create rule missed_deadline() as
            when for each job j where runtime(j) > deadline(j)
            do escalate(j) priority 9;

        create job instances :j1, :j2;
        set runtime(:j1) = 10; set deadline(:j1) = 50;
        set runtime(:j2) = 10; set deadline(:j2) = 500;
        activate slow_job();
        activate missed_deadline();
    "#,
    )
    .unwrap();

    // j1 exceeds both conditions in one transaction: conflict resolution
    // runs escalate (priority 9) before notify (priority 1).
    db.execute("set runtime(:j1) = 150;").unwrap();
    let calls = log.lock().unwrap().clone();
    assert_eq!(calls.len(), 2);
    assert_eq!(calls[0].0, "escalate");
    assert_eq!(calls[1].0, "notify");

    // j2 exceeds only the static threshold.
    db.execute("set runtime(:j2) = 120;").unwrap();
    let calls = log.lock().unwrap().clone();
    assert_eq!(calls.len(), 3);
    assert_eq!(calls[2].0, "notify");
}

#[test]
fn rule_cascade_across_rules() {
    let (mut db, log) = counting_db();
    db.execute(
        r#"
        create type ticket;
        create function severity(ticket t) -> integer;
        create function attention(ticket t) -> integer;

        -- Raising severity beyond 5 bumps attention; attention beyond 0
        -- archives (a two-step cascade through a second rule).
        create rule bump() as
            when for each ticket t where severity(t) > 5
            do set attention(t) = severity(t) * 10;
        create rule watch_attention() as
            when for each ticket t where attention(t) > 0
            do archive(t);

        create ticket instances :t1;
        set severity(:t1) = 1;
        set attention(:t1) = 0;
        activate bump();
        activate watch_attention();
    "#,
    )
    .unwrap();

    db.execute("set severity(:t1) = 7;").unwrap();
    let calls = log.lock().unwrap().clone();
    assert_eq!(calls.len(), 1);
    assert_eq!(calls[0].0, "archive");
    // The cascaded update is visible.
    let t1 = db.iface_value("t1").cloned().unwrap();
    assert_eq!(
        db.call_function("attention", &[t1]).unwrap(),
        Value::Int(70)
    );
}

#[test]
fn disjunctive_condition() {
    let (mut db, log) = counting_db();
    db.execute(
        r#"
        create type vm;
        create function cpu(vm v) -> integer;
        create function mem(vm v) -> integer;
        create rule pressure() as
            when for each vm v where cpu(v) > 90 or mem(v) > 90
            do notify(v);
        create vm instances :v1;
        set cpu(:v1) = 10; set mem(:v1) = 10;
        activate pressure();
    "#,
    )
    .unwrap();

    db.execute("set cpu(:v1) = 95;").unwrap();
    assert_eq!(log.lock().unwrap().len(), 1, "cpu branch triggers");
    // Already true via cpu: raising mem is NOT a false→true transition.
    db.execute("set mem(:v1) = 95;").unwrap();
    assert_eq!(log.lock().unwrap().len(), 1, "strict: no re-trigger");
    // Drop both, then raise mem only: triggers via the mem branch.
    db.execute("set cpu(:v1) = 10; set mem(:v1) = 10;").unwrap();
    db.execute("set mem(:v1) = 99;").unwrap();
    assert_eq!(log.lock().unwrap().len(), 2);
}

#[test]
fn all_monitor_modes_agree() {
    for mode in [
        MonitorMode::Incremental,
        MonitorMode::Naive,
        MonitorMode::Hybrid,
    ] {
        let (mut db, log) = counting_db();
        db.set_monitor_mode(mode);
        db.execute(
            r#"
            create type acct;
            create function balance(acct a) -> integer;
            create rule overdraft() as
                when for each acct a where balance(a) < 0
                do notify(a);
            create acct instances :a1, :a2, :a3;
            set balance(:a1) = 100;
            set balance(:a2) = 100;
            set balance(:a3) = 100;
            activate overdraft();
        "#,
        )
        .unwrap();

        db.execute("begin; set balance(:a1) = -5; set balance(:a2) = -10; commit;")
            .unwrap();
        assert_eq!(log.lock().unwrap().len(), 2, "mode {mode:?}");
        // Back to positive and negative again within one tx: net no-op
        // for a1; a3 newly negative.
        db.execute(
            "begin; set balance(:a1) = 50; set balance(:a1) = -5; set balance(:a3) = -1; commit;",
        )
        .unwrap();
        assert_eq!(log.lock().unwrap().len(), 3, "mode {mode:?}");
    }
}

#[test]
fn deletion_driven_rule_via_remove() {
    let (mut db, log) = counting_db();
    db.execute(
        r#"
        create type user;
        create function role(user u) -> charstring;
        -- Boolean-valued membership: in_group(u, g) -> boolean
        create function in_group(user u, charstring g) -> boolean;
        create rule orphaned_admin() as
            when for each user u
            where role(u) = "admin" and not in_group(u, "admins")
            do notify(u);
        create user instances :u1;
        set role(:u1) = "admin";
        add in_group(:u1, "admins") = true;
        activate orphaned_admin();
    "#,
    )
    .unwrap();

    assert!(log.lock().unwrap().is_empty());
    // Removing group membership makes the negated literal true — the
    // rule fires through a *negative* partial differential.
    db.execute("remove in_group(:u1, \"admins\") = true;")
        .unwrap();
    assert_eq!(log.lock().unwrap().len(), 1);
}

#[test]
fn queries_and_interface_vars_roundtrip() {
    let mut db = Amos::new();
    db.execute(
        r#"
        create type city;
        create function population(city c) -> integer;
        create function country(city c) -> charstring;
        create city instances :lkpg, :sthlm;
        set population(:lkpg) = 160000;
        set population(:sthlm) = 980000;
        set country(:lkpg) = "SE";
        set country(:sthlm) = "SE";
    "#,
    )
    .unwrap();

    let rows = db
        .query("select population(c), c for each city c where population(c) > 500000;")
        .unwrap();
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0][0], Value::Int(980000));

    // Arithmetic in the select list.
    let rows = db.query("select population(:lkpg) * 2 + 1;").unwrap();
    assert_eq!(rows, vec![Tuple::new(vec![Value::Int(320001)])]);

    // String predicates.
    let rows = db
        .query("select c for each city c where country(c) = \"SE\";")
        .unwrap();
    assert_eq!(rows.len(), 2);
}

#[test]
fn rollback_undoes_everything_between_begin_and_rollback() {
    let (mut db, log) = counting_db();
    db.execute(
        r#"
        create type item;
        create function qty(item i) -> integer;
        create rule low() as
            when for each item i where qty(i) < 5
            do notify(i);
        create item instances :x;
        set qty(:x) = 100;
        activate low();
    "#,
    )
    .unwrap();
    db.execute("begin; set qty(:x) = 1; rollback;").unwrap();
    assert!(
        log.lock().unwrap().is_empty(),
        "rollback suppresses triggers"
    );
    let x = db.iface_value("x").cloned().unwrap();
    assert_eq!(db.call_function("qty", &[x]).unwrap(), Value::Int(100));
}
