//! Structural tests for the paper's figures 1 and 2: the dependency /
//! propagation networks derived from `cnd_monitor_items`, per the
//! DESIGN.md experiment index.

use amos_db::engine::NetworkPrep;
use amos_db::{Amos, EngineOptions};

const SCHEMA: &str = r#"
    create type item;
    create type supplier;
    create function quantity(item i) -> integer;
    create function max_stock(item i) -> integer;
    create function min_stock(item i) -> integer;
    create function consume_freq(item i) -> integer;
    create function supplies(supplier s) -> item;
    create function delivery_time(item i, supplier s) -> integer;
    create function threshold(item i) -> integer
        as
        select consume_freq(i) * delivery_time(i, s) + min_stock(i)
        for each supplier s where supplies(s) = i;
    create rule monitor_items() as
        when for each item i
        where quantity(i) < threshold(i)
        do order(i, max_stock(i) - quantity(i));
    activate monitor_items();
"#;

fn build(prep: NetworkPrep) -> Amos {
    let mut db = Amos::with_options(EngineOptions {
        network_prep: prep,
        ..Default::default()
    });
    db.register_procedure("order", |_ctx, _args| Ok(()));
    db.execute(SCHEMA).unwrap();
    db
}

/// fig. 2 — flat network: every partial differential targets the
/// condition directly; both polarities exist per influent; the paper's
/// "five partial differentials" (plus/minus pairs) are all present.
#[test]
fn fig2_flat_network_differentials() {
    let db = build(NetworkPrep::Flat);
    let net = db.rules().network();
    let cat = db.catalog();
    let cnd = cat.lookup("cnd_monitor_items").unwrap();

    assert_eq!(net.levels().len(), 2);
    assert!(net.differentials().iter().all(|d| d.affected == cnd));

    let mut names: Vec<String> = net
        .differentials()
        .iter()
        .map(|d| d.display_name(cat))
        .collect();
    names.sort();
    // The paper's five influents (fig. 2), both polarities, plus the
    // item/supplier extents our typed `for each` adds.
    for influent in [
        "quantity",
        "consume_freq",
        "delivery_time",
        "supplies",
        "min_stock",
    ] {
        assert!(
            names.contains(&format!("Δcnd_monitor_items/Δ+{influent}")),
            "missing positive differential for {influent}: {names:?}"
        );
        assert!(
            names.contains(&format!("Δcnd_monitor_items/Δ-{influent}")),
            "missing negative differential for {influent}: {names:?}"
        );
    }
}

/// fig. 1 — bushy network: `threshold` is an intermediate node; the `*`
/// edge Δcnd/Δ₊quantity goes straight to the condition; threshold's
/// influents (consume_freq, delivery_time, supplies, min_stock) feed the
/// threshold node, not the condition.
#[test]
fn fig1_bushy_network_structure() {
    let db = build(NetworkPrep::Bushy);
    let net = db.rules().network();
    let cat = db.catalog();
    let cnd = cat.lookup("cnd_monitor_items").unwrap();
    let threshold = cat.lookup("threshold").unwrap();

    assert_eq!(net.levels().len(), 3);
    assert_eq!(net.node_of(threshold).unwrap().level, 1);
    assert_eq!(net.node_of(cnd).unwrap().level, 2);

    // The `*` edge of fig. 1.
    let quantity = cat.lookup("quantity").unwrap();
    let q_targets: Vec<_> = net
        .node_of(quantity)
        .unwrap()
        .out_diffs
        .iter()
        .map(|d| net.differential(*d).affected)
        .collect();
    assert!(q_targets.iter().all(|&a| a == cnd));

    // threshold's influents feed threshold only.
    for name in ["consume_freq", "delivery_time", "supplies", "min_stock"] {
        let p = cat.lookup(name).unwrap();
        let targets: Vec<_> = net
            .node_of(p)
            .unwrap()
            .out_diffs
            .iter()
            .map(|d| net.differential(*d).affected)
            .collect();
        assert!(
            targets.iter().all(|&a| a == threshold),
            "{name} must influence threshold, got {targets:?}"
        );
    }

    // threshold feeds the condition.
    let t_targets: Vec<_> = net
        .node_of(threshold)
        .unwrap()
        .out_diffs
        .iter()
        .map(|d| net.differential(*d).affected)
        .collect();
    assert!(!t_targets.is_empty());
    assert!(t_targets.iter().all(|&a| a == cnd));
}

/// Differential plans are Δ-seeded: the first step of every compiled
/// differential is the Δ-set scan (the paper's "optimizer assumes few
/// changes to a single influent").
#[test]
fn differential_plans_are_delta_seeded() {
    for prep in [NetworkPrep::Flat, NetworkPrep::Bushy] {
        let db = build(prep);
        let net = db.rules().network();
        for d in net.differentials() {
            assert!(
                matches!(
                    d.plan.steps[0],
                    amos_objectlog::plan::PlanStep::Delta { .. }
                ),
                "{prep:?}: differential {} not delta-seeded",
                d.display_name(db.catalog())
            );
        }
    }
}

/// Node sharing (§7.1): a second rule over `threshold` reuses the same
/// threshold node rather than duplicating it.
#[test]
fn node_sharing_across_rules() {
    let mut db = build(NetworkPrep::Bushy);
    db.register_procedure("warn", |_ctx, _args| Ok(()));
    db.execute(
        r#"
        create rule overstocked() as
            when for each item i where quantity(i) > threshold(i) * 100
            do warn(i);
        activate overstocked();
    "#,
    )
    .unwrap();
    let net = db.rules().network();
    let cat = db.catalog();
    let threshold = cat.lookup("threshold").unwrap();
    let node = net.node_of(threshold).unwrap();
    let affected: std::collections::HashSet<_> = node
        .out_diffs
        .iter()
        .map(|d| net.differential(*d).affected)
        .collect();
    assert_eq!(affected.len(), 2, "threshold node shared by both rules");
    // Exactly one threshold node in the network.
    assert_eq!(
        net.nodes().iter().filter(|n| n.pred == threshold).count(),
        1
    );
}
