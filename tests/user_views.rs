//! §8 extensions end to end: incremental aggregates and user-defined
//! differentials, monitored by rules through the ordinary partial
//! differencing machinery.

use std::sync::{Arc, Mutex};

use amos_core::aggregate::AggFn;
use amos_core::maintained::{ClosureView, SourceDeltas};
use amos_core::CoreError;
use amos_db::{Amos, Tuple, Value};
use amos_storage::DeltaSet;

#[test]
fn rule_over_incremental_aggregate() {
    let mut db = Amos::new();
    let flags = Arc::new(Mutex::new(Vec::new()));
    let sink = flags.clone();
    db.register_procedure("flag", move |_ctx, args| {
        sink.lock().unwrap().push(args[0].clone());
        Ok(())
    });
    db.execute(
        r#"
        create type acct;
        create function amount(acct a, integer xfer) -> integer;
        create acct instances :a1, :a2;
    "#,
    )
    .unwrap();
    db.register_aggregate("total", "amount", vec![0], 2, AggFn::Sum)
        .unwrap();
    db.execute(
        r#"
        create rule watch() as
            when for each acct a where total(a) > 100
            do flag(a);
        activate watch();
    "#,
    )
    .unwrap();

    db.execute("add amount(:a1, 1) = 60;").unwrap();
    assert!(flags.lock().unwrap().is_empty());
    db.execute("add amount(:a1, 2) = 50;").unwrap();
    assert_eq!(flags.lock().unwrap().len(), 1, "110 > 100 triggers");
    // Reverse below the limit and cross again: strict → a second firing.
    db.execute("remove amount(:a1, 1) = 60;").unwrap();
    db.execute("add amount(:a1, 3) = 70;").unwrap();
    assert_eq!(flags.lock().unwrap().len(), 2);
    // A no-net-change transaction through the aggregate.
    db.execute("begin; add amount(:a2, 9) = 500; remove amount(:a2, 9) = 500; commit;")
        .unwrap();
    assert_eq!(flags.lock().unwrap().len(), 2);
}

#[test]
fn min_aggregate_with_deletions() {
    let mut db = Amos::new();
    db.register_procedure("noop", |_ctx, _| Ok(()));
    db.execute(
        r#"
        create type host;
        create function latency(host h, integer probe) -> integer;
        create host instances :h1;
        add latency(:h1, 1) = 30;
        add latency(:h1, 2) = 10;
        add latency(:h1, 3) = 20;
    "#,
    )
    .unwrap();
    db.register_aggregate("best_latency", "latency", vec![0], 2, AggFn::Min)
        .unwrap();
    let h1 = db.iface_value("h1").cloned().unwrap();
    assert_eq!(
        db.call_function("best_latency", std::slice::from_ref(&h1))
            .unwrap(),
        Value::Int(10)
    );
    // Deleting the minimum falls back to the next without a rescan.
    db.execute("remove latency(:h1, 2) = 10;").unwrap();
    assert_eq!(
        db.call_function("best_latency", &[h1]).unwrap(),
        Value::Int(20)
    );
}

/// A user-defined differential: `risk(a) = total_out(a) − total_in(a)`
/// over a transfers relation, maintained by custom Rust logic (the §8
/// "incremental evaluation of foreign functions through user defined
/// differentials"), monitored by a rule.
#[test]
fn closure_view_with_user_differential() {
    let mut db = Amos::new();
    let alerts = Arc::new(Mutex::new(Vec::new()));
    let sink = alerts.clone();
    db.register_procedure("alert", move |_ctx, args| {
        sink.lock().unwrap().push(args[0].clone());
        Ok(())
    });
    db.execute(
        r#"
        create type acct;
        -- transfer(from, to, id) -> amount
        create function transfer(acct f, acct t, integer id) -> integer;
        create acct instances :a, :b;
    "#,
    )
    .unwrap();

    let transfer_rel = {
        let cat = db.catalog();
        cat.def(cat.lookup("transfer").unwrap())
            .stored_rel()
            .unwrap()
    };

    // Shared incremental state: net outflow per account oid.
    type NetMap = std::collections::HashMap<Value, i64>;
    let state: Arc<Mutex<NetMap>> = Arc::new(Mutex::new(NetMap::new()));

    let apply_tuple = |net: &mut NetMap, t: &Tuple, sign: i64| {
        let amount = t[3].as_int().unwrap() * sign;
        *net.entry(t[0].clone()).or_insert(0) += amount; // outflow from sender
        *net.entry(t[1].clone()).or_insert(0) -= amount; // inflow to receiver
    };
    let snapshot = |net: &NetMap| -> Vec<Tuple> {
        net.iter()
            .map(|(k, v)| Tuple::new(vec![k.clone(), Value::Int(*v)]))
            .collect()
    };

    let st_init = state.clone();
    let st_diff = state.clone();
    let view = ClosureView::new(
        vec![transfer_rel],
        move |_cat, storage| {
            let mut net = st_init.lock().unwrap();
            net.clear();
            for t in storage.relation(transfer_rel).scan() {
                apply_tuple(&mut net, t, 1);
            }
            Ok(snapshot(&net))
        },
        move |deltas: &SourceDeltas<'_>, _cat, _storage| {
            let mut net = st_diff.lock().unwrap();
            let before = snapshot(&net);
            if let Some(d) = deltas.get(&transfer_rel) {
                for t in d.minus() {
                    apply_tuple(&mut net, t, -1);
                }
                for t in d.plus() {
                    apply_tuple(&mut net, t, 1);
                }
            }
            let after = snapshot(&net);
            let before: std::collections::HashSet<Tuple> = before.into_iter().collect();
            let after: std::collections::HashSet<Tuple> = after.into_iter().collect();
            let mut out = DeltaSet::new();
            for t in before.difference(&after) {
                out.apply_delete(t.clone());
            }
            for t in after.difference(&before) {
                out.apply_insert(t.clone());
            }
            Ok::<DeltaSet, CoreError>(out)
        },
    );
    db.register_view("net_outflow", 2, 1, Box::new(view))
        .unwrap();

    db.execute(
        r#"
        create rule drain_watch() as
            when for each acct a where net_outflow(a) > 1000
            do alert(a);
        activate drain_watch();
    "#,
    )
    .unwrap();

    db.execute("add transfer(:a, :b, 1) = 600;").unwrap();
    assert!(alerts.lock().unwrap().is_empty());
    db.execute("add transfer(:a, :b, 2) = 700;").unwrap();
    let a = db.iface_value("a").cloned().unwrap();
    assert_eq!(alerts.lock().unwrap().as_slice(), std::slice::from_ref(&a));
    assert_eq!(
        db.call_function("net_outflow", std::slice::from_ref(&a))
            .unwrap(),
        Value::Int(1300)
    );
    // b's inflow shows as negative outflow.
    let b = db.iface_value("b").cloned().unwrap();
    assert_eq!(
        db.call_function("net_outflow", &[b]).unwrap(),
        Value::Int(-1300)
    );
    // Reversing a transfer drops a below the limit; crossing again
    // re-alerts (strict false→true).
    db.execute("remove transfer(:a, :b, 2) = 700;").unwrap();
    db.execute("add transfer(:a, :b, 3) = 900;").unwrap();
    assert_eq!(alerts.lock().unwrap().len(), 2);
}
