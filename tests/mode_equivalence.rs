//! Randomized engine-level equivalence: drive identical random update
//! workloads through incremental, naive, and hybrid monitoring and
//! require identical rule firings and final database states.
//!
//! This is the system-level counterpart of the calculus-level property
//! tests in `amos-core` — it additionally covers the AMOSQL compiler,
//! the check-phase loop, strict-semantics filtering, and action
//! execution.

use std::sync::{Arc, Mutex};

use amos_core::MonitorMode;
use amos_db::engine::NetworkPrep;
use amos_db::{Amos, EngineOptions, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const N_ITEMS: usize = 12;

struct World {
    db: Amos,
    fired: Arc<Mutex<Vec<(String, Value)>>>,
}

fn build(mode: MonitorMode, prep: NetworkPrep) -> World {
    let mut db = Amos::with_options(EngineOptions {
        network_prep: prep,
        ..Default::default()
    });
    db.set_monitor_mode(mode);
    let fired: Arc<Mutex<Vec<(String, Value)>>> = Arc::new(Mutex::new(Vec::new()));
    for rule in ["low_watch", "ratio_watch"] {
        let sink = fired.clone();
        let name = rule.to_string();
        db.register_procedure(&format!("fire_{rule}"), move |_ctx, args| {
            sink.lock().unwrap().push((name.clone(), args[0].clone()));
            Ok(())
        });
    }
    db.execute(
        r#"
        create type item;
        create function stock(item i) -> integer;
        create function demand(item i) -> integer;
        create function buffer(item i) -> integer as select demand(i) * 2;

        create rule low_watch() as
            when for each item i where stock(i) < buffer(i)
            do fire_low_watch(i);
        create rule ratio_watch() as
            when for each item i where stock(i) > demand(i) * 10
            do fire_ratio_watch(i);
    "#,
    )
    .unwrap();
    // Population.
    let mut names = Vec::new();
    for i in 0..N_ITEMS {
        names.push(format!(":i{i}"));
    }
    db.execute(&format!("create item instances {};", names.join(", ")))
        .unwrap();
    for i in 0..N_ITEMS {
        db.execute(&format!("set stock(:i{i}) = 50; set demand(:i{i}) = 10;"))
            .unwrap();
    }
    db.execute("activate low_watch(); activate ratio_watch();")
        .unwrap();
    World { db, fired }
}

/// Apply one random transaction; returns the script for debugging.
fn random_tx(rng: &mut StdRng) -> String {
    let n_updates = rng.gen_range(1..6);
    let mut script = String::from("begin; ");
    for _ in 0..n_updates {
        let item = rng.gen_range(0..N_ITEMS);
        let field = if rng.gen_bool(0.7) { "stock" } else { "demand" };
        let value = rng.gen_range(0..150);
        script.push_str(&format!("set {field}(:i{item}) = {value}; "));
    }
    script.push_str("commit;");
    script
}

#[test]
fn modes_and_network_shapes_agree_on_random_workloads() {
    let mut rng = StdRng::seed_from_u64(0xA405);
    let scripts: Vec<String> = (0..40).map(|_| random_tx(&mut rng)).collect();

    let configs = [
        (MonitorMode::Incremental, NetworkPrep::Flat),
        (MonitorMode::Incremental, NetworkPrep::Bushy),
        (MonitorMode::Naive, NetworkPrep::Flat),
        (MonitorMode::Hybrid, NetworkPrep::Flat),
    ];
    let mut all_firings: Vec<Vec<(String, Value)>> = Vec::new();
    let mut all_states: Vec<Vec<String>> = Vec::new();
    for (mode, prep) in configs {
        let mut w = build(mode, prep);
        for script in &scripts {
            w.db.execute(script).unwrap();
        }
        // Per-transaction firing order can differ in multiset order only
        // if conflict resolution ties — same priority rules keep
        // definition order, so the sequence must match exactly after
        // sorting within unknown boundaries. Use full sort: the total
        // multiset of firings must agree.
        let mut firings = w.fired.lock().unwrap().clone();
        firings.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
        all_firings.push(firings);

        let rows =
            w.db.query("select i, stock(i), demand(i) for each item i;")
                .unwrap();
        all_states.push(rows.iter().map(|t| t.to_string()).collect());
    }
    for i in 1..all_firings.len() {
        assert_eq!(
            all_firings[0].len(),
            all_firings[i].len(),
            "config {i} fired a different number of times"
        );
        assert_eq!(all_firings[0], all_firings[i], "config {i} diverged");
        assert_eq!(
            all_states[0], all_states[i],
            "config {i} final state diverged"
        );
    }
    // The workload actually exercised the rules.
    assert!(
        !all_firings[0].is_empty(),
        "workload never triggered anything"
    );
}
